// SRAM read-stability yield under within-die variation -- the use case the
// paper's Fig. 9 motivates.  Two stages:
//
//   1. plain Monte Carlo of the 6T cell's READ/HOLD SNM with the
//      statistical VS kit (distribution, moderate-floor yield);
//   2. the deep tail, where plain MC sees no failures at all: mean-shift
//      importance sampling over the standardized 30-dimensional mismatch
//      space (6 transistors x 5 VS parameters) resolves the failure
//      probability with a tight relative error.
//
// Everything runs on the build-once / rebind-per-sample campaign engine:
// stage 1 leases READ and HOLD butterfly sessions from two sim::SessionPool
// instances inside one mc::runCampaign, and stage 2's failure indicator
// leases a session per evaluation -- which also makes it safe for the
// parallel importance sampler (yield::importanceSample now fans out over
// the shared persistent thread pool).
//
// An optional variance-reduction stage demonstrates the first-class
// mc::SamplingPlan schemes: with `lhs` (Latin hypercube), `halton`, or
// `sobol` (randomized low-discrepancy), the READ-SNM yield is re-estimated
// at HALF the sample budget through the plan-driven campaign path and
// checked against the brute-force Monte Carlo estimate -- stratified
// designs buy back the budget on smooth responses like SNM.  With `sobol`
// the deep-tail stage also drives the importance sampler's base points
// from the Sobol generator.
//
// Usage: example_sram_yield [mc_samples] [is_samples] [scheme]
//                           [--fast] [--reuse-pivot] [--statistical]
//        (defaults 800/400 iid; scheme in {iid, lhs, halton, sobol};
//        --fast selects NumericsMode::fast -- SIMD kernels in the
//        device-bank lanes; --reuse-pivot selects SolverMode::reusePivot
//        -- one canonical LU pivot order amortized across every solve of
//        a session, breakdown-monitored; --statistical selects
//        ToleranceTier::statistical -- warm-started solves in fixed-size
//        sample blocks under the estimator-level accuracy contract.  All
//        flags compose; SNM/yield results stay within the documented
//        contract of the reference/fresh/per-sample configuration)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "measure/snm.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "mc/samplers.hpp"
#include "models/process_variation.hpp"
#include "models/vs_model.hpp"
#include "sim/session.hpp"
#include "stats/descriptive.hpp"
#include "stats/qq.hpp"
#include "util/error.hpp"
#include "yield/importance.hpp"
#include "yield/parametric.hpp"

using namespace vsstat;

namespace {

/// Fixed-z provider over the kit's cards and Pelgrom alphas: entry 5*i+j
/// of the armed z-vector scales parameter j of the i-th requested
/// transistor by its sigma (circuits::FixedZProvider contract).  This is
/// the bridge between the importance sampler's / sampling plans' z-space
/// and circuit instances.
std::unique_ptr<circuits::DeviceProvider> makeFixedZProvider(
    const core::StatisticalVsKit& kit) {
  return std::make_unique<mc::VsFixedZProvider>(
      kit.nominal(models::DeviceType::Nmos),
      kit.nominal(models::DeviceType::Pmos),
      kit.alphas(models::DeviceType::Nmos),
      kit.alphas(models::DeviceType::Pmos));
}

using ButterflyPool = sim::SessionPool<circuits::SramButterflyBench>;
using ButterflySession = sim::CampaignSession<circuits::SramButterflyBench>;

/// One warm-chain block's READ + HOLD leases (statistical tier): published
/// through a thread-local so the block's samples reuse the same pair of
/// sessions, which is what makes sample-to-sample warm starts reproducible
/// across worker counts.
struct StagePair {
  ButterflyPool::Lease read;
  ButterflyPool::Lease hold;
  StagePair(ButterflyPool::Lease r, ButterflyPool::Lease h)
      : read(std::move(r)), hold(std::move(h)) {}
};

thread_local StagePair* tlsStagePair = nullptr;

struct BlockPair : StagePair {
  BlockPair(ButterflyPool::Lease r, ButterflyPool::Lease h)
      : StagePair(std::move(r), std::move(h)) {
    read->coldStart();
    hold->coldStart();
    tlsStagePair = this;
  }
  ~BlockPair() { tlsStagePair = nullptr; }
};

/// Per-class failure/rescue accounting of a campaign (mc::McResult
/// taxonomy).  Unattended flows read this instead of diffing sample
/// counts: every dropped corner is named, classed, and exemplified by the
/// lowest-indexed failure.
void printCampaignBreakdown(const char* name, const mc::McResult& r) {
  const int total = static_cast<int>(r.sampleCount()) + r.failures;
  std::printf("\n%s campaign: %d samples, %d dropped, %d rescued\n", name,
              total, r.failures, r.rescued);
  for (int c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    if (r.failuresOf(cls) > 0)
      std::printf("  %-15s %d\n", toString(cls), r.failuresOf(cls));
  }
  if (r.firstFailure.valid)
    std::printf("  first failure: sample %zu [%s] %s\n",
                r.firstFailure.sampleIndex,
                toString(r.firstFailure.failureClass),
                r.firstFailure.message.c_str());
}

ButterflyPool makePool(const core::StatisticalVsKit& kit,
                       circuits::SramMode mode,
                       spice::SessionOptions sessionOptions) {
  return ButterflyPool(
      [&kit, mode](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, kit.vdd(), mode,
                                            circuits::SramSizing{});
      },
      [&kit] { return kit.makeProvider(stats::Rng(0)); }, sessionOptions);
}

}  // namespace

namespace {

/// READ-SNM yield driven by a first-class mc::SamplingPlan: the campaign
/// evaluates the plan's generator at each sample index and arms the
/// session's fixed-z provider before the rebind -- deterministic in
/// (plan, index), with the rescue ladder and (under --statistical) the
/// warm-chain blocks of the standard circuit-campaign path.
yield::YieldEstimate generatorYield(const core::StatisticalVsKit& kit,
                                    const mc::SamplingPlan& plan,
                                    std::size_t budget, double snmFloor,
                                    spice::SessionOptions sessionOptions) {
  mc::McOptions opt;
  opt.samples = static_cast<int>(budget);
  opt.seed = 7;
  const mc::McResult r = mc::runCampaign<circuits::SramButterflyBench>(
      opt, 1,
      [&kit](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, kit.vdd(),
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [&kit] { return makeFixedZProvider(kit); },
      [](std::size_t, ButterflySession& session, stats::Rng&,
         std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), 45)
                .cellSnm();
      },
      sessionOptions, sim::RescuePolicy{}, plan);
  return yield::yieldOfSamples(r.metrics[0], {snmFloor, std::nullopt});
}

}  // namespace

int main(int argc, char** argv) {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;  // fast, noise-free characterization
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  spice::SessionOptions sessionOptions;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      sessionOptions.numerics = models::NumericsMode::fast;
    } else if (std::strcmp(argv[i], "--reuse-pivot") == 0) {
      sessionOptions.solver = linalg::SolverMode::reusePivot;
    } else if (std::strcmp(argv[i], "--statistical") == 0) {
      sessionOptions.tier = spice::ToleranceTier::statistical;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "example_sram_yield: unknown flag '%s' (usage: "
                   "example_sram_yield [mc_samples] [is_samples] [scheme] "
                   "[--fast] [--reuse-pivot] [--statistical])\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int kSamples =
      positional.size() > 0 ? std::max(std::atoi(positional[0]), 20) : 800;
  const int kIsSamples =
      positional.size() > 1 ? std::max(std::atoi(positional[1]), 20) : 400;
  const std::string scheme = positional.size() > 2 ? positional[2] : "iid";
  require(scheme == "iid" || scheme == "lhs" || scheme == "halton" ||
              scheme == "sobol",
          "scheme must be one of: iid, lhs, halton, sobol");
  const bool statistical =
      sessionOptions.tier == spice::ToleranceTier::statistical;
  constexpr double kSnmFloor = 0.04;  // V; stability criterion

  // Stage 1: READ and HOLD SNM of the same dies, via leased sessions.
  ButterflyPool readPool =
      makePool(kit, circuits::SramMode::Read, sessionOptions);
  ButterflyPool holdPool =
      makePool(kit, circuits::SramMode::Hold, sessionOptions);

  mc::McOptions mcOpt;
  mcOpt.samples = kSamples;
  mcOpt.seed = 2026;
  // Per-sample Newton telemetry: diffed around both sessions' measurements
  // so the health footer can report iters/sample and warm-start hit rate.
  const auto measurePair = [&](ButterflySession& readSession,
                               ButterflySession& holdSession, stats::Rng& rng,
                               std::vector<double>& out,
                               mc::SampleContext& ctx) {
    const auto r0 = readSession.spice().iterationTelemetry();
    const auto h0 = holdSession.spice().iterationTelemetry();
    readSession.bindSample(rng);
    out[0] = measure::measureSnm(readSession.fixture(), readSession.spice(),
                                 45)
                 .cellSnm();
    // Same dies, HOLD mode rebinds identical draws from a forked stream:
    holdSession.bindSample(rng.fork(1));
    out[1] = measure::measureSnm(holdSession.fixture(), holdSession.spice(),
                                 45)
                 .cellSnm();
    const auto r1 = readSession.spice().iterationTelemetry();
    const auto h1 = holdSession.spice().iterationTelemetry();
    ctx.newtonIterations = (r1.newtonIterations - r0.newtonIterations) +
                           (h1.newtonIterations - h0.newtonIterations);
    ctx.warmStartHits = (r1.warmStartHits - r0.warmStartHits) +
                        (h1.warmStartHits - h0.warmStartHits);
    ctx.warmStartOpportunities =
        (r1.warmStartOpportunities - r0.warmStartOpportunities) +
        (h1.warmStartOpportunities - h0.warmStartOpportunities);
  };
  mc::BlockResourceFn blockFn;
  if (statistical) {
    // Warm-chain blocks: one READ + one HOLD lease span each fixed-size
    // block (cold-started at its head), so sample k's solves seed from
    // sample k-1's converged states deterministically -- the block
    // geometry, and with it every result bit, is independent of the
    // worker count.
    mcOpt.sampleBlock = mc::kStatisticalSampleBlock;
    blockFn = [&](std::size_t) -> std::shared_ptr<void> {
      return std::make_shared<BlockPair>(readPool.acquire(),
                                         holdPool.acquire());
    };
  }
  const mc::McResult r = mc::runCampaign(
      mcOpt, 2,
      mc::SampleFnEx([&](std::size_t, stats::Rng& rng,
                         std::vector<double>& out, mc::SampleContext& ctx) {
        if (StagePair* block = tlsStagePair) {
          measurePair(*block->read, *block->hold, rng, out, ctx);
          return;
        }
        StagePair pair(readPool.acquire(), holdPool.acquire());
        measurePair(*pair.read, *pair.hold, rng, out, ctx);
      }),
      blockFn);

  const auto read = stats::summarize(r.metrics[0]);
  const auto hold = stats::summarize(r.metrics[1]);
  std::printf("6T SRAM (N/P 150/40 nm, pass 100 nm) at Vdd = %.2f V, %d MC "
              "samples, %s numerics, %s solver, %s tier\n\n", kit.vdd(),
              kSamples, models::toString(sessionOptions.numerics),
              linalg::toString(sessionOptions.solver),
              spice::toString(sessionOptions.tier));
  std::printf("READ SNM: mean = %.1f mV  sigma = %.1f mV  min = %.1f mV\n",
              read.mean * 1e3, read.stddev * 1e3, read.min * 1e3);
  std::printf("HOLD SNM: mean = %.1f mV  sigma = %.1f mV  min = %.1f mV\n",
              hold.mean * 1e3, hold.stddev * 1e3, hold.min * 1e3);

  // Yield under an EXPLICIT dropped-sample policy: dropped corners are the
  // extreme draws, so they count as spec failures (conservative), and an
  // unattended run aborts loudly -- exit 3 -- rather than report a number
  // biased by a silently degraded campaign.
  printCampaignBreakdown("SNM", r);
  yield::DropPolicy dropPolicy;
  dropPolicy.mode = yield::DroppedSamplePolicy::errorAboveThreshold;
  dropPolicy.maxDropFraction = 0.01;
  yield::YieldEstimate moderate;
  try {
    moderate = yield::yieldOfCampaign(r, 0, {kSnmFloor, std::nullopt},
                                      dropPolicy);
  } catch (const yield::DroppedSamplesError& e) {
    std::printf("campaign health: DEGRADED -- %s\n", e.what());
    return 3;
  }
  std::printf("campaign health: OK (drop fraction within %.0f %% budget)\n",
              100.0 * dropPolicy.maxDropFraction);
  std::printf("newton: %.1f iterations/sample, warm-start hit rate %.0f %% "
              "(%s tier)\n",
              r.meanIterationsPerSample(), 100.0 * r.warmStartHitRate(),
              spice::toString(sessionOptions.tier));

  // Factor telemetry from one of the campaign's own worker sessions: shape
  // (pattern vs fill) is topology-fixed, counters accumulate that worker's
  // share of the campaign.
  {
    auto lease = readPool.acquire();
    const auto t = lease->spice().solverTelemetry();
    std::printf("solver factor: %zu pattern nnz -> %zu factor nnz "
                "(fill %.2fx), ordering %llu us, %llu full factors "
                "(%llu us), %llu fast refactors\n",
                t.patternNnz, t.factorNnz, t.fillRatio,
                static_cast<unsigned long long>(t.orderingMicros),
                static_cast<unsigned long long>(t.fullFactors),
                static_cast<unsigned long long>(t.fullFactorMicros),
                static_cast<unsigned long long>(t.fastRefactors));
  }
  std::printf("\nRead-stability yield (SNM >= %.0f mV): %.2f %%  "
              "[95%% CI %.2f..%.2f]  (%ld/%ld failing)\n",
              kSnmFloor * 1e3, 100.0 * moderate.yield, 100.0 * moderate.lower,
              100.0 * moderate.upper, moderate.total - moderate.passed,
              moderate.total);

  const auto qq = stats::qqAgainstNormal(r.metrics[1]);
  std::printf("HOLD SNM QQ linearity r^2 = %.4f (slightly non-Gaussian, as "
              "in the paper's Fig. 9f)\n", qq.linearity);

  // --- Optional: variance-reduced yield via LHS / Halton / Sobol plans ----
  if (scheme != "iid") {
    const std::size_t dims = 6 * 5;  // transistors x VS parameters
    const std::size_t budget =
        static_cast<std::size_t>(std::max(kSamples / 2, 20));
    mc::SamplingPlan plan;
    plan.scheme = mc::parseScheme(scheme);
    plan.dimension = dims;
    plan.seed = 314;
    const yield::YieldEstimate stratified =
        generatorYield(kit, plan, budget, kSnmFloor, sessionOptions);
    std::printf("\n%s read-stability yield at HALF budget (%zu samples): "
                "%.2f %%  [95%% CI %.2f..%.2f]\n", scheme.c_str(), budget,
                100.0 * stratified.yield, 100.0 * stratified.lower,
                100.0 * stratified.upper);
    // Smoke contract: the stratified design must agree with brute-force MC
    // within a generous tolerance even at the reduced-count smoke budget
    // (both estimate the same smooth-response yield; the design only
    // shrinks the estimator variance).
    const double gap = std::fabs(stratified.yield - moderate.yield);
    std::printf("  |yield(%s) - yield(mc)| = %.3f\n", scheme.c_str(), gap);
    require(gap <= 0.15,
            "stratified yield diverged from brute-force Monte Carlo");
  }

  // --- Stage 2: the deep tail via importance sampling ---------------------
  constexpr double kTailFloor = 0.015;  // V; plain MC sees ~no failures here
  constexpr std::size_t kDims = 6 * 5;  // transistors x VS parameters

  // Session-backed indicator: lease a READ fixture, arm its fixed-z
  // provider, rebind, measure.  Thread-safe (one session per concurrent
  // evaluation), so the parallel sampler can hammer it.  The indicator
  // path pins ToleranceTier::perSample regardless of --statistical: its
  // leases are per-EVALUATION, so a warm chain here would depend on which
  // session served which z -- schedule-dependent, breaking the sampler's
  // bit-identity across thread counts.
  spice::SessionOptions tailOptions = sessionOptions;
  tailOptions.tier = spice::ToleranceTier::perSample;
  ButterflyPool tailPool(
      [&kit](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, kit.vdd(),
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [&kit] { return makeFixedZProvider(kit); }, tailOptions);

  const yield::FailureIndicator cellFails =
      [&](const std::vector<double>& z) {
        auto lease = tailPool.acquire();
        static_cast<circuits::FixedZProvider&>(lease->provider()).setZ(z);
        lease->rebind();
        return measure::measureSnm(lease->fixture(), lease->spice(), 45)
                   .cellSnm() < kTailFloor;
      };

  // Physics-guided extra directions: READ failures are driven by opposing
  // VT0 shifts of the cross-coupled pair (PD1 vs PD2) and the pass gates.
  std::vector<double> skewPulldowns(kDims, 0.0);
  skewPulldowns[1 * 5 + 0] = 1.0;   // PD1 VT0 up
  skewPulldowns[4 * 5 + 0] = -1.0;  // PD2 VT0 down
  std::vector<double> skewWithPass = skewPulldowns;
  skewWithPass[2 * 5 + 0] = -1.0;   // PG1 VT0 down: stronger read disturb

  std::printf("\nDeep-tail failure probability (READ SNM < %.0f mV):\n",
              kTailFloor * 1e3);
  const std::vector<double> shift = yield::findFailureShift(
      cellFails, kDims, {skewPulldowns, skewWithPass});
  double shiftNorm = 0.0;
  for (double s : shift) shiftNorm += s * s;
  std::printf("  shift found at |z| = %.2f sigma\n", std::sqrt(shiftNorm));

  yield::ImportanceOptions isOpt;
  isOpt.samples = kIsSamples;
  isOpt.seed = 99;
  // With the sobol scheme, the importance sampler's base points come from
  // the randomized Sobol generator instead of iid draws -- variance
  // reduction composed with the mean shift.
  std::unique_ptr<mc::SampleGenerator> isGen;
  if (scheme == "sobol") {
    isGen = std::make_unique<mc::SobolSampler>(
        kDims, static_cast<std::size_t>(kIsSamples), 424);
    isOpt.generator = isGen.get();
    std::printf("  base points: randomized Sobol (%zu dims)\n", kDims);
  }
  const yield::ImportanceResult is =
      yield::importanceSample(cellFails, shift, isOpt);
  const yield::ImportanceResult bf =
      yield::bruteForceProbability(cellFails, kDims, isOpt);

  std::printf("  importance sampling: P = %.3e  (rel. std. err. %.1f %%, "
              "%d/%d hits)\n", is.probability, 100.0 * is.relStdError,
              is.failingDraws, isOpt.samples);
  std::printf("  brute force, same budget: %d hits -> no usable estimate\n",
              bf.failingDraws);
  std::printf("  equivalent bit-level yield: %.6f %%\n",
              100.0 * (1.0 - is.probability));
  return 0;
}
