// SRAM read-stability yield under within-die variation -- the use case the
// paper's Fig. 9 motivates.  Two stages:
//
//   1. plain Monte Carlo of the 6T cell's READ/HOLD SNM with the
//      statistical VS kit (distribution, moderate-floor yield);
//   2. the deep tail, where plain MC sees no failures at all: mean-shift
//      importance sampling over the standardized 30-dimensional mismatch
//      space (6 transistors x 5 VS parameters) resolves the failure
//      probability with a tight relative error.
//
// Everything runs on the build-once / rebind-per-sample campaign engine:
// stage 1 leases READ and HOLD butterfly sessions from two sim::SessionPool
// instances inside one mc::runCampaign, and stage 2's failure indicator
// leases a session per evaluation -- which also makes it safe for the
// parallel importance sampler (yield::importanceSample now fans out over
// the shared persistent thread pool).
//
// An optional variance-reduction stage demonstrates the mc/samplers.hpp
// designs: with scheme `lhs` (Latin hypercube) or `halton` (randomized
// low-discrepancy), the READ-SNM yield is re-estimated at HALF the sample
// budget through the chosen generator and checked against the brute-force
// Monte Carlo estimate -- stratified designs buy back the budget on smooth
// responses like SNM.
//
// Usage: example_sram_yield [mc_samples] [is_samples] [scheme]
//                           [--fast] [--reuse-pivot]
//        (defaults 800/400 iid; scheme in {iid, lhs, halton}; --fast
//        selects NumericsMode::fast -- SIMD kernels in the device-bank
//        lanes; --reuse-pivot selects SolverMode::reusePivot -- one
//        canonical LU pivot order amortized across every solve of a
//        session, breakdown-monitored.  Both flags compose; either way
//        SNM/yield results stay within solver tolerance of the
//        reference/fresh configuration)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "measure/snm.hpp"
#include "mc/runner.hpp"
#include "mc/samplers.hpp"
#include "models/process_variation.hpp"
#include "models/vs_model.hpp"
#include "sim/session.hpp"
#include "stats/descriptive.hpp"
#include "stats/qq.hpp"
#include "util/error.hpp"
#include "yield/importance.hpp"
#include "yield/parametric.hpp"

using namespace vsstat;

namespace {

/// Provider that realizes a FIXED standardized mismatch vector: entry
/// 5*i+j of z scales parameter j of the i-th requested transistor by its
/// Pelgrom sigma.  This is the bridge between the importance sampler's
/// z-space and circuit instances; setZ() rearms it for the next rebind
/// pass of a campaign session.
class FixedDeltaProvider final : public circuits::DeviceProvider {
 public:
  explicit FixedDeltaProvider(const core::StatisticalVsKit& kit) : kit_(kit) {}

  void setZ(const std::vector<double>& z) {
    z_ = z;
    cursor_ = 0;
  }

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string&,
      const models::DeviceGeometry& nominal) override {
    const models::ParameterSigmas s = kit_.sigmas(type, nominal);
    models::VariationDelta d;
    d.dVt0 = next() * s.sVt0;
    d.dLeff = next() * s.sLeff;
    d.dWeff = next() * s.sWeff;
    d.dMu = next() * s.sMu;
    d.dCinv = next() * s.sCinv;
    return {std::make_unique<models::VsModel>(
                models::applyToVs(kit_.nominal(type), d)),
            models::applyGeometry(nominal, d)};
  }

 private:
  double next() { return cursor_ < z_.size() ? z_[cursor_++] : 0.0; }

  const core::StatisticalVsKit& kit_;
  std::vector<double> z_;
  std::size_t cursor_ = 0;
};

using ButterflyPool = sim::SessionPool<circuits::SramButterflyBench>;

/// Per-class failure/rescue accounting of a campaign (mc::McResult
/// taxonomy).  Unattended flows read this instead of diffing sample
/// counts: every dropped corner is named, classed, and exemplified by the
/// lowest-indexed failure.
void printCampaignBreakdown(const char* name, const mc::McResult& r) {
  const int total = static_cast<int>(r.sampleCount()) + r.failures;
  std::printf("\n%s campaign: %d samples, %d dropped, %d rescued\n", name,
              total, r.failures, r.rescued);
  for (int c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    if (r.failuresOf(cls) > 0)
      std::printf("  %-15s %d\n", toString(cls), r.failuresOf(cls));
  }
  if (r.firstFailure.valid)
    std::printf("  first failure: sample %zu [%s] %s\n",
                r.firstFailure.sampleIndex,
                toString(r.firstFailure.failureClass),
                r.firstFailure.message.c_str());
}

ButterflyPool makePool(const core::StatisticalVsKit& kit,
                       circuits::SramMode mode,
                       spice::SessionOptions sessionOptions) {
  return ButterflyPool(
      [&kit, mode](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, kit.vdd(), mode,
                                            circuits::SramSizing{});
      },
      [&kit] { return kit.makeProvider(stats::Rng(0)); }, sessionOptions);
}

}  // namespace

namespace {

/// READ-SNM yield driven by a mc::SampleGenerator design: sample k realizes
/// the generator's k-th standardized z-vector through a FixedDeltaProvider
/// and a leased READ session.  Deterministic in (generator, k) -- the
/// campaign's own RNG stream is ignored on purpose.
yield::YieldEstimate generatorYield(const core::StatisticalVsKit& kit,
                                    const mc::SampleGenerator& gen,
                                    double snmFloor,
                                    spice::SessionOptions sessionOptions) {
  ButterflyPool pool(
      [&kit](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, kit.vdd(),
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [&kit] { return std::make_unique<FixedDeltaProvider>(kit); },
      sessionOptions);

  mc::McOptions opt;
  opt.samples = static_cast<int>(gen.samples());
  opt.seed = 7;
  const mc::McResult r = mc::runCampaign(
      opt, 1, [&](std::size_t index, stats::Rng&, std::vector<double>& out) {
        auto lease = pool.acquire();
        static_cast<FixedDeltaProvider&>(lease->provider())
            .setZ(gen.standardNormals(index));
        lease->rebind();
        out[0] = measure::measureSnm(lease->fixture(), lease->spice(), 45)
                     .cellSnm();
      });
  return yield::yieldOfSamples(r.metrics[0], {snmFloor, std::nullopt});
}

}  // namespace

int main(int argc, char** argv) {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;  // fast, noise-free characterization
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  spice::SessionOptions sessionOptions;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      sessionOptions.numerics = models::NumericsMode::fast;
    } else if (std::strcmp(argv[i], "--reuse-pivot") == 0) {
      sessionOptions.solver = linalg::SolverMode::reusePivot;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "example_sram_yield: unknown flag '%s' (usage: "
                   "example_sram_yield [mc_samples] [is_samples] [scheme] "
                   "[--fast] [--reuse-pivot])\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int kSamples =
      positional.size() > 0 ? std::max(std::atoi(positional[0]), 20) : 800;
  const int kIsSamples =
      positional.size() > 1 ? std::max(std::atoi(positional[1]), 20) : 400;
  const std::string scheme = positional.size() > 2 ? positional[2] : "iid";
  require(scheme == "iid" || scheme == "lhs" || scheme == "halton",
          "scheme must be one of: iid, lhs, halton");
  constexpr double kSnmFloor = 0.04;  // V; stability criterion

  // Stage 1: READ and HOLD SNM of the same dies, via leased sessions.
  ButterflyPool readPool =
      makePool(kit, circuits::SramMode::Read, sessionOptions);
  ButterflyPool holdPool =
      makePool(kit, circuits::SramMode::Hold, sessionOptions);

  mc::McOptions mcOpt;
  mcOpt.samples = kSamples;
  mcOpt.seed = 2026;
  const mc::McResult r = mc::runCampaign(
      mcOpt, 2, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto read = readPool.acquire();
        read->bindSample(rng);
        out[0] = measure::measureSnm(read->fixture(), read->spice(), 45)
                     .cellSnm();
        // Same dies, HOLD mode rebinds identical draws from a forked stream:
        auto hold = holdPool.acquire();
        hold->bindSample(rng.fork(1));
        out[1] = measure::measureSnm(hold->fixture(), hold->spice(), 45)
                     .cellSnm();
      });

  const auto read = stats::summarize(r.metrics[0]);
  const auto hold = stats::summarize(r.metrics[1]);
  std::printf("6T SRAM (N/P 150/40 nm, pass 100 nm) at Vdd = %.2f V, %d MC "
              "samples, %s numerics, %s solver\n\n", kit.vdd(), kSamples,
              models::toString(sessionOptions.numerics),
              linalg::toString(sessionOptions.solver));
  std::printf("READ SNM: mean = %.1f mV  sigma = %.1f mV  min = %.1f mV\n",
              read.mean * 1e3, read.stddev * 1e3, read.min * 1e3);
  std::printf("HOLD SNM: mean = %.1f mV  sigma = %.1f mV  min = %.1f mV\n",
              hold.mean * 1e3, hold.stddev * 1e3, hold.min * 1e3);

  // Yield under an EXPLICIT dropped-sample policy: dropped corners are the
  // extreme draws, so they count as spec failures (conservative), and an
  // unattended run aborts loudly -- exit 3 -- rather than report a number
  // biased by a silently degraded campaign.
  printCampaignBreakdown("SNM", r);
  yield::DropPolicy dropPolicy;
  dropPolicy.mode = yield::DroppedSamplePolicy::errorAboveThreshold;
  dropPolicy.maxDropFraction = 0.01;
  yield::YieldEstimate moderate;
  try {
    moderate = yield::yieldOfCampaign(r, 0, {kSnmFloor, std::nullopt},
                                      dropPolicy);
  } catch (const yield::DroppedSamplesError& e) {
    std::printf("campaign health: DEGRADED -- %s\n", e.what());
    return 3;
  }
  std::printf("campaign health: OK (drop fraction within %.0f %% budget)\n",
              100.0 * dropPolicy.maxDropFraction);

  // Factor telemetry from one of the campaign's own worker sessions: shape
  // (pattern vs fill) is topology-fixed, counters accumulate that worker's
  // share of the campaign.
  {
    auto lease = readPool.acquire();
    const auto t = lease->spice().solverTelemetry();
    std::printf("solver factor: %zu pattern nnz -> %zu factor nnz "
                "(fill %.2fx), ordering %llu us, %llu full factors "
                "(%llu us), %llu fast refactors\n",
                t.patternNnz, t.factorNnz, t.fillRatio,
                static_cast<unsigned long long>(t.orderingMicros),
                static_cast<unsigned long long>(t.fullFactors),
                static_cast<unsigned long long>(t.fullFactorMicros),
                static_cast<unsigned long long>(t.fastRefactors));
  }
  std::printf("\nRead-stability yield (SNM >= %.0f mV): %.2f %%  "
              "[95%% CI %.2f..%.2f]  (%ld/%ld failing)\n",
              kSnmFloor * 1e3, 100.0 * moderate.yield, 100.0 * moderate.lower,
              100.0 * moderate.upper, moderate.total - moderate.passed,
              moderate.total);

  const auto qq = stats::qqAgainstNormal(r.metrics[1]);
  std::printf("HOLD SNM QQ linearity r^2 = %.4f (slightly non-Gaussian, as "
              "in the paper's Fig. 9f)\n", qq.linearity);

  // --- Optional: variance-reduced yield via LHS / Halton designs ----------
  if (scheme != "iid") {
    const std::size_t dims = 6 * 5;  // transistors x VS parameters
    const std::size_t budget =
        static_cast<std::size_t>(std::max(kSamples / 2, 20));
    std::unique_ptr<mc::SampleGenerator> gen;
    if (scheme == "lhs") {
      gen = std::make_unique<mc::LatinHypercubeSampler>(dims, budget, 314);
    } else {
      gen = std::make_unique<mc::HaltonSampler>(dims, budget, 314);
    }
    const yield::YieldEstimate stratified =
        generatorYield(kit, *gen, kSnmFloor, sessionOptions);
    std::printf("\n%s read-stability yield at HALF budget (%zu samples): "
                "%.2f %%  [95%% CI %.2f..%.2f]\n",
                scheme == "lhs" ? "Latin-hypercube" : "Randomized-Halton",
                budget, 100.0 * stratified.yield, 100.0 * stratified.lower,
                100.0 * stratified.upper);
    // Smoke contract: the stratified design must agree with brute-force MC
    // within a generous tolerance even at the reduced-count smoke budget
    // (both estimate the same smooth-response yield; LHS only shrinks the
    // estimator variance).
    const double gap = std::fabs(stratified.yield - moderate.yield);
    std::printf("  |yield(%s) - yield(mc)| = %.3f\n", scheme.c_str(), gap);
    require(gap <= 0.15,
            "stratified yield diverged from brute-force Monte Carlo");
  }

  // --- Stage 2: the deep tail via importance sampling ---------------------
  constexpr double kTailFloor = 0.015;  // V; plain MC sees ~no failures here
  constexpr std::size_t kDims = 6 * 5;  // transistors x VS parameters

  // Session-backed indicator: lease a READ fixture, point its
  // FixedDeltaProvider at z, rebind, measure.  Thread-safe (one session
  // per concurrent evaluation), so the parallel sampler can hammer it.
  ButterflyPool tailPool(
      [&kit](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, kit.vdd(),
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [&kit] { return std::make_unique<FixedDeltaProvider>(kit); },
      sessionOptions);

  const yield::FailureIndicator cellFails =
      [&](const std::vector<double>& z) {
        auto lease = tailPool.acquire();
        static_cast<FixedDeltaProvider&>(lease->provider()).setZ(z);
        lease->rebind();
        return measure::measureSnm(lease->fixture(), lease->spice(), 45)
                   .cellSnm() < kTailFloor;
      };

  // Physics-guided extra directions: READ failures are driven by opposing
  // VT0 shifts of the cross-coupled pair (PD1 vs PD2) and the pass gates.
  std::vector<double> skewPulldowns(kDims, 0.0);
  skewPulldowns[1 * 5 + 0] = 1.0;   // PD1 VT0 up
  skewPulldowns[4 * 5 + 0] = -1.0;  // PD2 VT0 down
  std::vector<double> skewWithPass = skewPulldowns;
  skewWithPass[2 * 5 + 0] = -1.0;   // PG1 VT0 down: stronger read disturb

  std::printf("\nDeep-tail failure probability (READ SNM < %.0f mV):\n",
              kTailFloor * 1e3);
  const std::vector<double> shift = yield::findFailureShift(
      cellFails, kDims, {skewPulldowns, skewWithPass});
  double shiftNorm = 0.0;
  for (double s : shift) shiftNorm += s * s;
  std::printf("  shift found at |z| = %.2f sigma\n", std::sqrt(shiftNorm));

  yield::ImportanceOptions isOpt;
  isOpt.samples = kIsSamples;
  isOpt.seed = 99;
  const yield::ImportanceResult is =
      yield::importanceSample(cellFails, shift, isOpt);
  const yield::ImportanceResult bf =
      yield::bruteForceProbability(cellFails, kDims, isOpt);

  std::printf("  importance sampling: P = %.3e  (rel. std. err. %.1f %%, "
              "%d/%d hits)\n", is.probability, 100.0 * is.relStdError,
              is.failingDraws, isOpt.samples);
  std::printf("  brute force, same budget: %d hits -> no usable estimate\n",
              bf.failingDraws);
  std::printf("  equivalent bit-level yield: %.6f %%\n",
              100.0 * (1.0 - is.probability));
  return 0;
}
