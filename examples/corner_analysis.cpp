// Statistical corner extraction and validation against Monte Carlo.
//
// Derives 3-sigma FF/SS/FS/SF cards from the calibrated statistical VS
// kit (most-probable Idsat excursion points) and runs the INV FO3 delay
// at every corner.  Validation follows the corners' own semantics: they
// model a GLOBAL (die-level) skew, so the FF..SS window must bracket the
// +/-3 sigma spread of a die-level Monte Carlo where every device on the
// die shares one draw along the corner axes.  The per-instance mismatch
// population is also shown for contrast: it is wider, because the corner
// axes only carry the Idsat-aligned component of variation -- which is
// exactly why mismatch cannot be signed off with corners alone.
//
// Both Monte Carlos run through the build-once / rebind-per-sample
// campaign engine: the INV FO3 fixture is built once per worker and only
// its device cards are rebound per sample.
//
// Usage: example_corner_analysis [samples]   (default 500)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/corners.hpp"
#include "core/statistical_vs.hpp"
#include "measure/delay.hpp"
#include "mc/circuit_campaign.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"

using namespace vsstat;

namespace {

/// Scales a corner delta: z = +3 reproduces the fast corner, z = -3 the
/// slow one, intermediate z the die's position along that axis.
models::VariationDelta scaled(const models::VariationDelta& fast, double z) {
  models::VariationDelta d;
  const double f = z / 3.0;
  d.dVt0 = f * fast.dVt0;
  d.dLeff = f * fast.dLeff;
  d.dWeff = f * fast.dWeff;
  d.dMu = f * fast.dMu;
  d.dCinv = f * fast.dCinv;
  return d;
}

/// Die-level provider: one shared (zN, zP) draw for all instances of a
/// sample.  reseed() draws the die's position from the sample stream, so
/// the provider drops straight into a campaign session.
class GlobalSkewProvider final : public circuits::DeviceProvider {
 public:
  GlobalSkewProvider(const core::StatisticalVsKit& kit,
                     const core::StatisticalCorners& corners)
      : kit_(kit),
        fastN_(corners.delta(core::Corner::FF, models::DeviceType::Nmos)),
        fastP_(corners.delta(core::Corner::FF, models::DeviceType::Pmos)) {}

  void reseed(const stats::Rng& rng) override {
    stats::Rng stream = rng;
    nmos_ = scaled(fastN_, stream.normal());
    pmos_ = scaled(fastP_, stream.normal());
  }

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string&,
      const models::DeviceGeometry& nominal) override {
    const models::VariationDelta& d =
        type == models::DeviceType::Nmos ? nmos_ : pmos_;
    return {std::make_unique<models::VsModel>(
                models::applyToVs(kit_.nominal(type), d)),
            models::applyGeometry(nominal, d)};
  }

 private:
  const core::StatisticalVsKit& kit_;
  models::VariationDelta fastN_;
  models::VariationDelta fastP_;
  models::VariationDelta nmos_;
  models::VariationDelta pmos_;
};

mc::McResult runInvDelayCampaign(const mc::McOptions& opt,
                                 const mc::ProviderFactory& providers) {
  return mc::runCampaign<circuits::GateFo3Bench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildInvFo3(provider, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      providers,
      [](std::size_t, sim::CampaignSession<circuits::GateFo3Bench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] = measure::measureGateDelays(session.fixture(), session.spice())
                     .average();
      });
}

}  // namespace

int main(int argc, char** argv) {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  const core::StatisticalCorners corners(kit);
  std::printf("%s\n", corners.summary().c_str());

  // Corner delays.
  std::printf("INV FO3 delay per corner:\n");
  double ffDelay = 0.0;
  double ssDelay = 0.0;
  for (const core::Corner c : core::kAllCorners) {
    auto provider = corners.makeProvider(c);
    circuits::GateFo3Bench bench = circuits::buildInvFo3(
        *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
    const measure::GateDelays d = measure::measureGateDelays(bench);
    std::printf("  %s: tpHL = %.2f ps, tpLH = %.2f ps, avg = %.2f ps\n",
                core::toString(c), d.tphl * 1e12, d.tplh * 1e12,
                d.average() * 1e12);
    if (c == core::Corner::FF) ffDelay = d.average();
    if (c == core::Corner::SS) ssDelay = d.average();
  }

  const int kSamples = argc > 1 ? std::max(std::atoi(argv[1]), 20) : 500;

  // Die-level Monte Carlo along the corner axes: each sample is one die
  // with shared (zN, zP).  This is the population the corner methodology
  // claims to bound.
  mc::McOptions globalOpt;
  globalOpt.samples = kSamples;
  globalOpt.seed = 4242;
  const mc::McResult globalMc = runInvDelayCampaign(globalOpt, [&] {
    return std::make_unique<GlobalSkewProvider>(kit, corners);
  });

  const stats::Summary g = stats::summarize(globalMc.metrics[0]);
  const double lo3 = g.mean - 3.0 * g.stddev;
  const double hi3 = g.mean + 3.0 * g.stddev;
  std::printf("\nDie-level MC (%d dies): mean = %.2f ps, sigma = %.2f ps\n",
              kSamples, g.mean * 1e12, g.stddev * 1e12);
  std::printf("  +/-3 sigma window: [%.2f, %.2f] ps\n", lo3 * 1e12,
              hi3 * 1e12);
  std::printf("  corner window:     [%.2f, %.2f] ps\n", ffDelay * 1e12,
              ssDelay * 1e12);
  const bool brackets = ffDelay <= lo3 + 0.02e-12 && ssDelay >= hi3 - 0.02e-12;
  std::printf("  corners bracket the die-level population: %s\n",
              brackets ? "yes" : "NO");

  // Per-instance mismatch population, for contrast.
  mc::McOptions localOpt;
  localOpt.samples = kSamples;
  localOpt.seed = 4243;
  const mc::McResult localMc = runInvDelayCampaign(
      localOpt, [&] { return kit.makeProvider(stats::Rng(0)); });
  const stats::Summary l = stats::summarize(localMc.metrics[0]);
  std::printf("\nPer-instance mismatch MC, for contrast: sigma = %.2f ps vs\n"
              "  the die-level %.2f ps.  The corner axes carry only the\n"
              "  Idsat-aligned component of variation; independent full\n"
              "  5-parameter draws per device also move what Idsat does not\n"
              "  see (e.g. gate capacitance loading), so the mismatch spread\n"
              "  is wider and must be signed off statistically -- corners\n"
              "  only bound the global component they were built from.\n",
              l.stddev * 1e12, g.stddev * 1e12);
  return brackets ? 0 : 1;
}
