// Statistical corner extraction and validation against Monte Carlo.
//
// Derives 3-sigma FF/SS/FS/SF cards from the calibrated statistical VS
// kit (most-probable Idsat excursion points) and runs the INV FO3 delay
// at every corner.  Validation follows the corners' own semantics: they
// model a GLOBAL (die-level) skew, so the FF..SS window must bracket the
// +/-3 sigma spread of a die-level Monte Carlo where every device on the
// die shares one draw along the corner axes.  The per-instance mismatch
// population is also shown for contrast: it is wider, because the corner
// axes only carry the Idsat-aligned component of variation -- which is
// exactly why mismatch cannot be signed off with corners alone.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/corners.hpp"
#include "core/statistical_vs.hpp"
#include "measure/delay.hpp"
#include "mc/runner.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"

using namespace vsstat;

namespace {

/// Scales a corner delta: z = +3 reproduces the fast corner, z = -3 the
/// slow one, intermediate z the die's position along that axis.
models::VariationDelta scaled(const models::VariationDelta& fast, double z) {
  models::VariationDelta d;
  const double f = z / 3.0;
  d.dVt0 = f * fast.dVt0;
  d.dLeff = f * fast.dLeff;
  d.dWeff = f * fast.dWeff;
  d.dMu = f * fast.dMu;
  d.dCinv = f * fast.dCinv;
  return d;
}

/// Die-level provider: one shared (zN, zP) draw for all instances.
class GlobalSkewProvider final : public circuits::DeviceProvider {
 public:
  GlobalSkewProvider(const core::StatisticalVsKit& kit,
                     const core::StatisticalCorners& corners, double zN,
                     double zP)
      : kit_(kit),
        nmos_(scaled(corners.delta(core::Corner::FF, models::DeviceType::Nmos),
                     zN)),
        pmos_(scaled(corners.delta(core::Corner::FF, models::DeviceType::Pmos),
                     zP)) {}

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string&,
      const models::DeviceGeometry& nominal) override {
    const models::VariationDelta& d =
        type == models::DeviceType::Nmos ? nmos_ : pmos_;
    return {std::make_unique<models::VsModel>(
                models::applyToVs(kit_.nominal(type), d)),
            models::applyGeometry(nominal, d)};
  }

 private:
  const core::StatisticalVsKit& kit_;
  models::VariationDelta nmos_;
  models::VariationDelta pmos_;
};

}  // namespace

int main() {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  const core::StatisticalCorners corners(kit);
  std::printf("%s\n", corners.summary().c_str());

  // Corner delays.
  std::printf("INV FO3 delay per corner:\n");
  double ffDelay = 0.0;
  double ssDelay = 0.0;
  for (const core::Corner c : core::kAllCorners) {
    auto provider = corners.makeProvider(c);
    circuits::GateFo3Bench bench = circuits::buildInvFo3(
        *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
    const measure::GateDelays d = measure::measureGateDelays(bench);
    std::printf("  %s: tpHL = %.2f ps, tpLH = %.2f ps, avg = %.2f ps\n",
                core::toString(c), d.tphl * 1e12, d.tplh * 1e12,
                d.average() * 1e12);
    if (c == core::Corner::FF) ffDelay = d.average();
    if (c == core::Corner::SS) ssDelay = d.average();
  }

  // Die-level Monte Carlo along the corner axes: each sample is one die
  // with shared (zN, zP).  This is the population the corner methodology
  // claims to bound.
  constexpr int kSamples = 500;
  mc::McOptions globalOpt;
  globalOpt.samples = kSamples;
  globalOpt.seed = 4242;
  const mc::McResult globalMc = mc::runCampaign(
      globalOpt, 1,
      [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        GlobalSkewProvider provider(kit, corners, rng.normal(), rng.normal());
        circuits::GateFo3Bench bench = circuits::buildInvFo3(
            provider, circuits::CellSizing{}, circuits::StimulusSpec{});
        out[0] = measure::measureGateDelays(bench).average();
      });

  const stats::Summary g = stats::summarize(globalMc.metrics[0]);
  const double lo3 = g.mean - 3.0 * g.stddev;
  const double hi3 = g.mean + 3.0 * g.stddev;
  std::printf("\nDie-level MC (%d dies): mean = %.2f ps, sigma = %.2f ps\n",
              kSamples, g.mean * 1e12, g.stddev * 1e12);
  std::printf("  +/-3 sigma window: [%.2f, %.2f] ps\n", lo3 * 1e12,
              hi3 * 1e12);
  std::printf("  corner window:     [%.2f, %.2f] ps\n", ffDelay * 1e12,
              ssDelay * 1e12);
  const bool brackets = ffDelay <= lo3 + 0.02e-12 && ssDelay >= hi3 - 0.02e-12;
  std::printf("  corners bracket the die-level population: %s\n",
              brackets ? "yes" : "NO");

  // Per-instance mismatch population, for contrast.
  mc::McOptions localOpt;
  localOpt.samples = kSamples;
  localOpt.seed = 4243;
  const mc::McResult localMc = mc::runCampaign(
      localOpt, 1,
      [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = kit.makeProvider(rng);
        circuits::GateFo3Bench bench = circuits::buildInvFo3(
            *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
        out[0] = measure::measureGateDelays(bench).average();
      });
  const stats::Summary l = stats::summarize(localMc.metrics[0]);
  std::printf("\nPer-instance mismatch MC, for contrast: sigma = %.2f ps vs\n"
              "  the die-level %.2f ps.  The corner axes carry only the\n"
              "  Idsat-aligned component of variation; independent full\n"
              "  5-parameter draws per device also move what Idsat does not\n"
              "  see (e.g. gate capacitance loading), so the mismatch spread\n"
              "  is wider and must be signed off statistically -- corners\n"
              "  only bound the global component they were built from.\n",
              l.stddev * 1e12, g.stddev * 1e12);
  return brackets ? 0 : 1;
}
