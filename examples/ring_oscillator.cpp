// Ring-oscillator frequency distribution under within-die variation.
//
// The paper's Fig. 6 plots "frequency (1/delay)" against leakage; a ring
// oscillator is the canonical silicon structure behind that frequency
// axis.  This example Monte Carlos a 3-stage ring with the statistical VS
// kit and reports the frequency distribution, plus the nominal and
// per-supply behaviour.
// Usage: example_ring_oscillator [samples]   (default 120)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "measure/delay.hpp"
#include "mc/runner.hpp"
#include "stats/descriptive.hpp"

using namespace vsstat;

int main(int argc, char** argv) {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  // Nominal frequency vs supply: the DVS operating curve.
  std::printf("3-stage ring oscillator, P/N = 600/300 nm\n\n");
  std::printf("nominal frequency vs supply:\n");
  for (const double vdd : {0.9, 0.8, 0.7, 0.6}) {
    auto provider = kit.makeNominalProvider();
    circuits::RingOscillatorBench ro = circuits::buildRingOscillator(
        *provider, 3, circuits::CellSizing{}, vdd);
    const measure::OscillationResult r = measure::measureOscillation(ro);
    std::printf("  Vdd = %.2f V: f = %6.2f GHz (swing %.2f V)\n", vdd,
                r.frequency / 1e9, r.swing);
  }

  // Mismatch Monte Carlo at the nominal supply.
  const int kSamples = argc > 1 ? std::max(std::atoi(argv[1]), 10) : 120;
  mc::McOptions mcOpt;
  mcOpt.samples = kSamples;
  mcOpt.seed = 808;
  const mc::McResult mc = mc::runCampaign(
      mcOpt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = kit.makeProvider(rng);
        circuits::RingOscillatorBench ro = circuits::buildRingOscillator(
            *provider, 3, circuits::CellSizing{}, kit.vdd());
        out[0] = measure::measureOscillation(ro).frequency;
      });

  const stats::Summary s = stats::summarize(mc.metrics[0]);
  std::printf("\nmismatch Monte Carlo (%d samples) at %.2f V:\n", kSamples,
              kit.vdd());
  std::printf("  f = %.2f GHz +/- %.2f GHz (sigma/mean = %.2f %%)\n",
              s.mean / 1e9, s.stddev / 1e9, 100.0 * s.stddev / s.mean);
  std::printf("  spread: [%.2f, %.2f] GHz over the population\n",
              s.min / 1e9, s.max / 1e9);
  std::printf("\nThe 1/delay 'frequency' axis of the paper's Fig. 6 is\n"
              "exactly this quantity; the within-die sigma here is smaller\n"
              "than Fig. 6's total spread because a ring averages mismatch\n"
              "over 2N uncorrelated switching events per period.\n");
  return 0;
}
