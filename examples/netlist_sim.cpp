// Driving the engine from a SPICE netlist file: write a small CMOS
// inverter deck to disk, parse it, run the .tran analysis it requests,
// and report the propagation delays -- the workflow a user with existing
// .sp decks would follow.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "measure/delay.hpp"
#include "spice/analysis.hpp"
#include "spice/netlist.hpp"
#include "spice/waveform.hpp"

using namespace vsstat;

namespace {

constexpr const char* kDeck = R"(* CMOS inverter, VS model cards
.title netlist-driven inverter
VDD vdd 0 0.9
VIN in 0 PULSE(0 0.9 10p 12p 12p 80p)
MP  out in vdd pch W=600n L=40n
MN  out in 0   nch W=300n L=40n
* load: three copies of the same gate, as gate capacitance
CL  out 0 2f
.model nch vs_nmos
.model pch vs_pmos vt0=0.38
.tran 0.3p 180p
.end
)";

}  // namespace

int main() {
  const std::string path = "netlist_sim_inverter.sp";
  {
    std::ofstream out(path);
    out << kDeck;
  }
  std::printf("wrote %s, parsing it back...\n", path.c_str());

  spice::ParsedNetlist net = spice::parseNetlistFile(path);
  std::printf("title: %s\n", net.title.c_str());
  if (!net.tran) {
    std::printf("deck has no .tran card\n");
    return 1;
  }

  spice::TransientOptions opt;
  opt.dt = net.tran->first;
  opt.tStop = net.tran->second;
  const spice::Waveform wave = spice::transient(net.circuit, opt);

  const spice::NodeId in = net.circuit.node("in");
  const spice::NodeId out = net.circuit.node("out");
  const double vdd = 0.9;

  // 50% crossings: input rises at ~16 ps, output falls; input falls at
  // ~102 ps, output rises.
  const auto need = [](std::optional<double> t, const char* what) {
    if (!t) {
      std::printf("missing %s crossing\n", what);
      std::exit(1);
    }
    return *t;
  };
  const double tInRise =
      need(wave.crossing(in, 0.5 * vdd, true, 0.0), "input rise");
  const double tOutFall =
      need(wave.crossing(out, 0.5 * vdd, false, tInRise), "output fall");
  const double tInFall =
      need(wave.crossing(in, 0.5 * vdd, false, tOutFall), "input fall");
  const double tOutRise =
      need(wave.crossing(out, 0.5 * vdd, true, tInFall), "output rise");

  std::printf("tpHL = %.2f ps, tpLH = %.2f ps\n",
              (tOutFall - tInRise) * 1e12, (tOutRise - tInFall) * 1e12);
  std::printf("V(out) settles at %.3f V\n", wave.finalValue(out));
  return 0;
}
