// Dynamic-voltage-scaling timing analysis -- the paper's low-power result
// (Fig. 7): a single statistical VS model, extracted once at nominal Vdd,
// predicts the delay distribution at scaled supplies including the
// non-Gaussian skew that breaks Gaussian SSTA assumptions.
//
// The Monte Carlo runs through the build-once / rebind-per-sample campaign
// engine (mc::runCampaign circuit overload): one NAND2 FO3 fixture per
// worker, rebound per sample, instead of rebuilding circuit + solver state
// every sample.
//
// Usage: example_dvs_timing [samples] [--fast] [--reuse-pivot]
//                           [--statistical]
//   samples        default 500; CI smoke uses a few
//   --fast         NumericsMode::fast -- SIMD transcendental kernels in the
//                  device-bank lanes; delay metrics agree with the
//                  reference mode within solver tolerance (see README,
//                  session modes)
//   --reuse-pivot  SolverMode::reusePivot -- one canonical LU pivot order
//                  amortized across every solve of a worker session,
//                  breakdown-monitored; composes with --fast
//   --statistical  ToleranceTier::statistical -- warm-chain blocks seed
//                  each sample's transient DC + predictor steps from the
//                  previous sample; accuracy contract moves to the delay
//                  ESTIMATORS (mean/sigma within MC error), not the sample
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "measure/delay.hpp"
#include "mc/circuit_campaign.hpp"
#include "sim/session.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"
#include "stats/qq.hpp"
#include "util/error.hpp"

using namespace vsstat;

int main(int argc, char** argv) {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  int kSamples = 500;
  spice::SessionOptions sessionOptions;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      sessionOptions.numerics = models::NumericsMode::fast;
    } else if (std::strcmp(argv[i], "--reuse-pivot") == 0) {
      sessionOptions.solver = linalg::SolverMode::reusePivot;
    } else if (std::strcmp(argv[i], "--statistical") == 0) {
      sessionOptions.tier = spice::ToleranceTier::statistical;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "example_dvs_timing: unknown flag '%s' "
                   "(usage: example_dvs_timing [samples] [--fast] "
                   "[--reuse-pivot] [--statistical])\n",
                   argv[i]);
      return 2;
    } else {
      kSamples = std::max(std::atoi(argv[i]), 10);
    }
  }
  std::printf("NAND2 FO3 delay under dynamic voltage scaling (%d MC runs, "
              "statistical VS model, %s numerics, %s solver, %s tier)\n\n",
              kSamples, models::toString(sessionOptions.numerics),
              linalg::toString(sessionOptions.solver),
              spice::toString(sessionOptions.tier));
  std::printf("%-8s %-12s %-14s %-10s %-12s %-10s\n", "Vdd [V]", "mean [ps]",
              "sigma/mean [%]", "skewness", "QQ r^2", "Gaussian?");

  int totalSamples = 0;
  int totalDropped = 0;
  int totalRescued = 0;
  std::uint64_t totalIters = 0;
  std::uint64_t totalHits = 0;
  std::uint64_t totalOpportunities = 0;
  std::size_t totalSucceeded = 0;
  for (const double vdd : {0.9, 0.7, 0.55}) {
    circuits::StimulusSpec stim;
    stim.vdd = vdd;
    stim.slew = vdd >= 0.9 ? 12e-12 : (vdd >= 0.7 ? 18e-12 : 30e-12);
    stim.width = vdd >= 0.9 ? 80e-12 : (vdd >= 0.7 ? 140e-12 : 280e-12);
    const double dt = vdd >= 0.7 ? 0.3e-12 : 0.6e-12;

    mc::McOptions mcOpt;
    mcOpt.samples = kSamples;
    mcOpt.seed = 4242;
    const mc::McResult r = mc::runCampaign<circuits::GateFo3Bench>(
        mcOpt, 1,
        [&](circuits::DeviceProvider& provider) {
          return circuits::buildNand2Fo3(provider, circuits::CellSizing{},
                                         stim);
        },
        [&] { return kit.makeProvider(stats::Rng(0)); },
        [&](std::size_t, sim::CampaignSession<circuits::GateFo3Bench>& session,
            stats::Rng&, std::vector<double>& out) {
          out[0] = measure::measureGateDelays(session.fixture(),
                                              session.spice(), dt)
                       .average();
        },
        sessionOptions);

    const auto s = stats::summarize(r.metrics[0]);
    const auto qq = stats::qqAgainstNormal(r.metrics[0]);
    const auto jb = stats::jarqueBera(r.metrics[0]);
    std::printf("%-8.2f %-12.2f %-14.2f %-10.3f %-12.4f %-10s\n", vdd,
                s.mean * 1e12, 100.0 * s.stddev / s.mean, s.skewness,
                qq.linearity, jb.rejectAt5Percent ? "no" : "yes");

    totalSamples += static_cast<int>(r.sampleCount()) + r.failures;
    totalDropped += r.failures;
    totalRescued += r.rescued;
    totalIters += r.newtonIterations;
    totalHits += r.warmStartHits;
    totalOpportunities += r.warmStartOpportunities;
    totalSucceeded += r.sampleCount();
    if (r.failures > 0 || r.rescued > 0) {
      std::printf("  [Vdd %.2f: %d dropped, %d rescued", vdd, r.failures,
                  r.rescued);
      for (int c = 0; c < kFailureClassCount; ++c) {
        const auto cls = static_cast<FailureClass>(c);
        if (r.failuresOf(cls) > 0)
          std::printf("; %s: %d", toString(cls), r.failuresOf(cls));
      }
      if (r.firstFailure.valid)
        std::printf("; first: sample %zu (%s)", r.firstFailure.sampleIndex,
                    toString(r.firstFailure.failureClass));
      std::printf("]\n");
    }
  }

  // Error-above-threshold policy for the unattended smoke flow: a degraded
  // campaign (more than 1% of corners dropped even after the rescue
  // ladder) must exit non-zero, not print a biased table.
  constexpr double kMaxDropFraction = 0.01;
  const double dropFraction =
      static_cast<double>(totalDropped) / static_cast<double>(totalSamples);
  std::printf("\nfailure accounting: %d of %d samples dropped, %d rescued\n",
              totalDropped, totalSamples, totalRescued);
  if (dropFraction > kMaxDropFraction) {
    std::printf("campaign health: DEGRADED (drop fraction %.2f %% > %.0f %%)\n",
                100.0 * dropFraction, 100.0 * kMaxDropFraction);
    return 3;
  }
  std::printf("campaign health: OK (drop fraction within %.0f %% budget)\n",
              100.0 * kMaxDropFraction);
  if (totalSucceeded > 0) {
    std::printf("newton: %.1f iterations/sample, warm-start hit rate %.0f %% "
                "(%s tier)\n",
                static_cast<double>(totalIters) /
                    static_cast<double>(totalSucceeded),
                totalOpportunities == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(totalHits) /
                          static_cast<double>(totalOpportunities),
                spice::toString(sessionOptions.tier));
  }

  // Factor-shape telemetry from a probe session on the same topology: the
  // sparse factor's structure is sample-independent, so one DC solve shows
  // what every campaign solve paid.
  {
    circuits::StimulusSpec stim;
    sim::CampaignSession<circuits::GateFo3Bench> probe(
        [&](circuits::DeviceProvider& provider) {
          return circuits::buildNand2Fo3(provider, circuits::CellSizing{},
                                         stim);
        },
        kit.makeProvider(stats::Rng(0)), sessionOptions);
    (void)probe.spice().dcOperatingPoint();
    const auto t = probe.spice().solverTelemetry();
    std::printf("solver factor: %zu pattern nnz -> %zu factor nnz "
                "(fill %.2fx), ordering %llu us, full factor %llu us\n",
                t.patternNnz, t.factorNnz, t.fillRatio,
                static_cast<unsigned long long>(t.orderingMicros),
                static_cast<unsigned long long>(t.fullFactorMicros));
  }

  std::printf("\nNo re-extraction was performed per supply: the BPV-extracted\n"
              "parameter statistics are bias-independent, so one statistical\n"
              "model covers the whole DVS range (unlike electrically-fitted\n"
              "approaches, cf. the paper's PSP comparison).\n");
  return 0;
}
