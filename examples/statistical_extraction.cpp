// The paper's headline flow, end to end:
//   1. fit a nominal VS card to a golden design kit (Fig. 1),
//   2. measure target variances across geometries on the golden kit,
//   3. run Backward Propagation of Variance (Eq. 10) -> Table II alphas,
//   4. validate: device-level MC sigma, VS vs golden (Table III).
#include <cstdio>

#include "core/statistical_vs.hpp"
#include "measure/device_metrics.hpp"
#include "models/bsim_lite.hpp"
#include "stats/descriptive.hpp"

using namespace vsstat;

int main() {
  const extract::GoldenKit golden = extract::GoldenKit::default40nm();

  std::printf("Characterizing the statistical VS kit against the golden "
              "40-nm kit...\n");
  core::CharacterizeOptions opt;
  opt.samplesPerGeometry = 800;
  const core::StatisticalVsKit kit =
      core::StatisticalVsKit::characterize(golden, opt);
  std::printf("%s\n", kit.summary().c_str());

  // Validation at the paper's Table III geometries.
  std::printf("Validation (device-level MC, 1500 samples each):\n");
  std::printf("%-18s %-6s %-14s %-14s\n", "geometry", "type",
              "sigma(Idsat) uA", "sigma(logIoff)");
  for (const auto type : {models::DeviceType::Nmos, models::DeviceType::Pmos}) {
    for (const double widthNm : {1500.0, 600.0, 120.0}) {
      const auto geom = models::geometryNm(widthNm, 40.0);
      stats::Rng rng(7);
      stats::MomentAccumulator idsat, ioff;
      for (int s = 0; s < 1500; ++s) {
        const auto inst = kit.makeInstance(type, geom, rng);
        idsat.add(measure::idsat(*inst.model, inst.geometry, kit.vdd()));
        ioff.add(measure::log10Ioff(*inst.model, inst.geometry, kit.vdd()));
      }
      std::printf("W/L = %4.0f/40 nm   %-6s %-14.2f %-14.3f\n", widthNm,
                  models::toString(type), idsat.stddev() * 1e6,
                  ioff.stddev());
    }
  }
  std::printf("\nCompare with the paper's Table III: sigma(Idsat) ~ 33/20/9 uA\n"
              "for wide/medium/short NMOS in their 40-nm process.\n");
  return 0;
}
