#!/usr/bin/env python3
"""CI parallel-scaling audit: bit-identity + efficiency across worker counts.

Input is the concatenated JSONL of several `bench_campaign --scaling
--threads N` runs (one scaling.jsonl, uploaded as a CI artifact).  For each
workload row name the script

  * asserts every thread count reported the SAME metrics_fnv1a -- the
    campaign runner's cross-thread bit-identity contract, now checked on
    every push rather than only in unit tests,
  * prints samples/sec per worker count (the ROADMAP "parallel-scaling
    audit" record), and
  * computes the parallel efficiency of every row against the workload's
    lowest thread count: eff(T) = (sps_T / sps_base) / (T / base) * 100%.
    Efficiency is REPORTED, and optionally gated with --min-efficiency
    (off by default: per-push CI runners have too few cores for a
    meaningful gate; the nightly/dispatch scaling-audit job records the
    numbers on whatever hardware it gets).

Requires at least two distinct thread counts per workload.  Markdown goes
to --summary (point it at $GITHUB_STEP_SUMMARY).  Exit 1 on any hash
mismatch, missing coverage, or (when --min-efficiency is given) a row
below the efficiency floor.  Stdlib only.
"""

import argparse
import collections
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="concatenated --scaling run output")
    parser.add_argument("--summary", default=None)
    parser.add_argument("--min-efficiency", type=float, default=None,
                        help="fail rows whose parallel efficiency [%%] at "
                             "the highest thread count falls below this "
                             "(default: report only)")
    args = parser.parse_args()

    rows = []
    with open(args.jsonl, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as err:
                sys.exit(f"error: {args.jsonl}:{lineno}: not JSON ({err})")

    by_name = collections.defaultdict(list)
    for row in rows:
        by_name[row["name"]].append(row)

    if not by_name:
        sys.exit(f"error: no rows in {args.jsonl}")

    failures = 0
    table = []  # (name, threads, samples_per_sec, efficiency|None, hash, ok)
    for name, group in sorted(by_name.items()):
        group.sort(key=lambda r: r.get("threads", 0))
        threads = [r.get("threads") for r in group]
        if len(set(threads)) < 2:
            print(f"error: workload {name} ran at {len(set(threads))} "
                  f"thread count(s); need >= 2 for a scaling check")
            failures += 1
        hashes = {r.get("metrics_fnv1a") for r in group}
        identical = len(hashes) == 1 and None not in hashes

        base = group[0]
        base_threads = base.get("threads") or 1
        base_sps = base.get("samples_per_sec") or 0.0
        for r in group:
            t = r.get("threads") or 1
            sps = r.get("samples_per_sec") or 0.0
            if t == base_threads or base_sps <= 0:
                eff = 100.0 if t == base_threads else None
            else:
                eff = (sps / base_sps) / (t / base_threads) * 100.0
            row_ok = identical
            if (args.min_efficiency is not None and eff is not None
                    and t == max(threads) and eff < args.min_efficiency):
                row_ok = False
            table.append((name, t, sps, eff, r.get("metrics_fnv1a"), row_ok))
            if identical and not row_ok:
                failures += 1
        if not identical:
            failures += 1

    print("parallel-scaling audit (metrics must be bit-identical across "
          "worker counts; efficiency vs the lowest count):")
    for name, threads, sps, eff, fnv, ok in table:
        eff_text = f"{eff:6.1f}%" if eff is not None else "    -  "
        mark = "ok" if ok else "FAIL"
        print(f"  {name:<28} threads={threads:<3} {sps:>8.1f} samples/s  "
              f"eff {eff_text}  {fnv}  {mark}")
    verdict = ("all workloads bit-identical across worker counts" if not failures
               else f"{failures} check(s) FAILED")
    print(f"  -> {verdict}")

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write("### Parallel-scaling audit\n\n")
            fh.write("| workload | threads | samples/sec | efficiency "
                     "| metrics hash | ok |\n|---|---|---|---|---|---|\n")
            for name, threads, sps, eff, fnv, ok in table:
                eff_text = f"{eff:.1f}%" if eff is not None else "-"
                fh.write(f"| {name} | {threads} | {sps:.1f} | {eff_text} "
                         f"| `{fnv}` | {'✅' if ok else '❌'} |\n")
            fh.write(f"\n**{verdict}**\n\n")

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
