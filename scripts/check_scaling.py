#!/usr/bin/env python3
"""CI parallel-scaling smoke: bit-identity + throughput across worker counts.

Input is the concatenated JSONL of several `bench_campaign --scaling
--threads N` runs (one scaling.jsonl, uploaded as a CI artifact).  For each
workload row name the script

  * asserts every thread count reported the SAME metrics_fnv1a -- the
    campaign runner's cross-thread bit-identity contract, now checked on
    every push rather than only in unit tests, and
  * prints samples/sec per worker count (the ROADMAP "parallel-scaling
    audit" record; no threshold is applied, since CI runners have too few
    cores for a meaningful parallel-efficiency gate).

Requires at least two distinct thread counts per workload.  Markdown goes
to --summary (point it at $GITHUB_STEP_SUMMARY).  Exit 1 on any hash
mismatch or missing coverage.  Stdlib only.
"""

import argparse
import collections
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("jsonl", help="concatenated --scaling run output")
    parser.add_argument("--summary", default=None)
    args = parser.parse_args()

    rows = []
    with open(args.jsonl, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as err:
                sys.exit(f"error: {args.jsonl}:{lineno}: not JSON ({err})")

    by_name = collections.defaultdict(list)
    for row in rows:
        by_name[row["name"]].append(row)

    if not by_name:
        sys.exit(f"error: no rows in {args.jsonl}")

    failures = 0
    table = []  # (name, threads, samples_per_sec, hash, ok)
    for name, group in sorted(by_name.items()):
        group.sort(key=lambda r: r.get("threads", 0))
        threads = [r.get("threads") for r in group]
        if len(set(threads)) < 2:
            print(f"error: workload {name} ran at {len(set(threads))} "
                  f"thread count(s); need >= 2 for a scaling check")
            failures += 1
        hashes = {r.get("metrics_fnv1a") for r in group}
        identical = len(hashes) == 1 and None not in hashes
        if not identical:
            failures += 1
        for r in group:
            table.append((name, r.get("threads"), r.get("samples_per_sec"),
                          r.get("metrics_fnv1a"), identical))

    print("parallel-scaling smoke (metrics must be bit-identical across "
          "worker counts):")
    for name, threads, sps, fnv, ok in table:
        mark = "ok" if ok else "HASH MISMATCH"
        print(f"  {name:<24} threads={threads:<3} {sps:>8.1f} samples/s  "
              f"{fnv}  {mark}")
    verdict = ("bit-identical across all worker counts" if failures == 0
               else f"{failures} workload(s) FAILED the identity check")
    print(f"  -> {verdict}")

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write("### Parallel-scaling smoke\n\n")
            fh.write("| workload | threads | samples/sec | metrics hash "
                     "| bit-identical |\n|---|---|---|---|---|\n")
            for name, threads, sps, fnv, ok in table:
                fh.write(f"| {name} | {threads} | {sps:.1f} | `{fnv}` "
                         f"| {'✅' if ok else '❌'} |\n")
            fh.write(f"\n**{verdict}**\n\n")

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
