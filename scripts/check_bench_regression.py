#!/usr/bin/env python3
"""CI bench-regression gate: quick-bench JSONL vs a committed BENCH_*.json.

Each current row (one JSON object per line, as every bench_* binary prints)
is matched by "name" against the committed reference and judged per metric:

  * throughput metrics -- samples_per_sec, speedup_vs_* (higher-better) and
    us_per_sample, ns_per_iter, ns_per_device_eval (lower-better) -- fail
    when they regress by more than the tolerance band (default 25%,
    --tolerance).  Reference rows may widen a band for a specific metric
    with "ci_tol_<metric>": 0.6 (used for absolute-time metrics, which
    carry machine-to-machine variance that ratio metrics do not).
  * correctness booleans -- bit_identical, within_tolerance -- must stay
    true wherever the reference says true, tolerance-free.
  * allocation metrics -- allocs, allocs_per_sample -- must not exceed the
    reference by more than --alloc-slack (default 0.5/sample; campaign
    bookkeeping amortizes differently at --quick sample counts, so
    reference rows may override the ceiling with "ci_max_<metric>": N).
  * contract ceilings -- estimator_max_sigma_delta -- must stay below a
    fixed bound (3 sigma by default; "ci_max_<metric>" overrides), so the
    statistical tier's accuracy contract gates independently of the
    throughput bands.
  * "ci_skip": ["metric", ...] in a reference row skips named metrics.

Every reference row must be present in the current output (a vanished row
means the bench silently lost coverage); current rows without a reference
are reported but pass.  A side-by-side table goes to stdout and, when
--summary is given (point it at $GITHUB_STEP_SUMMARY), as Markdown into
the job summary.  Exit 1 on any failure, 2 on usage errors.

Stdlib only -- no pip installs on the runner.
"""

import argparse
import json
import sys

LOWER_BETTER = ("us_per_sample", "ns_per_iter", "ns_per_device_eval",
                "fresh_factor_us", "mean_iters_per_sample", "us_per_fit",
                "mean_lm_iters_per_fit", "ttfs_ms", "p99_ttfs_ms")
HIGHER_BETTER = (
    "samples_per_sec",
    "fits_per_sec",
    "speedup_vs_scalar",
    "speedup_vs_scalar_fit",
    "speedup_vs_banked",
    "speedup_vs_rebuild",
    "speedup_vs_fresh",
    "speedup_vs_norescue",
    "speedup_vs_dense_lu",
    "speedup_vs_per_sample",
    "warm_start_hit_rate",
    "converged_fraction",
    "requests_per_sec",
    "warm_vs_cold_ttfs",
)
BOOL_MUST_HOLD = ("bit_identical", "within_tolerance",
                  "within_sigma_contract")
ALLOC_METRICS = ("allocs", "allocs_per_sample", "allocs_per_factor",
                 "allocs_per_fit")
# Hard contract ceilings: fail when the current value exceeds the bound
# (overridable per row with "ci_max_<metric>").  estimator_max_sigma_delta
# is the statistical tier's accuracy contract -- the worst estimator shift
# in units of its Monte Carlo standard error must stay within 3 sigma
# regardless of how the throughput rows move.  The card-parameter error
# caps are the extraction tier's recovery contract: fitted cards must land
# near their per-lane truth regardless of fit throughput.
BOUNDED_METRICS = {"estimator_max_sigma_delta": 3.0,
                   "mean_card_param_rel_error": 0.05,
                   "max_card_param_rel_error": 0.25}


def load_reference(path):
    """Committed BENCH_*.json: either {"results": [...]} or raw JSONL."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
        if isinstance(doc, dict) and "results" in doc:
            return doc["results"]
        if isinstance(doc, list):
            return doc
        if isinstance(doc, dict):
            return [doc]
    except json.JSONDecodeError:
        pass
    return load_jsonl_text(text, path)


def load_jsonl_text(text, path):
    rows = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as err:
            sys.exit(f"error: {path}:{lineno}: not JSON ({err})")
    return rows


def load_current(path):
    with open(path, "r", encoding="utf-8") as fh:
        return load_jsonl_text(fh.read(), path)


def fmt(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def check_row(ref, cur, tolerance, alloc_slack):
    """Yields (metric, ref_value, cur_value, delta_text, ok, rule_text)."""
    skip = set(ref.get("ci_skip", []))

    for metric in BOOL_MUST_HOLD:
        if metric in skip or metric not in ref or metric not in cur:
            continue
        if ref[metric] is True:
            ok = cur[metric] is True
            yield metric, True, cur[metric], "-", ok, "must stay true"

    for metric in LOWER_BETTER + HIGHER_BETTER:
        if metric in skip or metric not in ref or metric not in cur:
            continue
        band = float(ref.get(f"ci_tol_{metric}", tolerance))
        r, c = float(ref[metric]), float(cur[metric])
        if r <= 0:
            continue
        delta = (c - r) / r
        if metric in LOWER_BETTER:
            ok = c <= r * (1.0 + band)
            rule = f"<= ref +{band:.0%}"
        else:
            ok = c >= r * (1.0 - band)
            rule = f">= ref -{band:.0%}"
        yield metric, r, c, f"{delta:+.1%}", ok, rule

    for metric in ALLOC_METRICS:
        if metric in skip or metric not in ref or metric not in cur:
            continue
        ceiling = float(ref.get(f"ci_max_{metric}", float(ref[metric]) + alloc_slack))
        c = float(cur[metric])
        ok = c <= ceiling
        yield metric, float(ref[metric]), c, f"cap {ceiling:.2f}", ok, "no new allocations"

    for metric, default_cap in BOUNDED_METRICS.items():
        if metric in skip or metric not in ref or metric not in cur:
            continue
        ceiling = float(ref.get(f"ci_max_{metric}", default_cap))
        c = float(cur[metric])
        ok = c <= ceiling
        yield metric, float(ref[metric]), c, f"cap {ceiling:.2f}", ok, "contract ceiling"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reference", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative throughput band (default 0.25)")
    parser.add_argument("--alloc-slack", type=float, default=0.5,
                        help="allowed allocs/sample increase (default 0.5)")
    parser.add_argument("--summary", default=None,
                        help="file to append the Markdown table to "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--title", default=None)
    args = parser.parse_args()

    reference = {row["name"]: row for row in load_reference(args.reference)}
    current = {row["name"]: row for row in load_current(args.current)}
    if not reference:
        sys.exit(f"error: no reference rows in {args.reference}")
    if not current:
        sys.exit(f"error: no current rows in {args.current}")

    title = args.title or args.reference
    lines = []  # (name, metric, ref, cur, delta, status, rule)
    failures = 0

    for name, ref in reference.items():
        cur = current.get(name)
        if cur is None:
            lines.append((name, "(row)", "present", "MISSING", "-", False,
                          "reference rows must not vanish"))
            failures += 1
            continue
        for metric, r, c, delta, ok, rule in check_row(
                ref, cur, args.tolerance, args.alloc_slack):
            lines.append((name, metric, fmt(r), fmt(c), delta, ok, rule))
            if not ok:
                failures += 1

    extra = sorted(set(current) - set(reference))
    for name in extra:
        lines.append((name, "(row)", "-", "new", "-", True,
                      "no reference yet"))

    print(f"bench regression check: {title}")
    for name, metric, r, c, delta, ok, rule in lines:
        status = "ok" if ok else f"FAIL ({rule})"
        print(f"  {name:<28} {metric:<22} ref {r:>10}  cur {c:>10}  "
              f"{delta:>8}  {status}")
    verdict = (f"{failures} regression(s) beyond tolerance" if failures
               else "all rows within tolerance")
    print(f"  -> {verdict}")

    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as fh:
            fh.write(f"### Bench regression: {title}\n\n")
            fh.write("| row | metric | reference | current | delta | status |\n")
            fh.write("|---|---|---|---|---|---|\n")
            for name, metric, r, c, delta, ok, rule in lines:
                status = "✅" if ok else f"❌ {rule}"
                fh.write(f"| {name} | {metric} | {r} | {c} | {delta} "
                         f"| {status} |\n")
            fh.write(f"\n**{verdict}**\n\n")

    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
