#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "measure/delay.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"

namespace vsstat::bench {

double mcScale() {
  // Default below 1.0 keeps the full bench suite to ~10 minutes on a
  // laptop-class core; VSSTAT_MC_SCALE=1.0 reproduces the paper's exact
  // sample counts (2500/5000 MC runs etc.).
  static const double scale = [] {
    const char* env = std::getenv("VSSTAT_MC_SCALE");
    if (env == nullptr) return 0.35;
    const double v = std::atof(env);
    return v > 0.0 ? v : 0.35;
  }();
  return scale;
}

int scaledSamples(int paperCount, int minimum) {
  const int scaled = static_cast<int>(paperCount * mcScale() + 0.5);
  return std::max(scaled, minimum);
}

const extract::GoldenKit& goldenKit() {
  static const extract::GoldenKit kit = extract::GoldenKit::default40nm();
  return kit;
}

const core::StatisticalVsKit& calibratedKit() {
  static const core::StatisticalVsKit kit = [] {
    core::CharacterizeOptions opt;
    opt.samplesPerGeometry = scaledSamples(1000, 200);
    return core::StatisticalVsKit::characterize(goldenKit(), opt);
  }();
  return kit;
}

std::string outPath(const std::string& file) { return "out/" + file; }

std::unique_ptr<circuits::DeviceProvider> makeStatProvider(bool useVs,
                                                           stats::Rng rng) {
  if (useVs) return calibratedKit().makeProvider(rng);
  const extract::GoldenKit& g = goldenKit();
  return std::make_unique<mc::BsimStatisticalProvider>(
      g.nmos, g.pmos, g.nmosMismatch, g.pmosMismatch, rng);
}

DelayCampaignResult runGateDelayCampaign(bool useVs, bool nand2,
                                         const circuits::CellSizing& sizing,
                                         const circuits::StimulusSpec& stimulus,
                                         int samples, std::uint64_t seed,
                                         bool withLeakage, double dt) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = seed;
  // Build-once / rebind-per-sample session campaign: each worker builds
  // the fixture once and rebinds device cards per sample (bit-identical to
  // the historical rebuild-per-sample flow, just faster).
  const mc::McResult r = mc::runCampaign<circuits::GateFo3Bench>(
      opt, 2,
      [&](circuits::DeviceProvider& provider) {
        return nand2 ? circuits::buildNand2Fo3(provider, sizing, stimulus)
                     : circuits::buildInvFo3(provider, sizing, stimulus);
      },
      [&] { return makeStatProvider(useVs, stats::Rng(0)); },
      [&](std::size_t, sim::CampaignSession<circuits::GateFo3Bench>& session,
          stats::Rng&, std::vector<double>& out) {
        out[0] = measure::measureGateDelays(session.fixture(), session.spice(),
                                            dt)
                     .average();
        out[1] = withLeakage
                     ? measure::measureLeakage(session.fixture(),
                                               session.spice())
                     : 0.0;
      });
  DelayCampaignResult result;
  result.delays = r.metrics[0];
  result.leakage = r.metrics[1];
  result.failures = r.failures;
  return result;
}

double maxRelMetricDelta(const mc::McResult& a, const mc::McResult& b) {
  if (a.failures != b.failures || a.metrics.size() != b.metrics.size())
    return 1e30;
  double worst = 0.0;
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    if (a.metrics[m].size() != b.metrics[m].size()) return 1e30;
    for (std::size_t k = 0; k < a.metrics[m].size(); ++k)
      worst = std::max(worst,
                       std::fabs(a.metrics[m][k] - b.metrics[m][k]) /
                           (std::fabs(b.metrics[m][k]) + 1e-18));
  }
  return worst;
}

void printHeader(const std::string& benchName, const std::string& paperRef) {
  std::cout << "==================================================================\n"
            << benchName << "\n"
            << "Reproduces: " << paperRef << "\n"
            << "MC scale factor: " << mcScale()
            << "  (set VSSTAT_MC_SCALE=1.0 for paper-exact sample counts)\n"
            << "==================================================================\n";
}

}  // namespace vsstat::bench
