// Pre-refactor baseline for bench_newton_hotpath: the SAME per-iteration
// measurement (assemble + factor + solve at a converged operating point),
// but compiled against the pristine seed sources, where Assembler stamps
// into a dense Jacobian and every Newton iteration constructs a fresh
// LuFactorization and step vector.
//
// Built by bench/measure_seed_baseline.sh inside a worktree of the seed
// commit; it cannot compile against the current tree (the Assembler API
// changed).  Output schema matches bench_newton_hotpath:
//   {"name": "...", "ns_per_iter": ..., "allocs": ...}
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "circuits/benchmarks.hpp"
#include "circuits/provider.hpp"
#include "linalg/lu.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"
#include "spice/analysis.hpp"
#include "spice/assembler.hpp"
#include "spice/elements.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

}  // namespace

void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vsstat {
namespace {

using Clock = std::chrono::steady_clock;

linalg::Vector flatten(const spice::Circuit& circuit,
                       const spice::OperatingPoint& op) {
  linalg::Vector x(circuit.unknownCount(), 0.0);
  const std::size_t numNodes = circuit.nodeCount() - 1;
  for (std::size_t n = 0; n < numNodes; ++n) x[n] = op.nodeVoltages[n + 1];
  for (std::size_t b = 0; b < op.branchCurrents.size(); ++b)
    x[numNodes + b] = op.branchCurrents[b];
  return x;
}

void benchConfiguration(const std::string& name,
                        spice::detail::Assembler& assembler,
                        const linalg::Vector& x, int iters) {
  // The seed Newton iteration, verbatim: dense assemble, fresh
  // factorization (allocating matrix copy + pivots), fresh step vector.
  const auto iteration = [&] {
    assembler.assemble(x);
    linalg::Vector dx = linalg::LuFactorization(assembler.jacobian())
                            .solve(assembler.residual());
    (void)dx;
  };

  for (int i = 0; i < 16; ++i) iteration();  // warmup

  const std::uint64_t allocs0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) iteration();
  const auto t1 = Clock::now();
  const std::uint64_t allocs1 = gAllocCount.load(std::memory_order_relaxed);

  const double nsPerIter =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      iters;
  const double allocsPerIter = static_cast<double>(allocs1 - allocs0) / iters;
  std::printf("{\"name\": \"%s\", \"ns_per_iter\": %.1f, \"allocs\": %.2f}\n",
              name.c_str(), nsPerIter, allocsPerIter);
}

void benchCircuit(const std::string& name, const spice::Circuit& circuit,
                  const spice::OperatingPoint& op, int iters) {
  const linalg::Vector x = flatten(circuit, op);
  spice::detail::Assembler assembler(circuit);

  assembler.setDcMode();
  assembler.setTime(0.0);
  assembler.setSourceScale(1.0);
  assembler.setGmin(1e-12);
  benchConfiguration(name + "_dc", assembler, x, iters);

  assembler.assemble(x);
  assembler.commitCharges();
  const std::vector<double> slotCurrents = assembler.slotCurrents();
  assembler.setTime(1e-12);
  assembler.setTrapezoidal(1e-12, slotCurrents);
  benchConfiguration(name + "_tran", assembler, x, iters);
}

int run(int iters) {
  using circuits::NominalProvider;
  using models::VsModel;

  {
    NominalProvider provider(VsModel(models::defaultVsNmos()),
                             VsModel(models::defaultVsPmos()));
    circuits::GateFo3Bench bench = circuits::buildNand2Fo3(
        provider, circuits::CellSizing{}, circuits::StimulusSpec{});
    bench.circuit.voltageSource(bench.inSource).setDcLevel(0.0);
    const spice::OperatingPoint op = spice::dcOperatingPoint(bench.circuit);
    benchCircuit("nand2_fo3", bench.circuit, op, iters);
  }
  {
    NominalProvider provider(VsModel(models::defaultVsNmos()),
                             VsModel(models::defaultVsPmos()));
    circuits::SramCellBench bench = circuits::buildSramCell(
        provider, 0.9, /*wordlineOn=*/true, circuits::SramSizing{});
    const spice::OperatingPoint op =
        spice::dcOperatingPoint(bench.circuit, bench.stateGuess(true), {});
    benchCircuit("sram6t", bench.circuit, op, iters);
  }
  return 0;
}

}  // namespace
}  // namespace vsstat

int main(int argc, char** argv) {
  int iters = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) iters = 500;
  }
  try {
    return vsstat::run(iters);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "newton_seed_baseline: %s\n", e.what());
    return 1;
  }
}
