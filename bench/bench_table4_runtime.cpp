// Table IV: runtime & memory of Monte Carlo campaigns, VS vs the golden
// BSIM-class model.  Each campaign runs in a forked child so peak RSS is
// attributable per campaign.
//
// Substitution note (DESIGN.md): the paper compares a Verilog-A VS against
// a C-coded BSIM4 inside Spectre and reports 4.2x runtime / 8.7x memory in
// VS's favour, most of which is Verilog-A interpretation overhead.  Here
// both models run compiled inside the same engine, so the expected shape
// is "VS faster and lighter, by a smaller factor".
#include <iostream>

#include "common.hpp"
#include "measure/delay.hpp"
#include "measure/setup_hold.hpp"
#include "measure/snm.hpp"
#include "mc/runner.hpp"
#include "spice/ac.hpp"
#include "util/rusage.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

void runNandCampaign(bool useVs, int samples) {
  (void)bench::runGateDelayCampaign(useVs, /*nand2=*/true,
                                    circuits::CellSizing{},
                                    circuits::StimulusSpec{}, samples, 401);
}

void runDffCampaign(bool useVs, int samples) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 402;
  (void)mc::runCampaign(
      opt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = bench::makeStatProvider(useVs, rng);
        circuits::DffBench fixture =
            circuits::buildDff(*provider, 0.9, {600.0, 300.0, 40.0});
        out[0] = measure::measureSetupTime(fixture);
      });
}

void runSramCampaign(bool useVs, int samples) {
  // Paper row "SRAM AC": per sample, bias the closed cell in HOLD, then
  // sweep the small-signal supply-noise transfer |V(q)/V(vdd)| and keep
  // its worst-case magnitude.
  const std::vector<double> freqs = spice::logFrequencyGrid(1e6, 1e11, 8);
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 403;
  (void)mc::runCampaign(
      opt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = bench::makeStatProvider(useVs, rng);
        auto fixture = circuits::buildSramCell(*provider, 0.9,
                                               /*wordlineOn=*/false,
                                               circuits::SramSizing{});
        const spice::OperatingPoint op = spice::dcOperatingPoint(
            fixture.circuit, fixture.stateGuess(), spice::DcOptions{});
        const spice::SmallSignalSystem system(fixture.circuit, op);
        const linalg::ComplexVector excitation = system.voltageExcitation(
            fixture.circuit, fixture.vddSource);
        double worst = 0.0;
        for (double f : freqs) {
          const linalg::ComplexVector x = system.solve(f, excitation);
          const std::size_t row = static_cast<std::size_t>(fixture.q - 1);
          worst = std::max(worst, std::abs(x[row]));
        }
        out[0] = worst;
      });
}

}  // namespace

int main() {
  bench::printHeader("bench_table4_runtime",
                     "Table IV - MC runtime & memory, VS vs golden model");

  struct Workload {
    const char* cell;
    const char* analysis;
    int paperSamples;
    void (*run)(bool, int);
  };
  const Workload workloads[] = {
      {"NAND2", "Tran (FO3 delay)", 2000, runNandCampaign},
      {"DFF", "Tran (setup search)", 250, runDffCampaign},
      {"SRAM", "AC (supply gain)", 2000, runSramCampaign},
  };

  // Touch the cached kits BEFORE forking so characterization cost is not
  // attributed to the campaigns.
  (void)bench::calibratedKit();

  util::Table table({"Cell", "Analysis", "Samples", "VS time [s]",
                     "golden time [s]", "speedup", "VS RSS [MiB]",
                     "golden RSS [MiB]"});
  for (const auto& w : workloads) {
    const int samples = bench::scaledSamples(w.paperSamples, 40);
    const util::CampaignUsage vs =
        util::runIsolated([&] { w.run(true, samples); });
    const util::CampaignUsage golden =
        util::runIsolated([&] { w.run(false, samples); });
    table.addRow({w.cell, w.analysis, std::to_string(samples),
                  util::formatValue(vs.wallSeconds, 2),
                  util::formatValue(golden.wallSeconds, 2),
                  util::formatValue(golden.wallSeconds /
                                        std::max(vs.wallSeconds, 1e-9), 2) + "x",
                  util::formatValue(vs.maxRssMiB, 1),
                  util::formatValue(golden.maxRssMiB, 1)});
    if (vs.exitCode != 0 || golden.exitCode != 0) {
      std::cout << "WARNING: campaign child exited nonzero ("
                << vs.exitCode << "/" << golden.exitCode << ")\n";
    }
  }
  table.print(std::cout);

  std::cout
      << "\nInterpretation (see EXPERIMENTS.md): the paper's 4.2x/8.7x VS win\n"
         "is against the ~900-parameter BSIM4 plus Verilog-A interpretation\n"
         "overhead.  This reproduction's golden baseline is a deliberately\n"
         "slim ~10-parameter mini-BSIM (~0.11 us/eval), so the compiled VS\n"
         "model (~0.66 us/eval incl. its series-resistance solve) lands\n"
         "SLOWER here -- a property of the substituted baseline, not of the\n"
         "VS method.  The absolute numbers still support the paper's claim\n"
         "that compact-model MC campaigns of this size are routine.\n";
  return 0;
}
