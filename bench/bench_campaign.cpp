// Campaign-engine benchmark: rebuild-per-sample vs build-once/rebind
// sessions (sim::CampaignSession) on the paper's two statistical
// workloads:
//
//   sram_snm -- READ SNM of the 6T butterfly via 45-point DC sweeps
//               (the Fig. 9 Monte Carlo inner loop);
//   inv_fo3  -- INV FO3 delay via transient analysis (the Fig. 5 inner
//               loop);
//   grid_ir  -- worst-case IR drop of a 10x10 power-grid mesh (101 MNA
//               unknowns, one statistically varied leakage FET per node)
//               via supply sweeps: the post-layout-scale workload where
//               per-solve LU costs rival device evaluation.  Session-only
//               (the rebuild path would measure fixture construction, not
//               the solver), so its rows carry the fresh-vs-reuse
//               comparison.
//   grid_ladder_{10,32,64} -- the grid-scale fixture ladder: one row per
//               mesh rung combining session-campaign throughput with a
//               direct factor probe (fresh-factor us, fill ratio, marginal
//               allocs per factor, factor memory).  Rungs up to 32x32 also
//               time the retained dense-pivot baseline (DensePivotLu) and
//               carry the CI-gated "speedup_vs_dense_lu"; the 64x64 rung
//               instead records its isolated peak RSS, the near-linear-
//               memory evidence at ~4k unknowns.
//
// Both paths run the identical statistical VS sampling (same seed, same
// draws) single-threaded, so samples/sec compares per-sample cost and the
// metrics can be checked bit-identical.  "allocs" counts heap allocations
// per sample in steady state (rebuilding circuit + assembler per sample is
// hundreds; a session rebind pass is near zero for the VS provider).
//
// A third row per workload measures SolverMode::reusePivot on the session
// path (reference numerics): one canonical LU pivot order amortized across
// every solve instead of a dense re-pivot + symbolic pass per solve.
// Reuse rows carry "speedup_vs_fresh" (vs the fresh session row),
// "max_rel_delta" (largest per-sample metric deviation from the fresh run,
// same seeds) and "within_tolerance" (the campaign tolerance contract's
// 1e-8 per-sample bound) instead of rebuild bit-identity -- pivot reuse
// changes the Newton trajectory, statistically equivalently (the fast-
// numerics composition lives in bench_device_bank).
//
// Output is machine-readable JSON, one object per line on stdout:
//   {"name": ..., "samples": N, "threads": T, "us_per_sample": ...,
//    "samples_per_sec": ..., "allocs_per_sample": ...,
//    "speedup_vs_rebuild": ..., "bit_identical": true,
//    "metrics_fnv1a": "0x..."}
// BENCH_campaign.json records a reference run; CI gates regressions
// against it (scripts/check_bench_regression.py).
//
// "metrics_fnv1a" hashes every metric double's bit pattern plus the
// failure count, so two rows with equal hashes ran bit-identical
// campaigns -- the CI parallel-scaling smoke compares it across worker
// counts (scripts/check_scaling.py).
//
// Usage: bench_campaign [--quick] [--threads N] [--scaling]
//   --threads N   run the campaigns with N workers (default 1)
//   --scaling     emit only session rows, one per session-mode combination
//                 (NumericsMode x SolverMode: _session, _session_fast,
//                 _session_reuse, _session_fast_reuse), skipping the
//                 rebuild-path comparison: the mode the CI scaling smoke
//                 and the scaling-audit job run across worker counts,
//                 comparing metrics_fnv1a per row name across runs
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "common.hpp"
#include "linalg/dense_pivot_lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "models/vs_params.hpp"
#include "spice/assembler.hpp"
#include "stats/descriptive.hpp"
#include "util/fnv1a.hpp"
#include "util/rusage.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

}  // namespace

// Global allocation hooks (same scheme as bench_newton_hotpath): count
// every heap allocation so allocs/sample is exact.
void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vsstat {
namespace {

using Clock = std::chrono::steady_clock;

models::PelgromAlphas benchAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider(stats::Rng rng) {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), benchAlphas(),
      benchAlphas(), rng);
}

struct CampaignTiming {
  mc::McResult result;
  double usPerSample = 0.0;
  double allocsPerSample = 0.0;
};

/// Times a whole campaign (after a small warmup campaign that brings the
/// thread pool and allocator to steady state).
///
/// allocs_per_sample is MARGINAL: every campaign run pays a fixed
/// construction cost (sessions, assembler pattern capture, device-bank
/// SoA state) that has nothing to do with per-sample work, so a small
/// reference campaign is measured first and differenced out -- what
/// remains is the steady-state allocation cost of adding one more sample,
/// which the campaign engine contract keeps at zero.
constexpr int kWarmSamples = 4;

CampaignTiming timeCampaign(int samples,
                            const std::function<mc::McResult(int)>& run) {
  (void)run(kWarmSamples);  // warmup
  const std::uint64_t base0 = gAllocCount.load(std::memory_order_relaxed);
  (void)run(kWarmSamples);  // fixed campaign cost + kWarmSamples marginals
  const std::uint64_t base1 = gAllocCount.load(std::memory_order_relaxed);

  const std::uint64_t allocs0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  CampaignTiming t;
  t.result = run(samples);
  const auto t1 = Clock::now();
  const std::uint64_t allocs1 = gAllocCount.load(std::memory_order_relaxed);

  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  t.usPerSample = us / samples;
  t.allocsPerSample =
      (static_cast<double>(allocs1 - allocs0) -
       static_cast<double>(base1 - base0)) /
      static_cast<double>(samples - kWarmSamples);
  return t;
}

bool bitIdentical(const mc::McResult& a, const mc::McResult& b) {
  if (a.failures != b.failures || a.metrics.size() != b.metrics.size())
    return false;
  for (std::size_t m = 0; m < a.metrics.size(); ++m)
    if (a.metrics[m] != b.metrics[m]) return false;
  return true;
}

/// FNV-1a over every metric double's bit pattern plus the failure count:
/// equal hashes across runs mean bit-identical campaign results.  Uses the
/// shared util::Fnv1a accumulator (same byte order as before), so these
/// hashes stay comparable with historical BENCH_campaign.json rows.
std::uint64_t metricsHash(const mc::McResult& r) {
  util::Fnv1a h;
  h.mix(static_cast<std::uint64_t>(r.failures));
  for (const std::vector<double>& row : r.metrics) {
    h.mix(row.size());
    for (double v : row) h.mixDouble(v);
  }
  return h.value();
}

unsigned gThreads = 1;
bool gScalingOnly = false;

void emit(const std::string& name, int samples, const CampaignTiming& t,
          double rebuildUsPerSample, bool identical) {
  std::printf(
      "{\"name\": \"%s\", \"samples\": %d, \"threads\": %u, "
      "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
      "\"allocs_per_sample\": %.1f, \"speedup_vs_rebuild\": %.2f, "
      "\"bit_identical\": %s, \"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), samples, gThreads, t.usPerSample, 1e6 / t.usPerSample,
      t.allocsPerSample, rebuildUsPerSample / t.usPerSample,
      identical ? "true" : "false",
      static_cast<unsigned long long>(metricsHash(t.result)));
}

/// Pivot-reuse row: compared against the fresh session run (same seeds)
/// through the tolerance contract, not bit-identity.
void emitReuse(const std::string& name, int samples, const CampaignTiming& t,
               double freshUsPerSample, double relDelta) {
  std::printf(
      "{\"name\": \"%s\", \"samples\": %d, \"threads\": %u, "
      "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
      "\"allocs_per_sample\": %.1f, \"speedup_vs_fresh\": %.2f, "
      "\"max_rel_delta\": %.2e, \"within_tolerance\": %s, "
      "\"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), samples, gThreads, t.usPerSample, 1e6 / t.usPerSample,
      t.allocsPerSample, freshUsPerSample / t.usPerSample, relDelta,
      // Same per-sample bound the campaign tolerance tests assert
      // (tests/sim/test_reuse_pivot_campaign.cpp).
      relDelta <= 1e-8 ? "true" : "false",
      static_cast<unsigned long long>(metricsHash(t.result)));
}

/// --scaling row: no rebuild path ran, so the rebuild-comparison fields
/// (speedup_vs_rebuild, bit_identical) are OMITTED rather than fabricated
/// -- identity across thread counts is what metrics_fnv1a carries.
void emitScaling(const std::string& name, int samples,
                 const CampaignTiming& t) {
  std::printf(
      "{\"name\": \"%s\", \"samples\": %d, \"threads\": %u, "
      "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
      "\"allocs_per_sample\": %.1f, \"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), samples, gThreads, t.usPerSample, 1e6 / t.usPerSample,
      t.allocsPerSample,
      static_cast<unsigned long long>(metricsHash(t.result)));
}

/// Rescue-overhead row: the same campaign with the rescue ladder disabled
/// vs enabled (the default).  A zero-failure campaign never enters the
/// ladder -- attempt 0 runs at baseline modes and identity effort -- so
/// the contract is ~0% overhead and bit-identical metrics; this row is the
/// committed evidence (speedup_vs_norescue ~= 1.0, gated by CI).
void emitRescueOverhead(const std::string& name, int samples,
                        const CampaignTiming& rescued,
                        double noRescueUsPerSample, bool identical) {
  std::printf(
      "{\"name\": \"%s\", \"samples\": %d, \"threads\": %u, "
      "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
      "\"allocs_per_sample\": %.1f, \"speedup_vs_norescue\": %.2f, "
      "\"failures\": %d, \"rescued\": %d, "
      "\"bit_identical\": %s, \"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), samples, gThreads, rescued.usPerSample,
      1e6 / rescued.usPerSample, rescued.allocsPerSample,
      noRescueUsPerSample / rescued.usPerSample, rescued.result.failures,
      rescued.result.rescued, identical ? "true" : "false",
      static_cast<unsigned long long>(metricsHash(rescued.result)));
}

spice::SessionOptions reusePivotOptions() {
  spice::SessionOptions o;
  o.solver = linalg::SolverMode::reusePivot;
  return o;
}

/// The "current best" per-sample throughput configuration: SIMD device
/// kernels + amortized pivot order.  The statistical tier is benchmarked on
/// top of exactly this baseline.
spice::SessionOptions fastReuseOptions() {
  spice::SessionOptions o;
  o.numerics = models::NumericsMode::fast;
  o.solver = linalg::SolverMode::reusePivot;
  return o;
}

spice::SessionOptions statisticalOptions() {
  spice::SessionOptions o = fastReuseOptions();
  o.tier = spice::ToleranceTier::statistical;
  return o;
}

/// Largest estimator shift between the statistical-tier run and its
/// per-sample baseline, in units of the baseline's Monte Carlo standard
/// error: max over metrics of |mean_s - mean_b| / (sigma_b / sqrt(n)) and
/// |sigma_s - sigma_b| / (sigma_b / sqrt(2n)).  The tier's accuracy
/// contract is estimator-level, so this -- not per-sample deltas -- is the
/// number the CI gate holds.
double maxSigmaDelta(const mc::McResult& stat, const mc::McResult& base) {
  double worst = 0.0;
  for (std::size_t m = 0; m < base.metrics.size(); ++m) {
    const auto b = stats::summarize(base.metrics[m]);
    const auto s = stats::summarize(stat.metrics[m]);
    const double n = static_cast<double>(base.metrics[m].size());
    if (b.stddev <= 0.0 || n < 2.0) continue;
    const double meanSe = b.stddev / std::sqrt(n);
    const double sigmaSe = b.stddev / std::sqrt(2.0 * n);
    worst = std::max(worst, std::fabs(s.mean - b.mean) / meanSe);
    worst = std::max(worst, std::fabs(s.stddev - b.stddev) / sigmaSe);
  }
  return worst;
}

/// Statistical-tier row: fast+reuse+statistical vs the fast+reuse
/// per-sample baseline (same seeds).  speedup_vs_per_sample is the
/// issue's headline number; within_sigma_contract holds the estimator
/// agreement at 3 baseline standard errors.
void emitStatisticalTier(const std::string& name, int samples,
                         const CampaignTiming& stat,
                         const CampaignTiming& base) {
  const double sigmaDelta = maxSigmaDelta(stat.result, base.result);
  std::printf(
      "{\"name\": \"%s\", \"samples\": %d, \"threads\": %u, "
      "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
      "\"allocs_per_sample\": %.1f, \"speedup_vs_per_sample\": %.2f, "
      "\"mean_iters_per_sample\": %.1f, \"warm_start_hit_rate\": %.2f, "
      "\"estimator_max_sigma_delta\": %.3f, \"within_sigma_contract\": %s, "
      "\"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), samples, gThreads, stat.usPerSample,
      1e6 / stat.usPerSample, stat.allocsPerSample,
      base.usPerSample / stat.usPerSample,
      stat.result.meanIterationsPerSample(), stat.result.warmStartHitRate(),
      sigmaDelta, sigmaDelta <= 3.0 ? "true" : "false",
      static_cast<unsigned long long>(metricsHash(stat.result)));
}

/// --scaling body shared by every workload: one row per session-mode
/// combination (NumericsMode x SolverMode), so the scaling smoke/audit
/// checks cross-thread-count bit-identity of every cell of the matrix.
void runScalingCombos(
    const std::string& name, int samples,
    const std::function<mc::McResult(int, spice::SessionOptions)>& session) {
  spice::SessionOptions fastOpt;
  fastOpt.numerics = models::NumericsMode::fast;
  spice::SessionOptions fastReuseOpt = fastOpt;
  fastReuseOpt.solver = linalg::SolverMode::reusePivot;
  const struct {
    const char* suffix;
    spice::SessionOptions options;
  } combos[] = {{"_session", spice::SessionOptions{}},
                {"_session_fast", fastOpt},
                {"_session_reuse", reusePivotOptions()},
                {"_session_fast_reuse", fastReuseOpt},
                // Statistical tier on the fast+reuse baseline: block
                // geometry depends only on McOptions::sampleBlock, so the
                // warm-chain results must hash identically across 1/2/4
                // workers like every other combo.
                {"_session_statistical", statisticalOptions()}};
  for (const auto& combo : combos) {
    const CampaignTiming s = timeCampaign(
        samples, [&](int n) { return session(n, combo.options); });
    emitScaling(name + combo.suffix, samples, s);
  }
}

/// One workload: measures the rebuild path, the fresh session path, and
/// the pivot-reuse session path; checks rebuild/session bit-identity and
/// the reuse tolerance contract; emits one JSONL line each.  In --scaling
/// mode every session-mode combination runs instead (cross-thread-count
/// identity is checked by comparing metrics_fnv1a across whole runs, not
/// in-process).
void benchWorkload(
    const std::string& name, int samples,
    const std::function<mc::McResult(int)>& rebuild,
    const std::function<mc::McResult(int, spice::SessionOptions)>& session) {
  if (gScalingOnly) {
    runScalingCombos(name, samples, session);
    return;
  }
  const CampaignTiming r = timeCampaign(samples, rebuild);
  const CampaignTiming s = timeCampaign(
      samples, [&](int n) { return session(n, spice::SessionOptions{}); });
  const CampaignTiming u = timeCampaign(
      samples, [&](int n) { return session(n, reusePivotOptions()); });
  const bool identical = bitIdentical(r.result, s.result);
  emit(name + "_rebuild", samples, r, r.usPerSample, identical);
  emit(name + "_session", samples, s, r.usPerSample, identical);
  emitReuse(name + "_session_reuse", samples, u, s.usPerSample,
            bench::maxRelMetricDelta(u.result, s.result));
  const CampaignTiming b = timeCampaign(
      samples, [&](int n) { return session(n, fastReuseOptions()); });
  const CampaignTiming st = timeCampaign(
      samples, [&](int n) { return session(n, statisticalOptions()); });
  emitStatisticalTier(name + "_statistical_tier", samples, st, b);
}

/// Session-only workload (grid_ir): fresh vs reuse-pivot sessions, no
/// rebuild baseline.  Scaling mode emits the same four combos as above.
void benchSessionWorkload(
    const std::string& name, int samples,
    const std::function<mc::McResult(int, spice::SessionOptions)>& session) {
  if (gScalingOnly) {
    runScalingCombos(name, samples, session);
    return;
  }
  const CampaignTiming s = timeCampaign(
      samples, [&](int n) { return session(n, spice::SessionOptions{}); });
  const CampaignTiming u = timeCampaign(
      samples, [&](int n) { return session(n, reusePivotOptions()); });
  emitScaling(name + "_session", samples, s);
  emitReuse(name + "_session_reuse", samples, u, s.usPerSample,
            bench::maxRelMetricDelta(u.result, s.result));
  const CampaignTiming b = timeCampaign(
      samples, [&](int n) { return session(n, fastReuseOptions()); });
  const CampaignTiming st = timeCampaign(
      samples, [&](int n) { return session(n, statisticalOptions()); });
  emitStatisticalTier(name + "_statistical_tier", samples, st, b);
}

constexpr int kSnmPoints = 45;
constexpr int kGridPoints = 45;
constexpr std::uint64_t kSeed = 901;

mc::McOptions options(int samples) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = kSeed;
  // Default 1: per-sample cost comparison.  --threads N turns the same
  // campaigns into a parallel-scaling measurement (results bit-identical
  // by the runner's contract, asserted across runs via metrics_fnv1a).
  opt.threads = gThreads;
  return opt;
}

int run(int snmSamples, int invSamples) {
  benchWorkload(
      "sram_snm", snmSamples,
      [](int n) {
        return mc::runCampaign(
            options(n), 1,
            [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
              auto provider = makeProvider(rng);
              circuits::SramButterflyBench bench =
                  circuits::buildSramButterfly(*provider, 0.9,
                                               circuits::SramMode::Read,
                                               circuits::SramSizing{});
              out[0] = measure::measureSnm(bench, kSnmPoints).cellSnm();
            });
      },
      [](int n, spice::SessionOptions sessionOptions) {
        return mc::runCampaign<circuits::SramButterflyBench>(
            options(n), 1,
            [](circuits::DeviceProvider& provider) {
              return circuits::buildSramButterfly(provider, 0.9,
                                                  circuits::SramMode::Read,
                                                  circuits::SramSizing{});
            },
            [] { return makeProvider(stats::Rng(0)); },
            [](std::size_t,
               sim::CampaignSession<circuits::SramButterflyBench>& session,
               stats::Rng&, std::vector<double>& out) {
              out[0] = measure::measureSnm(session.fixture(), session.spice(),
                                           kSnmPoints)
                           .cellSnm();
            },
            sessionOptions);
      });

  if (!gScalingOnly) {
    const auto snmSession = [](int n, const sim::RescuePolicy& rescue) {
      return mc::runCampaign<circuits::SramButterflyBench>(
          options(n), 1,
          [](circuits::DeviceProvider& provider) {
            return circuits::buildSramButterfly(provider, 0.9,
                                                circuits::SramMode::Read,
                                                circuits::SramSizing{});
          },
          [] { return makeProvider(stats::Rng(0)); },
          [](std::size_t,
             sim::CampaignSession<circuits::SramButterflyBench>& session,
             stats::Rng&, std::vector<double>& out) {
            out[0] = measure::measureSnm(session.fixture(), session.spice(),
                                         kSnmPoints)
                         .cellSnm();
          },
          spice::SessionOptions{}, rescue);
    };
    sim::RescuePolicy noRescue;
    noRescue.enabled = false;
    const CampaignTiming off = timeCampaign(
        snmSamples, [&](int n) { return snmSession(n, noRescue); });
    const CampaignTiming on = timeCampaign(
        snmSamples, [&](int n) { return snmSession(n, sim::RescuePolicy{}); });
    emitRescueOverhead("sram_snm_rescue_overhead", snmSamples, on,
                       off.usPerSample,
                       bitIdentical(on.result, off.result));
  }

  benchWorkload(
      "inv_fo3", invSamples,
      [](int n) {
        return mc::runCampaign(
            options(n), 1,
            [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
              auto provider = makeProvider(rng);
              circuits::GateFo3Bench bench = circuits::buildInvFo3(
                  *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
              out[0] = measure::measureGateDelays(bench).average();
            });
      },
      [](int n, spice::SessionOptions sessionOptions) {
        return mc::runCampaign<circuits::GateFo3Bench>(
            options(n), 1,
            [](circuits::DeviceProvider& provider) {
              return circuits::buildInvFo3(provider, circuits::CellSizing{},
                                           circuits::StimulusSpec{});
            },
            [] { return makeProvider(stats::Rng(0)); },
            [](std::size_t,
               sim::CampaignSession<circuits::GateFo3Bench>& session,
               stats::Rng&, std::vector<double>& out) {
              out[0] = measure::measureGateDelays(session.fixture(),
                                                  session.spice())
                           .average();
            },
            sessionOptions);
      });
  return 0;
}

/// Session campaign over an edge x edge mesh rung, sweeping `points`
/// supply levels per sample.  The 10x10 rung keeps the historical 45-point
/// sweep (the committed grid_ir rows); bigger rungs sweep fewer levels so
/// the ladder stays benchable -- per-solve factor cost is what the ladder
/// rows measure, and the factor probe times it exactly anyway.
std::function<mc::McResult(int, spice::SessionOptions)> gridSession(
    int edge, int points) {
  return [edge, points](int n, spice::SessionOptions sessionOptions) {
    return mc::runCampaign<circuits::PowerGridBench>(
        options(n), 1,
        [edge](circuits::DeviceProvider& provider) {
          return circuits::buildPowerGridIrDrop(provider, edge, edge, 0.9);
        },
        [] { return makeProvider(stats::Rng(0)); },
        [points](std::size_t,
                 sim::CampaignSession<circuits::PowerGridBench>& session,
                 stats::Rng&, std::vector<double>& out) {
          static thread_local std::vector<double> levels;
          static thread_local std::vector<double> farVolts;
          circuits::PowerGridBench& fx = session.fixture();
          if (levels.size() != static_cast<std::size_t>(points)) {
            levels.clear();
            for (int i = 0; i < points; ++i)
              levels.push_back(fx.supply * i / (points - 1));
          }
          session.spice().dcSweepNode(fx.feedSource, levels, fx.farNode,
                                      farVolts);
          out[0] = fx.supply - farVolts.back();  // worst-case IR drop [V]
        },
        sessionOptions);
  };
}

/// Direct factorization measurements on one ladder rung's assembled MNA
/// Jacobian -- the numbers the campaign rows can only show indirectly.
struct FactorProbe {
  std::size_t unknowns = 0;
  std::size_t patternNnz = 0;
  std::size_t factorNnz = 0;
  double fillRatio = 0.0;
  double orderingUs = 0.0;      ///< one-time fill-reducing ordering
  double freshFactorUs = 0.0;   ///< steady-state fresh full factor
  double allocsPerFactor = 0.0; ///< marginal heap allocs per fresh factor
  double factorMemMiB = 0.0;    ///< factor storage (values + indices)
  double denseFactorUs = -1.0;  ///< DensePivotLu baseline (-1: not run)
};

/// Builds the rung's Jacobian the way the equivalence tests do: real
/// device stamps at a spread of node biases, homotopy-level gmin so every
/// node diagonal is present.
FactorProbe probeFactor(int edge, int factorReps, bool withDense) {
  auto provider = makeProvider(stats::Rng(0));
  circuits::PowerGridBench bench =
      circuits::buildPowerGridIrDrop(*provider, edge, edge, 0.9);
  spice::detail::Assembler assembler(bench.circuit);
  const std::size_t n = bench.circuit.unknownCount();
  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 0.2 + 0.5 * static_cast<double>((i * 37u) % 101u) / 101.0;
  assembler.setGmin(1e-3);
  assembler.assemble(x);
  const linalg::SparseMatrix& m = assembler.jacobian();

  FactorProbe p;
  p.unknowns = n;

  linalg::SparseLu lu;
  lu.refactor(m);  // pays the one-time ordering; cached across reset()
  lu.reset();
  lu.refactor(m);  // warm: every work array at capacity
  const std::uint64_t allocs0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int i = 0; i < factorReps; ++i) {
    lu.reset();
    lu.refactor(m);
  }
  const auto t1 = Clock::now();
  const std::uint64_t allocs1 = gAllocCount.load(std::memory_order_relaxed);
  p.freshFactorUs =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
              .count()) /
      factorReps;
  p.allocsPerFactor =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(factorReps);
  p.patternNnz = lu.patternNonZeroCount();
  p.factorNnz = lu.factorNonZeroCount();
  p.fillRatio = lu.fillRatio();
  p.orderingUs = static_cast<double>(lu.orderingMicros());
  p.factorMemMiB =
      static_cast<double>(lu.factorMemoryBytes()) / (1024.0 * 1024.0);

  if (withDense) {
    linalg::DensePivotLu dense;
    dense.refactor(m);  // warm
    const int denseReps = std::max(2, factorReps / 16);
    const auto d0 = Clock::now();
    for (int i = 0; i < denseReps; ++i) {
      dense.reset();
      dense.refactor(m);
    }
    const auto d1 = Clock::now();
    p.denseFactorUs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(d1 - d0)
                .count()) /
        denseReps;
  }
  return p;
}

/// Ladder row: session-campaign throughput + the factor probe, one JSONL
/// object.  speedup_vs_dense_lu (CI-gated, higher-better) appears only
/// where the dense baseline actually ran -- at 64x64 it would be ~5e10
/// flops per factor, so that rung records the sparse side alone plus its
/// isolated peak RSS (the near-linear-memory evidence).
void emitLadder(const std::string& name, int samples, const CampaignTiming& t,
                const FactorProbe& p, double peakRssMiB) {
  std::string row;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"name\": \"%s\", \"samples\": %d, \"threads\": %u, "
      "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
      "\"allocs_per_sample\": %.1f, \"metrics_fnv1a\": \"0x%016llx\", "
      "\"unknowns\": %zu, \"pattern_nnz\": %zu, \"factor_nnz\": %zu, "
      "\"fill_ratio\": %.2f, \"ordering_us\": %.0f, "
      "\"fresh_factor_us\": %.1f, \"allocs_per_factor\": %.1f, "
      "\"factor_mem_mib\": %.3f",
      name.c_str(), samples, gThreads, t.usPerSample, 1e6 / t.usPerSample,
      t.allocsPerSample,
      static_cast<unsigned long long>(metricsHash(t.result)), p.unknowns,
      p.patternNnz, p.factorNnz, p.fillRatio, p.orderingUs, p.freshFactorUs,
      p.allocsPerFactor, p.factorMemMiB);
  row += buf;
  if (p.denseFactorUs >= 0.0) {
    std::snprintf(buf, sizeof buf,
                  ", \"dense_factor_us\": %.1f, "
                  "\"speedup_vs_dense_lu\": %.1f",
                  p.denseFactorUs, p.denseFactorUs / p.freshFactorUs);
    row += buf;
  }
  if (peakRssMiB >= 0.0) {
    std::snprintf(buf, sizeof buf, ", \"peak_rss_mib\": %.1f", peakRssMiB);
    row += buf;
  }
  row += "}\n";
  std::fputs(row.c_str(), stdout);
}

int runGrid(int gridSamples, bool quick) {
  benchSessionWorkload("grid_ir", gridSamples, gridSession(10, kGridPoints));

  // Grid-scale fixture ladder.  Sweep points shrink as the rung grows (the
  // campaign row is a throughput smoke; the factor probe carries the
  // rung's precise factor cost), and the dense baseline runs only where
  // O(n^3) is affordable.
  struct Rung {
    int edge;
    int points;
    int samples;
    int factorReps;
    bool dense;
  };
  const Rung rungs[] = {{10, kGridPoints, gridSamples, 256, true},
                        {32, 21, quick ? 6 : 10, 48, true},
                        {64, 11, quick ? 5 : 8, 12, false}};
  if (gScalingOnly) {
    // The scaling smoke/audit covers one beyond-paper-scale rung across
    // every session-mode combination; the 10x10 grid_ir combos above
    // already cover the small rung.
    runScalingCombos("grid_ladder_32", quick ? 6 : 10, gridSession(32, 21));
    return 0;
  }
  for (const Rung& rung : rungs) {
    const auto session = gridSession(rung.edge, rung.points);
    const CampaignTiming t = timeCampaign(rung.samples, [&](int n) {
      return session(n, spice::SessionOptions{});
    });
    const FactorProbe p = probeFactor(rung.edge, rung.factorReps, rung.dense);
    double peakRssMiB = -1.0;
    if (rung.edge == 64) {
      // Isolated peak RSS of building + factoring the biggest rung: the
      // committed proof that factor memory stays near-linear (a dense
      // 4k x 4k scratch alone would be ~128 MiB on top of the baseline).
      const util::CampaignUsage usage = util::runIsolated([&] {
        const FactorProbe child = probeFactor(rung.edge, 2, false);
        if (child.factorNnz == 0) std::exit(9);
      });
      if (usage.exitCode == 0) peakRssMiB = usage.maxRssMiB;
    }
    emitLadder("grid_ladder_" + std::to_string(rung.edge), rung.samples, t, p,
               peakRssMiB);
  }
  return 0;
}

}  // namespace
}  // namespace vsstat

int main(int argc, char** argv) {
  int snmSamples = 160;
  int invSamples = 48;
  int gridSamples = 24;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      snmSamples = 32;
      invSamples = 12;
      gridSamples = 8;
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      vsstat::gScalingOnly = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int t = std::atoi(argv[++i]);
      if (t < 1) {
        std::fprintf(stderr, "bench_campaign: --threads wants >= 1\n");
        return 2;
      }
      vsstat::gThreads = static_cast<unsigned>(t);
    } else {
      std::fprintf(stderr, "bench_campaign: unknown argument '%s' (usage: "
                   "bench_campaign [--quick] [--threads N] [--scaling])\n",
                   argv[i]);
      return 2;
    }
  }
  try {
    const int rc = vsstat::run(snmSamples, invSamples);
    if (rc != 0) return rc;
    return vsstat::runGrid(gridSamples, quick);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_campaign: %s\n", e.what());
    return 1;
  }
}
