// Microbenchmark (google-benchmark): raw compact-model evaluation cost,
// VS vs BsimLite, plus the Newton DC solve of an inverter.  Supports the
// Table IV interpretation: how much of the campaign speedup is intrinsic
// model cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"

using namespace vsstat;

namespace {

const models::DeviceGeometry kGeom = models::geometryNm(600, 40);

void BM_VsDrainCurrent(benchmark::State& state) {
  const models::VsModel model(models::defaultVsNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;  // sweep bias to defeat caching
    benchmark::DoNotOptimize(model.drainCurrent(kGeom, vgs, 0.9));
  }
}
BENCHMARK(BM_VsDrainCurrent);

void BM_BsimDrainCurrent(benchmark::State& state) {
  const models::BsimLite model(models::defaultBsimNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;
    benchmark::DoNotOptimize(model.drainCurrent(kGeom, vgs, 0.9));
  }
}
BENCHMARK(BM_BsimDrainCurrent);

void BM_VsFullEvaluate(benchmark::State& state) {
  const models::VsModel model(models::defaultVsNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;
    benchmark::DoNotOptimize(model.evaluate(kGeom, vgs, 0.45));
  }
}
BENCHMARK(BM_VsFullEvaluate);

void BM_BsimFullEvaluate(benchmark::State& state) {
  const models::BsimLite model(models::defaultBsimNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;
    benchmark::DoNotOptimize(model.evaluate(kGeom, vgs, 0.45));
  }
}
BENCHMARK(BM_BsimFullEvaluate);

template <typename Model, typename Params>
spice::Circuit makeInverter(Params nmos, Params pmos) {
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.addVoltageSource("VDD", vdd, c.ground(), spice::SourceWaveform::dc(0.9));
  c.addVoltageSource("VIN", in, c.ground(), spice::SourceWaveform::dc(0.45));
  c.addMosfet("MP", out, in, vdd, std::make_unique<Model>(pmos),
              models::geometryNm(600, 40));
  c.addMosfet("MN", out, in, c.ground(), std::make_unique<Model>(nmos),
              models::geometryNm(300, 40));
  return c;
}

void BM_VsInverterDcop(benchmark::State& state) {
  spice::Circuit c = makeInverter<models::VsModel>(models::defaultVsNmos(),
                                                   models::defaultVsPmos());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dcOperatingPoint(c));
  }
}
BENCHMARK(BM_VsInverterDcop);

void BM_BsimInverterDcop(benchmark::State& state) {
  spice::Circuit c = makeInverter<models::BsimLite>(
      models::defaultBsimNmos(), models::defaultBsimPmos());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dcOperatingPoint(c));
  }
}
BENCHMARK(BM_BsimInverterDcop);

}  // namespace

BENCHMARK_MAIN();
