// Microbenchmark (google-benchmark): raw compact-model evaluation cost,
// VS vs BsimLite, plus the Newton DC solve of an inverter.  Supports the
// Table IV interpretation: how much of the campaign speedup is intrinsic
// model cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"

using namespace vsstat;

namespace {

const models::DeviceGeometry kGeom = models::geometryNm(600, 40);

void BM_VsDrainCurrent(benchmark::State& state) {
  const models::VsModel model(models::defaultVsNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;  // sweep bias to defeat caching
    benchmark::DoNotOptimize(model.drainCurrent(kGeom, vgs, 0.9));
  }
}
BENCHMARK(BM_VsDrainCurrent);

void BM_BsimDrainCurrent(benchmark::State& state) {
  const models::BsimLite model(models::defaultBsimNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;
    benchmark::DoNotOptimize(model.drainCurrent(kGeom, vgs, 0.9));
  }
}
BENCHMARK(BM_BsimDrainCurrent);

void BM_VsFullEvaluate(benchmark::State& state) {
  const models::VsModel model(models::defaultVsNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;
    benchmark::DoNotOptimize(model.evaluate(kGeom, vgs, 0.45));
  }
}
BENCHMARK(BM_VsFullEvaluate);

void BM_BsimFullEvaluate(benchmark::State& state) {
  const models::BsimLite model(models::defaultBsimNmos());
  double vgs = 0.0;
  for (auto _ : state) {
    vgs = vgs < 0.9 ? vgs + 0.01 : 0.0;
    benchmark::DoNotOptimize(model.evaluate(kGeom, vgs, 0.45));
  }
}
BENCHMARK(BM_BsimFullEvaluate);

// --- Newton-load lanes: scalar evaluateLoad vs the banked batch --------------
//
// Six mismatched VS lanes (the 6T SRAM device population): the scalar lane
// pays one virtual evaluateLoad (incl. per-call derive()) per device, the
// banked lane one evaluateLoadBatch over per-lane cached cards.  Outputs
// are bit-identical (models::MosfetLoadBank contract); the delta is pure
// dispatch/derive overhead, which bounds what circuit-level banking can
// save per evaluation.

struct VsLaneFixture {
  std::vector<std::unique_ptr<models::VsModel>> cards;
  std::vector<models::DeviceGeometry> geoms;
  std::unique_ptr<models::MosfetLoadBank> bank;
  std::vector<double> vgs, vds;
  std::vector<models::MosfetLoadEvaluation> out;

  VsLaneFixture() {
    for (int i = 0; i < 6; ++i) {
      models::VsParams p =
          (i % 2 == 0) ? models::defaultVsNmos() : models::defaultVsPmos();
      p.vt0 += 0.004 * i;
      cards.push_back(std::make_unique<models::VsModel>(p));
      geoms.push_back(models::geometryNm(150.0 + 50.0 * i, 40));
    }
    std::vector<models::BankLane> lanes;
    for (std::size_t i = 0; i < cards.size(); ++i)
      lanes.push_back(models::BankLane{cards[i].get(), &geoms[i]});
    bank = static_cast<const models::MosfetModel&>(*cards.front())
               .makeLoadBank(lanes);
    vgs.resize(cards.size());
    vds.resize(cards.size());
    out.resize(cards.size());
  }

  void bias(int s) {
    for (std::size_t i = 0; i < cards.size(); ++i) {
      vgs[i] = 0.05 + 0.85 * ((s + static_cast<int>(i) * 7) % 97) / 96.0;
      vds[i] = 0.9 * ((s + static_cast<int>(i) * 13) % 89) / 88.0;
    }
  }
};

void BM_VsLoadScalarLanes(benchmark::State& state) {
  VsLaneFixture f;
  int s = 0;
  for (auto _ : state) {
    f.bias(s++);
    for (std::size_t i = 0; i < f.cards.size(); ++i) {
      f.out[i] = f.cards[i]->evaluateLoad(f.geoms[i], f.vgs[i], f.vds[i], 1e-3);
    }
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.cards.size()));
}
BENCHMARK(BM_VsLoadScalarLanes);

void BM_VsLoadBankedLanes(benchmark::State& state) {
  VsLaneFixture f;
  int s = 0;
  for (auto _ : state) {
    f.bias(s++);
    f.bank->evaluateLoadBatch(f.vgs, f.vds, 1e-3, f.out);
    benchmark::DoNotOptimize(f.out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.cards.size()));
}
BENCHMARK(BM_VsLoadBankedLanes);

template <typename Model, typename Params>
spice::Circuit makeInverter(Params nmos, Params pmos) {
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.addVoltageSource("VDD", vdd, c.ground(), spice::SourceWaveform::dc(0.9));
  c.addVoltageSource("VIN", in, c.ground(), spice::SourceWaveform::dc(0.45));
  c.addMosfet("MP", out, in, vdd, std::make_unique<Model>(pmos),
              models::geometryNm(600, 40));
  c.addMosfet("MN", out, in, c.ground(), std::make_unique<Model>(nmos),
              models::geometryNm(300, 40));
  return c;
}

void BM_VsInverterDcop(benchmark::State& state) {
  spice::Circuit c = makeInverter<models::VsModel>(models::defaultVsNmos(),
                                                   models::defaultVsPmos());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dcOperatingPoint(c));
  }
}
BENCHMARK(BM_VsInverterDcop);

void BM_BsimInverterDcop(benchmark::State& state) {
  spice::Circuit c = makeInverter<models::BsimLite>(
      models::defaultBsimNmos(), models::defaultBsimPmos());
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::dcOperatingPoint(c));
  }
}
BENCHMARK(BM_BsimInverterDcop);

}  // namespace

BENCHMARK_MAIN();
