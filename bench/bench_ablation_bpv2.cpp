// Ablation: the two simplifications the paper makes going from the full
// Eq. (8) to the production Eq. (9):
//
//   (1) "the linear approximation is sufficiently accurate" -- quantified
//       here as the second-order Gaussian variance term relative to the
//       first-order one per target and geometry;
//   (2) "assume p_j and p_k independent" -- quantified by planting a
//       VT0-mu correlation in the synthetic truth and comparing the
//       independence-assuming extraction against the correlation-aware
//       fixed-point solve (extract/bpv2).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "extract/bpv2.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

models::PelgromAlphas paperAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.71;
  a.aWeff = 3.71;
  a.aMu = 944.0;
  a.aCinv = 0.30;
  return a;
}

linalg::Matrix vt0MuCorrelation(double rho) {
  linalg::Matrix m = extract::independentCorrelation();
  const auto vt0 = static_cast<std::size_t>(extract::Parameter::Vt0);
  const auto mu = static_cast<std::size_t>(extract::Parameter::Mu);
  m(vt0, mu) = rho;
  m(mu, vt0) = rho;
  return m;
}

}  // namespace

int main() {
  bench::printHeader("bench_ablation_bpv2",
                     "Eq. (8) vs Eq. (9) - second order and correlation");

  const models::VsParams card =
      bench::calibratedKit().nominal(models::DeviceType::Nmos);
  const models::PelgromAlphas alphas = paperAlphas();

  // --- Part 1: second-order term magnitude --------------------------------
  std::cout << "\nPart 1: second-order variance term (Gaussian moment\n"
               "propagation, 0.5 tr((H S)^2)) relative to first order.\n";
  util::Table t1({"W/L [nm]", "target", "first order", "second order",
                  "2nd/1st", "mean shift / sigma"});
  std::vector<double> widths, ratios;
  for (const double w : {1500.0, 600.0, 300.0, 120.0}) {
    const models::DeviceGeometry geom = models::geometryNm(w, 40.0);
    const auto v = extract::propagateVarianceSecondOrder(
        card, geom, alphas, extract::independentCorrelation(), 0.9);
    for (std::size_t i = 0; i < extract::kTargetCount; ++i) {
      const double ratio = v[i].secondOrder / v[i].firstOrder;
      t1.addRow({util::formatValue(w, 0) + "/40",
                 extract::toString(static_cast<extract::Target>(i)),
                 util::formatValue(v[i].firstOrder, 3),
                 util::formatValue(v[i].secondOrder, 3),
                 util::formatValue(100.0 * ratio, 2) + "%",
                 util::formatValue(
                     v[i].meanShift / std::sqrt(v[i].total()), 3)});
      if (i == 0) {
        widths.push_back(w);
        ratios.push_back(ratio);
      }
    }
  }
  t1.print(std::cout);
  util::writeCsv(bench::outPath("ablation_bpv2_second_order.csv"),
                 {"width_nm", "idsat_2nd_over_1st"}, {widths, ratios});

  // --- Part 2: extraction under a planted correlation ---------------------
  std::cout << "\nPart 2: plant rho(VT0, mu) in the synthetic truth, extract\n"
               "with and without the Eq. (8) cross terms.\n";
  util::Table t2({"rho", "solve", "aVT0 err", "aLeff err", "aMu err"});
  for (const double rho : {0.0, 0.2, 0.4, 0.6}) {
    const linalg::Matrix r = vt0MuCorrelation(rho);

    std::vector<extract::GeometryMeasurement> meas;
    for (const double w : {1500.0, 600.0, 300.0, 120.0}) {
      extract::GeometryMeasurement m;
      m.geom = models::geometryNm(w, 40.0);
      const auto v =
          extract::propagateVarianceSecondOrder(card, m.geom, alphas, r, 0.9);
      m.varIdsat = v[0].firstOrder;
      m.varLog10Ioff = v[1].firstOrder;
      m.varCgg = v[2].firstOrder;
      meas.push_back(m);
    }

    const auto pct = [&](double got, double truth) {
      return util::formatValue(100.0 * (got / truth - 1.0), 1) + "%";
    };
    const extract::BpvResult indep = extract::solveBpv(card, meas);
    t2.addRow({util::formatValue(rho, 1), "independent (Eq. 9)",
               pct(indep.alphas.aVt0, alphas.aVt0),
               pct(indep.alphas.aLeff, alphas.aLeff),
               pct(indep.alphas.aMu, alphas.aMu)});
    const extract::CorrelatedBpvResult corr =
        extract::solveBpvCorrelated(card, meas, r);
    t2.addRow({util::formatValue(rho, 1),
               "correlated (Eq. 8), " +
                   std::to_string(corr.outerIterations) + " iters",
               pct(corr.alphas.aVt0, alphas.aVt0),
               pct(corr.alphas.aLeff, alphas.aLeff),
               pct(corr.alphas.aMu, alphas.aMu)});
  }
  t2.print(std::cout);

  std::cout << "\nAcceptance shape: the second-order term stays in the\n"
               "few-percent range at paper-scale sigmas (the paper's 'linear\n"
               "approximation is sufficiently accurate'), and the\n"
               "independence assumption is benign at rho = 0 but biases the\n"
               "extracted coefficients as rho grows, which the correlated\n"
               "fixed-point solve removes.\n";
  return 0;
}
