// Fig. 9: 6T SRAM cell -- READ/HOLD butterfly curves, SNM probability
// densities for both models, and the QQ plot of the HOLD SNM showing its
// slightly non-Gaussian tail.
#include <iostream>

#include "common.hpp"
#include "measure/snm.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/runner.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "stats/qq.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_fig9_sram_snm",
                     "Fig. 9 - 6T SRAM butterfly + READ/HOLD SNM (N/P 150/40)");

  // Nominal butterfly curves from the VS kit (paper Fig. 9 a/d).
  for (const auto mode : {circuits::SramMode::Read, circuits::SramMode::Hold}) {
    const bool read = mode == circuits::SramMode::Read;
    auto provider = bench::calibratedKit().makeNominalProvider();
    auto fixture = circuits::buildSramButterfly(*provider, 0.9, mode,
                                                circuits::SramSizing{});
    const auto curves = measure::measureButterfly(fixture, 61);
    util::writeCsv(bench::outPath(std::string("fig9_butterfly_") +
                                  (read ? "read" : "hold") + ".csv"),
                   {"c1_x", "c1_y", "c2_x", "c2_y"},
                   {curves.curve1.x, curves.curve1.y, curves.curve2.x,
                    curves.curve2.y});
    util::Series s1{curves.curve1.x, curves.curve1.y, '*'};
    util::Series s2{curves.curve2.x, curves.curve2.y, 'o'};
    std::cout << "\n" << (read ? "READ" : "HOLD")
              << " butterfly (VS nominal):\n"
              << util::asciiScatter({s1, s2}, 48, 20, "V", "V");
  }

  const int samples = bench::scaledSamples(2500, 250);
  std::cout << "MC samples per mode and model: " << samples << "\n";

  util::Table table({"mode", "model", "mean SNM [mV]", "sigma [mV]",
                     "min [mV]", "QQ r^2"});
  for (const auto mode : {circuits::SramMode::Read, circuits::SramMode::Hold}) {
    const bool read = mode == circuits::SramMode::Read;
    for (const bool useVs : {false, true}) {
      mc::McOptions opt;
      opt.samples = samples;
      opt.seed = (read ? 900 : 910) + (useVs ? 1 : 2);
      // Session campaign: the butterfly fixture is built once per worker
      // and rebound per sample (bit-identical to rebuilding it).
      const mc::McResult r = mc::runCampaign<circuits::SramButterflyBench>(
          opt, 1,
          [&](circuits::DeviceProvider& provider) {
            return circuits::buildSramButterfly(provider, 0.9, mode,
                                                circuits::SramSizing{});
          },
          [&] { return bench::makeStatProvider(useVs, stats::Rng(0)); },
          [&](std::size_t,
              sim::CampaignSession<circuits::SramButterflyBench>& session,
              stats::Rng&, std::vector<double>& out) {
            out[0] = measure::measureSnm(session.fixture(), session.spice(), 45)
                         .cellSnm();
          });
      const auto s = stats::summarize(r.metrics[0]);
      const auto qq = stats::qqAgainstNormal(r.metrics[0]);
      table.addRow({read ? "READ" : "HOLD", useVs ? "VS" : "golden",
                    util::formatValue(s.mean * 1e3, 1),
                    util::formatValue(s.stddev * 1e3, 1),
                    util::formatValue(s.min * 1e3, 1),
                    util::formatValue(qq.linearity, 4)});

      const std::string tag = std::string(read ? "read" : "hold") +
                              (useVs ? "_vs" : "_golden");
      const auto curve = stats::kde(r.metrics[0], 140);
      util::writeCsv(bench::outPath("fig9_snm_pdf_" + tag + ".csv"),
                     {"snm_V", "density"}, {curve.x, curve.density});
      util::writeCsv(bench::outPath("fig9_snm_qq_" + tag + ".csv"),
                     {"normal_quantile", "snm_V"},
                     {qq.theoretical, qq.sample});
      if (useVs) {
        std::cout << (read ? "READ" : "HOLD") << " SNM histogram (VS):\n"
                  << util::asciiHistogram(r.metrics[0], 16, 40, "SNM [V]");
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper Fig. 9 shape: READ SNM much smaller than HOLD SNM;\n"
               "VS matches the golden model on both PDFs; the HOLD SNM QQ\n"
               "plot bends slightly away from the Gaussian line (min-of-two-\n"
               "lobes statistics).\n";
  return 0;
}
