// Fig. 7: NAND2 FO3 delay PDFs and QQ plots at Vdd = 0.9/0.7/0.55 V.
// At nominal supply the delay is Gaussian; at low supply it becomes
// strongly right-skewed even though every VS variation parameter is an
// independent Gaussian -- the paper's key low-power result.
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "stats/normality.hpp"
#include "stats/qq.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_fig7_nand2_vdd",
                     "Fig. 7 - NAND2 FO3 delay PDFs + QQ under Vdd scaling");

  const int samples = bench::scaledSamples(2500, 250);
  std::cout << "MC samples per Vdd and model: " << samples << "\n";

  util::Table table({"Vdd [V]", "model", "mean [ps]", "sigma/mean [%]",
                     "skewness", "QQ linearity r^2", "JB stat"});

  for (const double vdd : {0.9, 0.7, 0.55}) {
    circuits::StimulusSpec stim;
    stim.vdd = vdd;
    // Slower inputs and a wider window at low supply.
    stim.slew = vdd >= 0.9 ? 12e-12 : (vdd >= 0.7 ? 18e-12 : 30e-12);
    stim.width = vdd >= 0.9 ? 80e-12 : (vdd >= 0.7 ? 140e-12 : 280e-12);
    const double dt = vdd >= 0.7 ? 0.3e-12 : 0.6e-12;

    for (const bool useVs : {false, true}) {
      const auto r = bench::runGateDelayCampaign(
          useVs, /*nand2=*/true, circuits::CellSizing{}, stim, samples,
          useVs ? 71 : 72, false, dt);
      const auto s = stats::summarize(r.delays);
      const auto qq = stats::qqAgainstNormal(r.delays);
      const auto jb = stats::jarqueBera(r.delays);
      table.addRow({util::formatValue(vdd, 2), useVs ? "VS" : "golden",
                    util::formatValue(s.mean * 1e12, 2),
                    util::formatValue(100.0 * s.stddev / s.mean, 2),
                    util::formatValue(s.skewness, 3),
                    util::formatValue(qq.linearity, 4),
                    util::formatValue(jb.statistic, 1)});

      const std::string tag = util::formatValue(vdd, 2) +
                              (useVs ? "_vs" : "_golden");
      const auto curve = stats::kde(r.delays, 160);
      util::writeCsv(bench::outPath("fig7_nand2_pdf_" + tag + ".csv"),
                     {"delay_s", "density"}, {curve.x, curve.density});
      util::writeCsv(bench::outPath("fig7_nand2_qq_" + tag + ".csv"),
                     {"normal_quantile", "delay_s"},
                     {qq.theoretical, qq.sample});

      if (useVs) {
        std::cout << "\nVS delay histogram at Vdd = " << vdd << " V:\n"
                  << util::asciiHistogram(r.delays, 18, 40, "delay [s]");
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper Fig. 7 shape: near-Gaussian at 0.9 V (QQ r^2 ~ 1),\n"
               "right-skew growing as Vdd drops; pronounced non-linearity of\n"
               "the QQ plot at 0.55 V, captured identically by both models.\n";
  return 0;
}
