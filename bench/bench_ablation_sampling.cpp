// Ablation: sampling designs for the paper's Monte Carlo campaigns.
//
// The paper runs 1000-5000 plain MC samples per experiment.  This bench
// quantifies what stratified (Latin hypercube) and low-discrepancy
// (randomized Halton) designs buy on a real response surface: the Idsat
// sigma estimate of a 600/40 nm NMOS over its 5-dimensional standardized
// mismatch space.  Error is RMS over replications against a 200k-sample
// reference.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "mc/samplers.hpp"
#include "models/process_variation.hpp"
#include "models/vs_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

constexpr double kVdd = 0.9;

/// Idsat at a standardized mismatch point.
double idsatAt(const models::VsParams& card,
               const models::DeviceGeometry& geom,
               const models::ParameterSigmas& s,
               const std::vector<double>& z) {
  models::VariationDelta d;
  d.dVt0 = z[0] * s.sVt0;
  d.dLeff = z[1] * s.sLeff;
  d.dWeff = z[2] * s.sWeff;
  d.dMu = z[3] * s.sMu;
  d.dCinv = z[4] * s.sCinv;
  const models::VsModel m(models::applyToVs(card, d));
  return m.drainCurrent(models::applyGeometry(geom, d), kVdd, kVdd);
}

double sigmaOf(const mc::SampleGenerator& gen, const models::VsParams& card,
               const models::DeviceGeometry& geom,
               const models::ParameterSigmas& s) {
  double sum = 0.0;
  double sumSq = 0.0;
  const std::size_t n = gen.samples();
  for (std::size_t i = 0; i < n; ++i) {
    const double id = idsatAt(card, geom, s, gen.standardNormals(i));
    sum += id;
    sumSq += id * id;
  }
  const double mean = sum / static_cast<double>(n);
  return std::sqrt(std::max(sumSq / static_cast<double>(n) - mean * mean,
                            0.0));
}

}  // namespace

int main() {
  bench::printHeader("bench_ablation_sampling",
                     "MC vs LHS vs randomized Halton on sigma(Idsat)");

  const models::VsParams card =
      bench::calibratedKit().nominal(models::DeviceType::Nmos);
  const models::DeviceGeometry geom = models::geometryNm(600, 40);
  const models::ParameterSigmas sigmas = models::sigmasFor(
      bench::calibratedKit().alphas(models::DeviceType::Nmos), geom);

  // Reference sigma from a large iid run.
  const mc::IidSampler reference(5, 200000, 777);
  const double sigmaRef = sigmaOf(reference, card, geom, sigmas);
  std::cout << "reference sigma(Idsat) = " << sigmaRef * 1e6
            << " uA (200k iid samples)\n\n";

  constexpr int kReps = 12;
  util::Table table({"N", "iid RMS err", "LHS RMS err", "Halton RMS err",
                     "LHS gain", "Halton gain"});
  std::vector<double> ns, errIid, errLhs, errHalton;
  for (const std::size_t n : {32UL, 64UL, 128UL, 256UL, 512UL}) {
    const auto rmsError = [&](auto makeSampler) {
      double acc = 0.0;
      for (int r = 0; r < kReps; ++r) {
        const auto gen = makeSampler(static_cast<std::uint64_t>(1000 + r));
        const double e = sigmaOf(gen, card, geom, sigmas) / sigmaRef - 1.0;
        acc += e * e;
      }
      return std::sqrt(acc / kReps);
    };
    const double iid = rmsError(
        [&](std::uint64_t s) { return mc::IidSampler(5, n, s); });
    const double lhs = rmsError([&](std::uint64_t s) {
      return mc::LatinHypercubeSampler(5, n, s);
    });
    const double halton = rmsError(
        [&](std::uint64_t s) { return mc::HaltonSampler(5, n, s); });

    table.addRow({std::to_string(n),
                  util::formatValue(100.0 * iid, 2) + "%",
                  util::formatValue(100.0 * lhs, 2) + "%",
                  util::formatValue(100.0 * halton, 2) + "%",
                  util::formatValue(iid / lhs, 2) + "x",
                  util::formatValue(iid / halton, 2) + "x"});
    ns.push_back(static_cast<double>(n));
    errIid.push_back(iid);
    errLhs.push_back(lhs);
    errHalton.push_back(halton);
  }
  table.print(std::cout);
  util::writeCsv(bench::outPath("ablation_sampling.csv"),
                 {"n", "rms_err_iid", "rms_err_lhs", "rms_err_halton"},
                 {ns, errIid, errLhs, errHalton});

  std::cout << "\nAcceptance shape: all three designs converge to the same\n"
               "sigma; the stratified/low-discrepancy designs reach a given\n"
               "accuracy with materially fewer samples, which matters for\n"
               "the DFF-class campaigns where each sample costs dozens of\n"
               "transient solves (paper Sec. IV-B).\n";
  return 0;
}
