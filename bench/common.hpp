// Shared infrastructure for the paper-reproduction bench binaries.
//
// Every bench prints the paper-style table/series to stdout, writes the
// raw data as CSV under out/, and uses fixed seeds so runs are
// reproducible.  Monte Carlo sample counts follow the paper but can be
// scaled with the VSSTAT_MC_SCALE environment variable (e.g. 0.2 for a
// quick pass, 1.0 for paper-exact counts).
#ifndef VSSTAT_BENCH_COMMON_HPP
#define VSSTAT_BENCH_COMMON_HPP

#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "extract/golden_meter.hpp"
#include "mc/runner.hpp"
#include "stats/rng.hpp"

namespace vsstat::bench {

/// Monte Carlo scale factor from VSSTAT_MC_SCALE (default 0.35;
/// use 1.0 for the paper's exact sample counts).
[[nodiscard]] double mcScale();

/// max(minimum, round(samples * mcScale())).
[[nodiscard]] int scaledSamples(int paperCount, int minimum = 50);

/// The golden 40-nm kit (the "industrial design kit" stand-in).
[[nodiscard]] const extract::GoldenKit& goldenKit();

/// The calibrated statistical VS kit: Fig. 1 fit + BPV extraction against
/// goldenKit(), computed once per process (cached).
[[nodiscard]] const core::StatisticalVsKit& calibratedKit();

/// Output path under out/ for CSV dumps.
[[nodiscard]] std::string outPath(const std::string& file);

/// Prints the standard bench header (name, seed policy, scale).
void printHeader(const std::string& benchName, const std::string& paperRef);

/// Statistical device provider for either kit ("VS" or golden "BSIM").
[[nodiscard]] std::unique_ptr<circuits::DeviceProvider> makeStatProvider(
    bool useVs, stats::Rng rng);

/// Monte Carlo of fanout-of-3 gate delays (average of tpHL/tpLH).
struct DelayCampaignResult {
  std::vector<double> delays;   ///< seconds, one per successful sample
  std::vector<double> leakage;  ///< amperes (only if withLeakage)
  int failures = 0;
};

[[nodiscard]] DelayCampaignResult runGateDelayCampaign(
    bool useVs, bool nand2, const circuits::CellSizing& sizing,
    const circuits::StimulusSpec& stimulus, int samples, std::uint64_t seed,
    bool withLeakage = false, double dt = 0.3e-12);

/// Largest relative per-sample metric deviation between two campaign runs
/// with the same seed -- the tolerance accounting behind the mode-comparison
/// bench rows (fast / reuse-pivot vs their baseline configuration).
/// Returns 1e30 on any shape mismatch (failure count, metric or sample
/// counts) so a structural divergence can never read as "within tolerance".
[[nodiscard]] double maxRelMetricDelta(const mc::McResult& a,
                                       const mc::McResult& b);

}  // namespace vsstat::bench

#endif  // VSSTAT_BENCH_COMMON_HPP
