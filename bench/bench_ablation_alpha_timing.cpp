// Ablation: VS vs the alpha-power-law baseline on timing accuracy.
//
// The paper's introduction claims the VS model achieves "better timing
// accuracy than [5]" (the empirical alpha-power ultra-compact model) with
// a similar parameter count, because it is physics-based.  This bench
// quantifies that claim in our substituted setting: both compact models
// are fitted once to the golden kit at Vdd = 0.9 V (the paper's flow), and
// the nominal INV FO3 delay is compared at Vdd = 0.9 / 0.7 / 0.55 V.  The
// expected shape: comparable error at the fit voltage, with the empirical
// model drifting much faster as Vdd scales into moderate inversion where
// its power law has no physical content.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "extract/fit.hpp"
#include "measure/delay.hpp"
#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

double invDelay(circuits::DeviceProvider& provider, double vdd) {
  circuits::StimulusSpec stim;
  stim.vdd = vdd;
  // Slower edges and a wider window at low supply: the gate itself slows
  // by ~5-10x between 0.9 and 0.55 V.
  const double stretch = vdd < 0.6 ? 6.0 : (vdd < 0.8 ? 2.5 : 1.0);
  stim.slew *= stretch;
  stim.width *= stretch;
  circuits::GateFo3Bench bench =
      circuits::buildInvFo3(provider, circuits::CellSizing{}, stim);
  bench.tStop *= stretch;
  return measure::measureGateDelays(bench, 0.3e-12 * stretch).average();
}

}  // namespace

int main() {
  bench::printHeader("bench_ablation_alpha_timing",
                     "Intro claim - VS vs alpha-power-law timing accuracy");

  const extract::GoldenKit& kit = bench::goldenKit();
  const models::BsimLite goldenN(kit.nmos);
  const models::BsimLite goldenP(kit.pmos);
  const models::DeviceGeometry geom = models::geometryNm(300, 40);

  // One nominal fit per model family at the nominal supply.
  const extract::IvFitResult vsFitN =
      extract::fitVsToGolden(models::defaultVsNmos(), goldenN, geom);
  const extract::IvFitResult vsFitP =
      extract::fitVsToGolden(models::defaultVsPmos(), goldenP, geom);
  const extract::AlphaFitResult apFitN =
      extract::fitAlphaPowerToGolden(models::defaultAlphaNmos(), goldenN, geom);
  const extract::AlphaFitResult apFitP =
      extract::fitAlphaPowerToGolden(models::defaultAlphaPmos(), goldenP, geom);
  std::cout << "fit status: VS " << (vsFitN.converged && vsFitP.converged)
            << ", alpha-power " << (apFitN.converged && apFitP.converged)
            << "  (DC parameter counts: VS 11, alpha-power 6+2 cap)\n";

  util::Table table({"Vdd [V]", "golden [ps]", "VS [ps]", "VS err",
                     "alpha-power [ps]", "alpha err"});
  std::vector<double> vdds, dG, dVs, dAp;
  for (const double vdd : {0.9, 0.7, 0.55}) {
    circuits::NominalProvider golden(models::BsimLite(kit.nmos),
                                     models::BsimLite(kit.pmos));
    circuits::NominalProvider vs(models::VsModel(vsFitN.card),
                                 models::VsModel(vsFitP.card));
    circuits::NominalProvider ap(models::AlphaPowerModel(apFitN.card),
                                 models::AlphaPowerModel(apFitP.card));

    const double tGolden = invDelay(golden, vdd);
    const double tVs = invDelay(vs, vdd);
    const double tAp = invDelay(ap, vdd);

    const auto pct = [&](double t) {
      return util::formatValue(100.0 * (t / tGolden - 1.0), 1) + "%";
    };
    table.addRow({util::formatValue(vdd, 2),
                  util::formatValue(tGolden * 1e12, 2),
                  util::formatValue(tVs * 1e12, 2), pct(tVs),
                  util::formatValue(tAp * 1e12, 2), pct(tAp)});
    vdds.push_back(vdd);
    dG.push_back(tGolden);
    dVs.push_back(tVs);
    dAp.push_back(tAp);
  }
  table.print(std::cout);
  util::writeCsv(bench::outPath("ablation_alpha_timing.csv"),
                 {"vdd", "delay_golden", "delay_vs", "delay_alpha"},
                 {vdds, dG, dVs, dAp});

  // Leakage: the categorical gap.  The alpha-power law has no subthreshold
  // conduction, so it cannot participate in any leakage/Ioff analysis
  // (Fig. 6, Table III log10 Ioff) at all.
  {
    circuits::NominalProvider golden(models::BsimLite(kit.nmos),
                                     models::BsimLite(kit.pmos));
    circuits::NominalProvider vs(models::VsModel(vsFitN.card),
                                 models::VsModel(vsFitP.card));
    circuits::NominalProvider ap(models::AlphaPowerModel(apFitN.card),
                                 models::AlphaPowerModel(apFitP.card));
    const auto leak = [](circuits::DeviceProvider& p) {
      circuits::GateFo3Bench b =
          circuits::buildInvFo3(p, circuits::CellSizing{},
                                circuits::StimulusSpec{});
      return measure::measureLeakage(b);
    };
    util::Table lt({"model", "INV FO3 leakage @0.9V [nA]"});
    lt.addRow({"golden", util::formatValue(leak(golden) * 1e9, 3)});
    lt.addRow({"VS", util::formatValue(leak(vs) * 1e9, 3)});
    lt.addRow({"alpha-power", util::formatValue(leak(ap) * 1e9, 6)});
    lt.print(std::cout);
  }

  std::cout << "\nMeasured shape: both ultra-compact models track the golden\n"
               "delay within single-digit percent across the Vdd sweep, with\n"
               "the VS fit consistently closer at scaled supplies.  The\n"
               "decisive physics gap is leakage: the alpha-power law predicts\n"
               "essentially zero off-state current, so the paper's leakage-\n"
               "frequency and log10(Ioff) analyses are impossible with it --\n"
               "matching the intro's point that a physics-based model at the\n"
               "same parameter count buys statistical/leakage capability.\n";
  return 0;
}
