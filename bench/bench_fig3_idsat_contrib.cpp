// Fig. 3: Idsat mismatch (sigma as % of mean) versus width at L = 40 nm,
// decomposed into the underlying process-parameter contributions
// (VT0 / LER / mu / Cinv).
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "extract/bpv.hpp"
#include "measure/device_metrics.hpp"
#include "models/vs_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader(
      "bench_fig3_idsat_contrib",
      "Fig. 3 - Idsat mismatch and process-parameter contributions, L=40nm");

  const auto& kit = bench::calibratedKit();
  const models::VsParams card = kit.nominal(models::DeviceType::Nmos);
  const models::PelgromAlphas alphas = kit.alphas(models::DeviceType::Nmos);

  util::Table table({"width [nm]", "sigma(Id)/Id [%]", "VT0 [%]",
                     "Leff&Weff [%]", "mu [%]", "Cinv [%]"});
  std::vector<double> w, total, vt0, ler, mu, cinv;

  for (const double widthNm : {120.0, 300.0, 600.0, 900.0, 1200.0, 1500.0}) {
    const models::DeviceGeometry geom = models::geometryNm(widthNm, 40.0);
    const extract::VarianceBreakdown vb =
        extract::propagateVariance(card, geom, alphas, kit.vdd());

    const models::VsModel nominal(card);
    const double idsat = measure::idsat(nominal, geom, kit.vdd());
    const auto pctOf = [&](double variance) {
      return 100.0 * std::sqrt(variance) / idsat;
    };

    const std::size_t idRow = 0;  // Target::Idsat
    const double cVt0 = vb.contributions(idRow, 0);
    const double cLer = vb.contributions(idRow, 1) + vb.contributions(idRow, 2);
    const double cMu = vb.contributions(idRow, 3);
    const double cCinv = vb.contributions(idRow, 4);
    const double cTot = vb.totalFor(idRow);

    table.addRow({util::formatValue(widthNm, 0), util::formatValue(pctOf(cTot), 3),
                  util::formatValue(pctOf(cVt0), 3), util::formatValue(pctOf(cLer), 3),
                  util::formatValue(pctOf(cMu), 3), util::formatValue(pctOf(cCinv), 3)});
    w.push_back(widthNm);
    total.push_back(pctOf(cTot));
    vt0.push_back(pctOf(cVt0));
    ler.push_back(pctOf(cLer));
    mu.push_back(pctOf(cMu));
    cinv.push_back(pctOf(cCinv));
  }
  table.print(std::cout);

  std::cout << "\nShape checks vs paper Fig. 3: total sigma/mean falls with\n"
               "1/sqrt(W); VT0 (RDF) and LER dominate; Cinv is negligible.\n";

  util::writeCsv(bench::outPath("fig3_idsat_contrib.csv"),
                 {"width_nm", "total_pct", "vt0_pct", "ler_pct", "mu_pct",
                  "cinv_pct"},
                 {w, total, vt0, ler, mu, cinv});
  return 0;
}
