// Fig. 5: delay probability density of a fanout-of-3 inverter at three
// sizes (P/N = 300/150, 600/300, 1200/600 nm), BSIM (golden) vs VS.
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "stats/normality.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_fig5_inv_delay_pdf",
                     "Fig. 5 - INV FO3 delay PDFs at 1x/2x/4x sizes");

  const int samples = bench::scaledSamples(2500, 250);
  std::cout << "MC samples per size and model: " << samples << "\n";

  util::Table table({"P/N size [nm]", "model", "mean [ps]", "sigma [ps]",
                     "sigma/mean [%]", "JB normal?"});

  const circuits::CellSizing sizes[] = {{300.0, 150.0, 40.0},
                                        {600.0, 300.0, 40.0},
                                        {1200.0, 600.0, 40.0}};
  for (const auto& sizing : sizes) {
    const std::string label = util::formatValue(sizing.wPmosNm, 0) + "/" +
                              util::formatValue(sizing.wNmosNm, 0);
    std::vector<std::vector<double>> both;
    for (const bool useVs : {false, true}) {
      const auto r = bench::runGateDelayCampaign(
          useVs, /*nand2=*/false, sizing, circuits::StimulusSpec{}, samples,
          useVs ? 51 : 52);
      const auto s = stats::summarize(r.delays);
      const auto jb = stats::jarqueBera(r.delays);
      table.addRow({label, useVs ? "VS" : "golden",
                    util::formatValue(s.mean * 1e12, 3),
                    util::formatValue(s.stddev * 1e12, 3),
                    util::formatValue(100.0 * s.stddev / s.mean, 2),
                    jb.rejectAt5Percent ? "no" : "yes"});
      both.push_back(r.delays);

      const auto curve = stats::kde(r.delays, 160);
      util::writeCsv(bench::outPath(
                         "fig5_inv_pdf_" + label + (useVs ? "_vs" : "_golden") +
                         ".csv"),
                     {"delay_s", "density"}, {curve.x, curve.density});
    }
    std::cout << "\nDelay histogram, P/N = " << label
              << " nm (top: golden, bottom: VS):\n"
              << util::asciiHistogram(both[0], 18, 40, "delay [s]")
              << util::asciiHistogram(both[1], 18, 40, "delay [s]");
  }
  table.print(std::cout);

  std::cout << "\nPaper Fig. 5 shape: Gaussian PDFs, near-identical between\n"
               "models across all three sizes.\n";
  return 0;
}
