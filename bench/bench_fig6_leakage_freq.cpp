// Fig. 6: total leakage vs frequency (1/delay) scatter for the INV FO3
// fixture -- the paper reports a ~37x leakage spread and ~45-50% frequency
// spread from within-die variation.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "stats/descriptive.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_fig6_leakage_freq",
                     "Fig. 6 - leakage vs frequency scatter (INV FO3)");

  const int samples = bench::scaledSamples(5000, 400);
  std::cout << "MC samples per model: " << samples << "\n";

  util::Table table({"model", "leakage spread max/min", "freq spread [%]",
                     "mean freq [GHz]", "corr(leak, freq)"});

  for (const bool useVs : {false, true}) {
    const auto r = bench::runGateDelayCampaign(
        useVs, /*nand2=*/false, circuits::CellSizing{}, circuits::StimulusSpec{},
        samples, useVs ? 61 : 62, /*withLeakage=*/true);

    std::vector<double> freq(r.delays.size());
    for (std::size_t i = 0; i < freq.size(); ++i) freq[i] = 1.0 / r.delays[i];

    const auto [minLeak, maxLeak] =
        std::minmax_element(r.leakage.begin(), r.leakage.end());
    const auto fs = stats::summarize(freq);
    const double freqSpread =
        100.0 * (fs.max - fs.min) / fs.mean;

    table.addRow({useVs ? "VS" : "golden",
                  util::formatValue(*maxLeak / *minLeak, 1) + "x",
                  util::formatValue(freqSpread, 1),
                  util::formatValue(fs.mean / 1e9, 2),
                  util::formatValue(stats::correlation(r.leakage, freq), 3)});

    util::writeCsv(bench::outPath(std::string("fig6_leak_freq_") +
                                  (useVs ? "vs" : "golden") + ".csv"),
                   {"leakage_A", "frequency_Hz"}, {r.leakage, freq});

    util::Series cloud{r.leakage, freq, useVs ? '*' : 'o'};
    std::cout << "\n" << (useVs ? "VS" : "golden")
              << " scatter (leakage -> frequency):\n"
              << util::asciiScatter({cloud}, 64, 18, "leakage [A]",
                                    "frequency [Hz]");
  }
  table.print(std::cout);

  std::cout << "\nPaper Fig. 6 shape: leakage spreads by tens of x (37x at\n"
               "5000 samples), frequency by ~45-50% of its mean; fast dies\n"
               "leak more (positive correlation).  Spread metrics grow with\n"
               "sample count, so the paper numbers need VSSTAT_MC_SCALE=1.\n";
  return 0;
}
