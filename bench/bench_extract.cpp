// Multi-fit extraction benchmark: the banked campaign engine
// (extract::FitCampaign) vs the legacy one-die scalar extraction shape on
// a production-volume batch of VS-card re-extractions.
//
//   extract_fit_scalar        -- serial baseline, one die at a time the way
//                                extract::fit does it: a fresh VsModel per
//                                residual evaluation, the allocating
//                                free-function LM, per-point evaluateLoad.
//   extract_campaign_banked   -- FitCampaign, reference numerics: lanes
//                                scheduled over the thread pool, per-worker
//                                allocation-free LM workspace, the whole
//                                bias grid evaluated through one device
//                                bank per fit iteration.  Bit-identical
//                                fits to the scalar baseline (same seeds,
//                                same datasets) -- checked in-process and
//                                emitted as "bit_identical".
//   extract_campaign_banked_fast -- same campaign under NumericsMode::fast
//                                (SIMD transcendental kernels): the
//                                throughput mode extraction's fit-tolerance
//                                contract legitimizes; carries the headline
//                                speedup_vs_scalar_fit.
//
// Every lane synthesizes a noisy I-V/Cgg dataset from a vt0-perturbed
// golden truth card and re-extracts it, so rows also report recovery
// quality: converged_fraction and the mean/max relative card-parameter
// error vs the known per-lane truth (CI-gated as bounded metrics).
//
// Output is JSONL (one object per line); BENCH_extract.json records a
// reference run that scripts/check_bench_regression.py gates in CI.
// "metrics_fnv1a" is FitCampaignResult::paramsFnv1a() -- equal hashes mean
// bit-identical campaigns; the CI parallel-scaling smoke compares it
// across 1/2/4 workers (--scaling mode, scripts/check_scaling.py).
//
// Usage: bench_extract [--quick] [--threads N] [--scaling]
//   --threads N   worker count for the banked campaign rows (default 8)
//   --scaling     emit only extract_campaign{,_fast} rows at the given
//                 worker count, skipping the scalar baseline
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "extract/fit_campaign.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

}  // namespace

// Global allocation hooks (same scheme as bench_campaign): count every heap
// allocation so the marginal allocs/fit metric is exact.
void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vsstat {
namespace {

using Clock = std::chrono::steady_clock;
using extract::FitCampaign;
using extract::FitCampaignResult;
using extract::FitDataset;
using extract::FitOutcome;
using extract::MeasurementGrid;

constexpr std::uint64_t kSeed = 2013;
constexpr double kVtSigma = 0.015;   ///< per-die truth vt0 spread [V]
constexpr double kNoiseRel = 0.004;  ///< multiplicative measurement noise
constexpr double kLoadFdStep = 1e-3;

unsigned gThreads = 8;
bool gScalingOnly = false;

/// Per-lane dataset: vt0-perturbed truth card, synthesized on the campaign
/// grid with measurement noise.  The first normal draw of the lane's fork
/// is the truth perturbation, so truthVt0() can regenerate it exactly.
FitCampaign::DatasetFn population(const FitCampaign& campaign,
                                  const models::VsParams& seed) {
  return [&campaign, seed](std::size_t, stats::Rng& rng, FitDataset& d) {
    models::VsParams t = seed;
    t.vt0 += kVtSigma * rng.normal();
    const models::VsModel m(t);
    campaign.synthesizeDataset(m, kNoiseRel, rng, d);
  };
}

double truthVt0(const models::VsParams& seed, std::uint64_t campaignSeed,
                std::size_t lane) {
  stats::Rng rng = stats::Rng(campaignSeed).fork(lane);
  return seed.vt0 + kVtSigma * rng.normal();
}

struct FitTiming {
  FitCampaignResult result;
  double usPerFit = 0.0;
  double allocsPerFit = 0.0;
};

/// Times a fit batch with the same marginal-allocation differencing as
/// bench_campaign: a small warm batch is measured first and its fixed cost
/// (result arrays, per-worker engines) differenced out, leaving the
/// steady-state allocation cost of adding one more fit.
constexpr int kWarmFits = 8;

FitTiming timeFits(int fits,
                   const std::function<FitCampaignResult(int)>& run) {
  (void)run(kWarmFits);  // warmup: thread pool + allocator to steady state
  const std::uint64_t base0 = gAllocCount.load(std::memory_order_relaxed);
  (void)run(kWarmFits);
  const std::uint64_t base1 = gAllocCount.load(std::memory_order_relaxed);

  const std::uint64_t allocs0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  FitTiming t;
  t.result = run(fits);
  const auto t1 = Clock::now();
  const std::uint64_t allocs1 = gAllocCount.load(std::memory_order_relaxed);

  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  t.usPerFit = us / fits;
  t.allocsPerFit = (static_cast<double>(allocs1 - allocs0) -
                    static_cast<double>(base1 - base0)) /
                   static_cast<double>(fits - kWarmFits);
  return t;
}

/// Mean/max relative error of every successful lane's fitted parameters vs
/// its known truth card (only vt0 varies per lane; the rest sit at the
/// seed values).
struct CardError {
  double mean = 0.0;
  double max = 0.0;
};

CardError cardError(const FitCampaignResult& r, const models::VsParams& seed,
                    std::uint64_t campaignSeed) {
  const double truthRest[7] = {0.0,     seed.delta0, seed.n0,  seed.vxo,
                               seed.mu, seed.beta,   seed.cinv};
  CardError e;
  double sum = 0.0;
  std::size_t terms = 0;
  for (std::size_t lane = 0; lane < r.laneCount; ++lane) {
    if (r.outcomes[lane] != FitOutcome::converged &&
        r.outcomes[lane] != FitOutcome::boundPinned)
      continue;
    const auto x = r.lane(lane);
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double truth =
          (j == 0) ? truthVt0(seed, campaignSeed, lane) : truthRest[j];
      const double rel = std::fabs(x[j] - truth) / std::fabs(truth);
      sum += rel;
      ++terms;
      e.max = std::max(e.max, rel);
    }
  }
  if (terms > 0) e.mean = sum / static_cast<double>(terms);
  return e;
}

/// The legacy one-die extraction shape, run serially over the same lanes:
/// free-function LM (allocates its workspace per fit), a fresh VsModel
/// constructed per residual evaluation, scalar evaluateLoad per bias
/// point.  Same grid, bounds, datasets and iteration budget as the
/// campaign, so its results are bit-identical to the banked reference run
/// -- what it measures is the cost of the legacy layout.
FitCampaignResult scalarFitBatch(const FitCampaign& campaign,
                                 const models::VsParams& seed, int fits,
                                 std::uint64_t campaignSeed) {
  const MeasurementGrid& g = campaign.grid();
  const models::DeviceGeometry geom{80e-9, 40e-9};
  const std::size_t pointCount = g.points.size();
  const std::size_t n = 7;
  linalg::LevMarOptions opt;
  opt.maxIterations = campaign.options().maxIterations;
  opt.lowerBounds = {0.15, 0.04, 1.22, 0.4e5, 0.6e-2, 1.2, 1.0e-2};
  opt.upperBounds = {0.65, 0.25, 1.90, 2.5e5, 5.0e-2, 2.8, 2.6e-2};
  const linalg::Vector x0 = {seed.vt0, seed.delta0, seed.n0, seed.vxo,
                             seed.mu,  seed.beta,   seed.cinv};

  FitCampaignResult res;
  res.laneCount = static_cast<std::size_t>(fits);
  res.paramCount = n;
  res.params.resize(res.laneCount * n);
  res.outcomes.assign(res.laneCount, FitOutcome::converged);
  res.cost.assign(res.laneCount, 0.0);
  res.iterations.assign(res.laneCount, 0);
  res.boundMask.assign(res.laneCount, 0);

  const stats::Rng root(campaignSeed);
  const auto makeDataset = population(campaign, seed);
  FitDataset d;
  for (std::size_t lane = 0; lane < res.laneCount; ++lane) {
    stats::Rng rng = root.fork(lane);
    d.cgg = 0.0;
    makeDataset(lane, rng, d);

    const linalg::ResidualFn fn = [&](const linalg::Vector& x,
                                      linalg::Vector& r) {
      models::VsParams p = seed;
      p.vt0 = x[0];
      p.delta0 = x[1];
      p.n0 = x[2];
      p.vxo = x[3];
      p.mu = x[4];
      p.beta = x[5];
      p.cinv = x[6];
      const models::VsModel m(p);  // fresh card per evaluation: legacy cost
      for (std::size_t i = 0; i < pointCount; ++i) {
        const models::MosfetLoadEvaluation ev = m.evaluateLoad(
            geom, g.points[i].vgs, g.points[i].vds, kLoadFdStep);
        r[i] = g.points[i].logSpace
                   ? g.logWeight * std::log(std::max(ev.at.id, 1e-18) / d.id[i])
                   : g.relWeight * (ev.at.id / d.id[i] - 1.0);
      }
      const models::MosfetLoadEvaluation anchor =
          m.evaluateLoad(geom, g.vdd, g.vdd, kLoadFdStep);
      r[pointCount] = g.cggWeight * (anchor.dqgVgs / d.cgg - 1.0);
    };

    double* out = res.params.data() + lane * n;
    try {
      const linalg::LevMarResult lm =
          linalg::levenbergMarquardt(fn, x0, pointCount + 1, opt);
      std::copy(lm.x.begin(), lm.x.end(), out);
      res.cost[lane] = lm.cost;
      res.iterations[lane] = lm.iterations;
      res.boundMask[lane] = lm.activeBounds;
      if (lm.activeBounds != 0)
        res.outcomes[lane] = FitOutcome::boundPinned;
      else if (!lm.converged || lm.stalled)
        res.outcomes[lane] = FitOutcome::stalled;
      else
        res.outcomes[lane] = FitOutcome::converged;
    } catch (const SampleFailure& e) {
      res.outcomes[lane] = e.failureClass() == FailureClass::singular
                               ? FitOutcome::singularJtJ
                               : FitOutcome::nonFinite;
      res.cost[lane] = std::numeric_limits<double>::quiet_NaN();
      std::copy(x0.begin(), x0.end(), out);
    }
  }
  for (std::size_t lane = 0; lane < res.laneCount; ++lane) {
    ++res.outcomeCounts[static_cast<int>(res.outcomes[lane])];
    res.totalLmIterations += static_cast<std::uint64_t>(res.iterations[lane]);
  }
  return res;
}

void emitRow(const std::string& name, int fits, unsigned threads,
             const FitTiming& t, double scalarUsPerFit, bool bitIdentical,
             const CardError& err) {
  std::printf(
      "{\"name\": \"%s\", \"fits\": %d, \"threads\": %u, "
      "\"us_per_fit\": %.1f, \"fits_per_sec\": %.1f, "
      "\"speedup_vs_scalar_fit\": %.2f, \"mean_lm_iters_per_fit\": %.1f, "
      "\"allocs_per_fit\": %.2f, \"converged_fraction\": %.3f, "
      "\"mean_card_param_rel_error\": %.4f, "
      "\"max_card_param_rel_error\": %.4f, \"bit_identical\": %s, "
      "\"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), fits, threads, t.usPerFit, 1e6 / t.usPerFit,
      scalarUsPerFit / t.usPerFit, t.result.meanIterationsPerFit(),
      t.allocsPerFit, t.result.convergedFraction(), err.mean, err.max,
      bitIdentical ? "true" : "false",
      static_cast<unsigned long long>(t.result.paramsFnv1a()));
}

/// --scaling row: no scalar baseline ran, so the comparison fields are
/// omitted -- cross-worker-count identity is what metrics_fnv1a carries.
/// "samples_per_sec" duplicates fits_per_sec under the key
/// scripts/check_scaling.py uses for its efficiency table.
void emitScaling(const std::string& name, int fits, const FitTiming& t) {
  std::printf(
      "{\"name\": \"%s\", \"fits\": %d, \"threads\": %u, "
      "\"us_per_fit\": %.1f, \"fits_per_sec\": %.1f, "
      "\"samples_per_sec\": %.1f, \"allocs_per_fit\": %.2f, "
      "\"converged_fraction\": %.3f, \"metrics_fnv1a\": \"0x%016llx\"}\n",
      name.c_str(), fits, gThreads, t.usPerFit, 1e6 / t.usPerFit,
      1e6 / t.usPerFit, t.allocsPerFit, t.result.convergedFraction(),
      static_cast<unsigned long long>(t.result.paramsFnv1a()));
}

int run(int fits) {
  const models::VsParams seed;
  const models::DeviceGeometry geom{80e-9, 40e-9};

  extract::FitCampaignOptions banked;
  banked.threads = gThreads;
  const FitCampaign campaignRef(seed, geom, extract::vsMeasurementGrid(),
                                banked);

  extract::FitCampaignOptions fast = banked;
  fast.numerics = models::NumericsMode::fast;
  const FitCampaign campaignFast(seed, geom, extract::vsMeasurementGrid(),
                                 fast);

  if (gScalingOnly) {
    const FitTiming ref = timeFits(fits, [&](int n) {
      return campaignRef.run(static_cast<std::size_t>(n), kSeed,
                             population(campaignRef, seed));
    });
    emitScaling("extract_campaign", fits, ref);
    const FitTiming fst = timeFits(fits, [&](int n) {
      return campaignFast.run(static_cast<std::size_t>(n), kSeed,
                              population(campaignFast, seed));
    });
    emitScaling("extract_campaign_fast", fits, fst);
    return 0;
  }

  const FitTiming scalar = timeFits(fits, [&](int n) {
    return scalarFitBatch(campaignRef, seed, n, kSeed);
  });
  const FitTiming ref = timeFits(fits, [&](int n) {
    return campaignRef.run(static_cast<std::size_t>(n), kSeed,
                           population(campaignRef, seed));
  });
  const FitTiming fst = timeFits(fits, [&](int n) {
    return campaignFast.run(static_cast<std::size_t>(n), kSeed,
                            population(campaignFast, seed));
  });

  // Same seeds, same datasets, reference numerics: the banked campaign must
  // reproduce the scalar baseline bit-for-bit (bank + workspace contracts).
  const bool identical =
      scalar.result.paramsFnv1a() == ref.result.paramsFnv1a();

  emitRow("extract_fit_scalar", fits, 1, scalar, scalar.usPerFit, identical,
          cardError(scalar.result, seed, kSeed));
  emitRow("extract_campaign_banked", fits, gThreads, ref, scalar.usPerFit,
          identical, cardError(ref.result, seed, kSeed));
  emitRow("extract_campaign_banked_fast", fits, gThreads, fst,
          scalar.usPerFit, /*bitIdentical=*/false,
          cardError(fst.result, seed, kSeed));
  return 0;
}

}  // namespace
}  // namespace vsstat

int main(int argc, char** argv) {
  int fits = 1000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      fits = 120;
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      vsstat::gScalingOnly = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int t = std::atoi(argv[++i]);
      if (t < 1) {
        std::fprintf(stderr, "bench_extract: --threads wants >= 1\n");
        return 2;
      }
      vsstat::gThreads = static_cast<unsigned>(t);
    } else {
      std::fprintf(stderr,
                   "bench_extract: unknown argument '%s' (usage: "
                   "bench_extract [--quick] [--threads N] [--scaling])\n",
                   argv[i]);
      return 2;
    }
  }
  try {
    return vsstat::run(fits);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_extract: %s\n", e.what());
    return 1;
  }
}
