// Table III: standard deviation of Idsat and log10(Ioff) from Monte Carlo
// for wide/medium/short devices, statistical VS model vs the golden kit.
#include <iostream>

#include "common.hpp"
#include "measure/device_metrics.hpp"
#include "mc/runner.hpp"
#include "models/bsim_lite.hpp"
#include "models/process_variation.hpp"
#include "stats/descriptive.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

struct SigmaPair {
  double idsatSigma = 0.0;
  double ioffSigma = 0.0;
};

SigmaPair runDeviceMc(models::DeviceType type,
                      const models::DeviceGeometry& geom, bool useVs,
                      int samples, std::uint64_t seed) {
  const auto& kit = bench::calibratedKit();
  const auto& golden = bench::goldenKit();

  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = seed;
  const mc::McResult r = mc::runCampaign(
      opt, 2, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        if (useVs) {
          const auto inst = kit.makeInstance(type, geom, rng);
          out[0] = measure::idsat(*inst.model, inst.geometry, kit.vdd());
          out[1] = measure::log10Ioff(*inst.model, inst.geometry, kit.vdd());
        } else {
          const bool isN = type == models::DeviceType::Nmos;
          const auto alphas = models::toPelgromAlphas(
              isN ? golden.nmosMismatch : golden.pmosMismatch);
          const auto delta =
              models::sampleDelta(models::sigmasFor(alphas, geom), rng);
          const models::BsimLite model(models::applyToBsim(
              isN ? golden.nmos : golden.pmos, delta));
          const auto g = models::applyGeometry(geom, delta);
          out[0] = measure::idsat(model, g, golden.vdd);
          out[1] = measure::log10Ioff(model, g, golden.vdd);
        }
      });
  SigmaPair s;
  s.idsatSigma = stats::stddev(r.metrics[0]);
  s.ioffSigma = stats::stddev(r.metrics[1]);
  return s;
}

}  // namespace

int main() {
  bench::printHeader("bench_table3_mc_sigma",
                     "Table III - MC sigma of Idsat / log10(Ioff), VS vs golden");

  const int samples = bench::scaledSamples(2000, 400);
  std::cout << "samples per cell: " << samples << "\n\n";

  struct Row {
    const char* label;
    double w, l;
  };
  const Row rows[] = {{"Wide  (1500/40)", 1500.0, 40.0},
                      {"Medium (600/40)", 600.0, 40.0},
                      {"Short  (120/40)", 120.0, 40.0}};

  util::Table table({"Device", "type", "e_i", "golden sigma", "VS sigma",
                     "ratio"});
  util::CsvWriter csv(bench::outPath("table3_mc_sigma.csv"),
                      {"device", "type", "metric", "golden", "vs"});

  for (const auto& row : rows) {
    for (const auto type : {models::DeviceType::Nmos, models::DeviceType::Pmos}) {
      const auto geom = models::geometryNm(row.w, row.l);
      const SigmaPair golden = runDeviceMc(type, geom, false, samples, 101);
      const SigmaPair vs = runDeviceMc(type, geom, true, samples, 202);

      table.addRow({row.label, models::toString(type), "Idsat [uA]",
                    util::formatValue(golden.idsatSigma * 1e6, 2),
                    util::formatValue(vs.idsatSigma * 1e6, 2),
                    util::formatValue(vs.idsatSigma / golden.idsatSigma, 3)});
      table.addRow({row.label, models::toString(type), "log10 Ioff",
                    util::formatValue(golden.ioffSigma, 3),
                    util::formatValue(vs.ioffSigma, 3),
                    util::formatValue(vs.ioffSigma / golden.ioffSigma, 3)});
      csv.writeRow(std::vector<std::string>{
          row.label, models::toString(type), "idsat_uA",
          util::formatValue(golden.idsatSigma * 1e6, 4),
          util::formatValue(vs.idsatSigma * 1e6, 4)});
      csv.writeRow(std::vector<std::string>{
          row.label, models::toString(type), "log10_ioff",
          util::formatValue(golden.ioffSigma, 4),
          util::formatValue(vs.ioffSigma, 4)});
    }
    table.addSeparator();
  }
  table.print(std::cout);

  std::cout << "\nPaper Table III acceptance: VS/golden sigma ratios near 1\n"
               "(paper matches within ~1-4%; this reproduction within ~10%,\n"
               "the residual being the documented cross-model sensitivity gap).\n";
  return 0;
}
