// Fig. 4: Ion vs log10(Ioff) bivariate scatter for the medium NMOS device
// (W/L = 600/40) with 1/2/3-sigma confidence ellipses from both models.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "measure/device_metrics.hpp"
#include "mc/runner.hpp"
#include "models/bsim_lite.hpp"
#include "models/process_variation.hpp"
#include "stats/ellipse.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

mc::McResult scatter(bool useVs, int samples) {
  const auto geom = models::geometryNm(600, 40);
  const auto& kit = bench::calibratedKit();
  const auto& golden = bench::goldenKit();
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 1000;  // same seed stream: same underlying "dies"
  return mc::runCampaign(
      opt, 2, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        if (useVs) {
          const auto inst =
              kit.makeInstance(models::DeviceType::Nmos, geom, rng);
          out[0] = measure::idsat(*inst.model, inst.geometry, kit.vdd());
          out[1] = measure::log10Ioff(*inst.model, inst.geometry, kit.vdd());
        } else {
          const auto alphas = models::toPelgromAlphas(golden.nmosMismatch);
          const auto delta =
              models::sampleDelta(models::sigmasFor(alphas, geom), rng);
          const models::BsimLite model(
              models::applyToBsim(golden.nmos, delta));
          const auto g = models::applyGeometry(geom, delta);
          out[0] = measure::idsat(model, g, golden.vdd);
          out[1] = measure::log10Ioff(model, g, golden.vdd);
        }
      });
}

}  // namespace

int main() {
  bench::printHeader(
      "bench_fig4_scatter_ellipse",
      "Fig. 4 - Ion/log10(Ioff) scatter + 1/2/3-sigma ellipses (600/40 NMOS)");

  const int samples = bench::scaledSamples(1000, 300);
  const mc::McResult goldenMc = scatter(false, samples);
  const mc::McResult vsMc = scatter(true, samples);

  const stats::Bivariate mGolden =
      stats::bivariateMoments(goldenMc.metrics[0], goldenMc.metrics[1]);
  const stats::Bivariate mVs =
      stats::bivariateMoments(vsMc.metrics[0], vsMc.metrics[1]);

  util::Table table({"model", "mean Ion [uA]", "sigma Ion [uA]",
                     "mean log10Ioff", "sigma log10Ioff", "corr(Ion,logIoff)"});
  const auto addRow = [&](const char* name, const stats::Bivariate& m) {
    table.addRow({name, util::formatValue(m.meanX * 1e6, 1),
                  util::formatValue(std::sqrt(m.varX) * 1e6, 2),
                  util::formatValue(m.meanY, 3),
                  util::formatValue(std::sqrt(m.varY), 3),
                  util::formatValue(m.correlation(), 3)});
  };
  addRow("golden", mGolden);
  addRow("VS", mVs);
  table.print(std::cout);

  // Ellipse containment: expected 39.3% / 86.5% / 98.9% for a Gaussian.
  util::Table cover({"k-sigma", "golden inside [%]", "VS inside [%]",
                     "Gaussian expectation [%]"});
  const double expect[] = {39.35, 86.47, 98.89};
  for (int k = 1; k <= 3; ++k) {
    cover.addRow(
        {std::to_string(k),
         util::formatValue(100.0 * stats::fractionInside(
                               mGolden, k, goldenMc.metrics[0],
                               goldenMc.metrics[1]), 1),
         util::formatValue(100.0 * stats::fractionInside(
                               mVs, k, vsMc.metrics[0], vsMc.metrics[1]), 1),
         util::formatValue(expect[k - 1], 1)});
  }
  cover.print(std::cout);

  // ASCII scatter with both clouds ('o' golden, '*' VS).
  util::Series sg{goldenMc.metrics[0], goldenMc.metrics[1], 'o'};
  util::Series sv{vsMc.metrics[0], vsMc.metrics[1], '*'};
  std::cout << "Scatter (golden 'o', VS '*'):\n"
            << util::asciiScatter({sg, sv}, 68, 22, "Ion [A]", "log10 Ioff");

  // CSV: clouds + 3-sigma ellipse traces for both models.
  util::writeCsv(bench::outPath("fig4_scatter_golden.csv"),
                 {"ion_A", "log10_ioff"},
                 {goldenMc.metrics[0], goldenMc.metrics[1]});
  util::writeCsv(bench::outPath("fig4_scatter_vs.csv"), {"ion_A", "log10_ioff"},
                 {vsMc.metrics[0], vsMc.metrics[1]});
  for (int k = 1; k <= 3; ++k) {
    const auto eg = stats::traceEllipse(stats::sigmaEllipse(mGolden, k));
    const auto ev = stats::traceEllipse(stats::sigmaEllipse(mVs, k));
    util::writeCsv(bench::outPath("fig4_ellipse_golden_" + std::to_string(k) +
                                  "sigma.csv"),
                   {"x", "y"}, {eg.x, eg.y});
    util::writeCsv(
        bench::outPath("fig4_ellipse_vs_" + std::to_string(k) + "sigma.csv"),
        {"x", "y"}, {ev.x, ev.y});
  }
  return 0;
}
