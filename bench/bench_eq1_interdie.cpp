// Eq. (1): inter-die variance recovery -- the paper's Sec. I extension.
//
// The paper extracts the within-die (mismatch) component and notes that
// inter-die variation follows from sigma^2_inter = sigma^2_total -
// sigma^2_within.  This bench exercises that workflow end to end on the
// calibrated statistical VS kit:
//
//   1. plant a known inter-die VT0/mu shift on top of the BPV-extracted
//      within-die mismatch (DieSampler),
//   2. simulate Idsat for many dies x devices,
//   3. decompose the population per Eq. (1),
//   4. compare the recovered within/inter sigmas against (a) the planted
//      global component propagated through the device sensitivities and
//      (b) the paper-flow forward propagation of the extracted alphas.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "extract/bpv.hpp"
#include "extract/sensitivity.hpp"
#include "models/die_variation.hpp"
#include "models/vs_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_eq1_interdie",
                     "Eq. (1) - inter-die / within-die decomposition");

  const core::StatisticalVsKit& kit = bench::calibratedKit();
  const models::VsParams card = kit.nominal(models::DeviceType::Nmos);
  const models::DeviceGeometry geom = models::geometryNm(600, 40);
  constexpr double kVdd = 0.9;

  // Planted inter-die component: global VT0 and mobility shifts.
  models::DieVariationSpec spec;
  spec.local = kit.alphas(models::DeviceType::Nmos);
  spec.global.sVt0 = 0.012;                 // 12 mV die-to-die
  spec.global.sMu = 0.02 * card.mu;         // 2% die-to-die mobility

  // 24 devices per die on a coarse grid (locations only matter when the
  // spatial component is enabled; kept for the workflow's generality).
  std::vector<stats::DiePoint> locations;
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 4; ++j)
      locations.push_back({i * 30e-6, j * 30e-6});
  models::DieSampler sampler(spec, locations);

  const int dies = bench::scaledSamples(600, 120);
  stats::Rng rng(20130318);  // DATE 2013 :-)
  std::vector<std::vector<double>> idsatPerDie;
  idsatPerDie.reserve(static_cast<std::size_t>(dies));
  for (int d = 0; d < dies; ++d) {
    sampler.newDie(rng);
    std::vector<double> die;
    die.reserve(locations.size());
    for (std::size_t loc = 0; loc < locations.size(); ++loc) {
      const models::VariationDelta delta = sampler.deltaFor(loc, geom, rng);
      const models::VsModel m(models::applyToVs(card, delta));
      die.push_back(
          m.drainCurrent(models::applyGeometry(geom, delta), kVdd, kVdd));
    }
    idsatPerDie.push_back(std::move(die));
  }

  const models::VarianceDecomposition v =
      models::decomposeVariance(idsatPerDie);

  // Reference within-die sigma: the paper-flow forward propagation of the
  // extracted alphas.  Reference inter-die sigma: first-order propagation
  // of the planted global shifts through the Idsat sensitivities.
  const extract::VarianceBreakdown fwd =
      extract::propagateVariance(card, geom, spec.local, kVdd);
  const double sigmaWithinRef = std::sqrt(
      fwd.totalFor(static_cast<std::size_t>(extract::Target::Idsat)));

  const linalg::Matrix sens = extract::targetSensitivities(card, geom, kVdd);
  const auto gIdsat = [&](extract::Parameter p) {
    return sens(static_cast<std::size_t>(extract::Target::Idsat),
                static_cast<std::size_t>(p));
  };
  const double sigmaInterRef = std::hypot(
      gIdsat(extract::Parameter::Vt0) * spec.global.sVt0,
      gIdsat(extract::Parameter::Mu) * spec.global.sMu);

  util::Table t({"component", "recovered sigma [uA]", "reference [uA]",
                 "ratio"});
  const auto uA = [](double varA2) { return std::sqrt(varA2) * 1e6; };
  t.addRow({"within-die", util::formatValue(uA(v.withinDie), 3),
            util::formatValue(sigmaWithinRef * 1e6, 3),
            util::formatValue(uA(v.withinDie) / (sigmaWithinRef * 1e6), 3)});
  t.addRow({"inter-die (Eq. 1)", util::formatValue(uA(v.interDie), 3),
            util::formatValue(sigmaInterRef * 1e6, 3),
            util::formatValue(uA(v.interDie) / (sigmaInterRef * 1e6), 3)});
  t.addRow({"total", util::formatValue(uA(v.total), 3),
            util::formatValue(std::hypot(sigmaWithinRef, sigmaInterRef) * 1e6,
                              3),
            util::formatValue(uA(v.total) /
                                  (std::hypot(sigmaWithinRef, sigmaInterRef) *
                                   1e6),
                              3)});
  t.print(std::cout);

  util::writeCsv(
      bench::outPath("eq1_interdie.csv"),
      {"component", "recovered_uA", "reference_uA"},
      {{1.0, 2.0, 3.0},
       {uA(v.withinDie), uA(v.interDie), uA(v.total)},
       {sigmaWithinRef * 1e6, sigmaInterRef * 1e6,
        std::hypot(sigmaWithinRef, sigmaInterRef) * 1e6}});

  std::cout << "\nAcceptance shape: both recovered components land near\n"
               "their references (ratios ~1), demonstrating the Eq. (1)\n"
               "workflow the paper sketches for extending BPV beyond the\n"
               "within-die component.  (" << dies << " dies x "
            << locations.size() << " devices)\n";
  return 0;
}
