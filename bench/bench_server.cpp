// Campaign-server benchmark: the netlist-in/statistics-out daemon measured
// at the protocol layer (serve::CampaignServer::handleLine, no sockets --
// the socket loop only shuttles bytes into the same entry point).
//
// Three workloads, each measured cold and warm:
//
//   server_inv        -- the 2-transistor inverter deck: the protocol-
//                        overhead floor (parse + validate + tiny campaign);
//   server_chain24    -- a 24-stage / 48-transistor inverter-chain deck:
//                        the sample-dominated regime, where one DC Newton
//                        solve of the topology outweighs setup and the
//                        warm ratio is honest but modest;
//   server_rladder400 -- a 400-segment supply-rail resistor ladder feeding
//                        one statistically varied leakage NMOS: the
//                        parse/build-dominated regime (400+ deck lines,
//                        a 400-unknown pattern capture and ordering, but a
//                        cheap nearly linear per-sample solve) where the
//                        two-level cache pays hardest.  This is the
//                        headline warm_vs_cold_ttfs row.
//
// Cold rows run each request on a FRESH server (empty caches) and record
// the median time-to-first-stat (ttfs_ms): request arrival to the first
// streamed progress frame, including the validation parse, pool
// construction, and lazy per-worker session builds.  Warm rows replay the
// identical request against a server whose deck-plan and session-pool
// caches already hold the topology (no deck parse, no session build), and
// additionally record p99 TTFS and end-to-end sequential request
// throughput (requests_per_sec).
//
//   warm_vs_cold_ttfs = median cold TTFS / median warm TTFS
//
// is the headline ratio: the caches must make the first streamed statistic
// of a repeat topology at least 2x faster (the committed BENCH_server.json
// floors the rladder row's CI band above that bar).  bit_identical asserts
// that every warm request's metrics_fnv1a fingerprint equals the cold
// run's: cache reuse must never leak into results.
//
// Output is machine-readable JSON, one object per line on stdout;
// BENCH_server.json records a reference run and CI gates regressions
// against it (scripts/check_bench_regression.py).
//
// Usage: bench_server [--quick]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using vsstat::serve::CampaignServer;

double msSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

constexpr const char* kInverterDeck =
    "VDD vdd 0 0.9\n"
    "VIN in 0 0.45\n"
    "MP out in vdd pch W=600n L=40n\n"
    "MN out in 0 nch W=300n L=40n\n"
    ".model nch vs_nmos\n"
    ".model pch vs_pmos\n"
    ".end\n";

/// N-stage inverter chain driven by a DC low: node n<i> is the output of
/// stage i, probed at the last stage.
std::string chainDeck(int stages) {
  std::string deck = "VDD vdd 0 0.9\nVIN n0 0 0.0\n";
  for (int i = 1; i <= stages; ++i) {
    const std::string in = "n" + std::to_string(i - 1);
    const std::string out = "n" + std::to_string(i);
    deck += "MP" + std::to_string(i) + " " + out + " " + in +
            " vdd pch W=600n L=40n\n";
    deck += "MN" + std::to_string(i) + " " + out + " " + in +
            " 0 nch W=300n L=40n\n";
  }
  deck += ".model nch vs_nmos\n.model pch vs_pmos\n.end\n";
  return deck;
}

/// Supply rail of `segments` series resistors feeding one diode-connected
/// leakage NMOS at the far end; the probed far-end voltage varies with the
/// device's statistical draw.  Parse and pattern-capture cost scale with
/// the segment count while the per-sample solve stays nearly linear.
std::string ladderDeck(int segments) {
  std::string deck = "VDD s0 0 0.9\n";
  for (int i = 1; i <= segments; ++i) {
    deck += "R" + std::to_string(i) + " s" + std::to_string(i - 1) + " s" +
            std::to_string(i) + " 0.05\n";
  }
  const std::string far = "s" + std::to_string(segments);
  deck += "MLEAK " + far + " " + far + " 0 nch W=1u L=40n\n";
  deck += ".model nch vs_nmos\n.end\n";
  return deck;
}

std::string makeRequest(const std::string& deck, const std::string& probe,
                        int samples, int streamEvery) {
  std::string req = "{\"id\":\"bench\",\"deck\":";
  vsstat::serve::appendJsonString(req, deck);
  req += ",\"samples\":" + std::to_string(samples);
  req += ",\"seed\":17,\"threads\":1";
  req += ",\"stream_every\":" + std::to_string(streamEvery);
  req += ",\"measure\":{\"probes\":[\"" + probe + "\"]}}";
  return req;
}

struct RequestOutcome {
  double ttfsMs = -1.0;   ///< request arrival -> first progress frame
  double totalMs = 0.0;   ///< request arrival -> final frame
  int progressFrames = 0;
  std::string hash;       ///< final frame's metrics_fnv1a
  bool finalOk = false;
};

RequestOutcome timeRequest(CampaignServer& server, const std::string& line) {
  RequestOutcome out;
  const Clock::time_point start = Clock::now();
  server.handleLine(line, [&out, start](const std::string& frame) {
    const Clock::time_point now = Clock::now();
    if (frame.find("\"type\":\"progress\"") != std::string::npos) {
      if (out.progressFrames++ == 0) out.ttfsMs = msSince(start, now);
    } else if (frame.find("\"type\":\"final\"") != std::string::npos) {
      const vsstat::serve::JsonValue doc = vsstat::serve::parseJson(frame);
      out.hash = doc.find("metrics_fnv1a")->string;
      out.finalOk = true;
    } else if (frame.find("\"type\":\"error\"") != std::string::npos) {
      std::fprintf(stderr, "bench_server: error frame: %s\n", frame.c_str());
    }
  });
  out.totalMs = msSince(start, Clock::now());
  return out;
}

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double percentile99(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  if (values.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      0.99 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

/// Runs the cold + warm rows for one workload; returns false on any
/// correctness violation (missing frames, fingerprint drift).
bool runWorkload(const char* name, const std::string& deck,
                 const std::string& probe, int samples, int streamEvery,
                 int coldReps, int warmReps) {
  const std::string request = makeRequest(deck, probe, samples, streamEvery);
  bool ok = true;

  // Cold: fresh server per repetition, so every request pays the
  // validation parse, pool construction, and lazy session build.
  std::vector<double> coldTtfs;
  std::string coldHash;
  double coldRequestMs = 0.0;
  int coldProgress = 0;
  for (int rep = 0; rep < coldReps; ++rep) {
    CampaignServer server;
    const RequestOutcome out = timeRequest(server, request);
    if (!out.finalOk || out.ttfsMs < 0) {
      std::fprintf(stderr, "bench_server: %s cold request failed\n", name);
      return false;
    }
    coldTtfs.push_back(out.ttfsMs);
    coldHash = out.hash;
    coldRequestMs = out.totalMs;
    coldProgress = out.progressFrames;
  }

  // Warm: one server, one priming request, then timed replays against the
  // now-cached session pool.
  CampaignServer server;
  const RequestOutcome prime = timeRequest(server, request);
  bool bitIdentical = prime.finalOk && prime.hash == coldHash;
  std::vector<double> warmTtfs;
  double warmTotalMs = 0.0;
  int warmProgress = 0;
  for (int rep = 0; rep < warmReps; ++rep) {
    const RequestOutcome out = timeRequest(server, request);
    if (!out.finalOk || out.ttfsMs < 0) {
      std::fprintf(stderr, "bench_server: %s warm request failed\n", name);
      return false;
    }
    bitIdentical = bitIdentical && out.hash == coldHash;
    warmTtfs.push_back(out.ttfsMs);
    warmTotalMs += out.totalMs;
    warmProgress = out.progressFrames;
  }
  if (coldProgress < 3 || warmProgress < 3) {
    std::fprintf(stderr,
                 "bench_server: %s streamed fewer than 3 progress frames "
                 "(cold %d, warm %d)\n",
                 name, coldProgress, warmProgress);
    ok = false;
  }
  if (!bitIdentical) {
    std::fprintf(stderr,
                 "bench_server: %s warm fingerprint diverged from cold\n",
                 name);
    ok = false;
  }

  const double coldMedian = median(coldTtfs);
  const double warmMedian = median(warmTtfs);
  const double ratio = warmMedian > 0.0 ? coldMedian / warmMedian : 0.0;
  const double reqPerSec =
      warmTotalMs > 0.0 ? 1000.0 * warmReps / warmTotalMs : 0.0;

  std::printf("{\"name\": \"%s_cold\", \"samples\": %d, \"threads\": 1, "
              "\"ttfs_ms\": %.3f, \"request_ms\": %.3f, "
              "\"progress_frames\": %d, \"metrics_fnv1a\": \"%s\"}\n",
              name, samples, coldMedian, coldRequestMs, coldProgress,
              coldHash.c_str());
  std::printf("{\"name\": \"%s_warm\", \"samples\": %d, \"threads\": 1, "
              "\"ttfs_ms\": %.3f, \"p99_ttfs_ms\": %.3f, "
              "\"requests_per_sec\": %.1f, \"warm_vs_cold_ttfs\": %.2f, "
              "\"bit_identical\": %s, \"progress_frames\": %d, "
              "\"metrics_fnv1a\": \"%s\"}\n",
              name, samples, warmMedian, percentile99(warmTtfs), reqPerSec,
              ratio, bitIdentical ? "true" : "false", warmProgress,
              coldHash.c_str());
  std::fflush(stdout);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  std::printf("# bench_server: campaign-server protocol layer "
              "(handleLine in-process; cold = fresh server per request, "
              "warm = cached session pool)%s\n",
              quick ? " [--quick]" : "");

  const int samples = quick ? 24 : 96;
  const int streamEvery = 1;
  const int coldReps = quick ? 3 : 7;
  const int warmReps = quick ? 16 : 64;

  bool ok = true;
  try {
    ok = runWorkload("server_inv", kInverterDeck, "out", samples,
                     streamEvery, coldReps, warmReps) &&
         ok;
    ok = runWorkload("server_chain24", chainDeck(24), "n24", samples,
                     streamEvery, coldReps, warmReps) &&
         ok;
    ok = runWorkload("server_rladder400", ladderDeck(400), "s400", samples,
                     streamEvery, coldReps, warmReps) &&
         ok;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_server: %s\n", e.what());
    return 1;
  }
  return ok ? 0 : 1;
}
