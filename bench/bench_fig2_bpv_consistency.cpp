// Fig. 2: relative difference in sigma(VT0), sigma(Leff), sigma(Weff)
// between solving the BPV system per-geometry (individually) and jointly
// across all geometries, plotted against device width.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "extract/bpv.hpp"
#include "util/error.hpp"
#include "extract/fit.hpp"
#include "models/bsim_lite.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_fig2_bpv_consistency",
                     "Fig. 2 - individual vs joint BPV solve across widths");

  const auto& kit = bench::calibratedKit();
  const models::VsParams card = kit.nominal(models::DeviceType::Nmos);

  // Measured variances from the golden kit over the full geometry set.
  extract::GoldenMeterOptions gm;
  gm.samples = bench::scaledSamples(1000, 300);
  const auto geoms = extract::extractionGeometries();
  const auto meas = extract::measureGoldenVariances(
      bench::goldenKit(), models::DeviceType::Nmos, geoms, gm);

  const extract::BpvOptions opt;
  const extract::BpvResult joint = extract::solveBpv(card, meas, opt);

  util::Table table({"width [nm]", "L [nm]", "dVT0 [%]", "dLeff [%]",
                     "dWeff [%]"});
  std::vector<double> widths, dVt0, dLeff, dWeff;
  for (const auto& m : meas) {
    extract::BpvResult single;
    try {
      single = extract::solveBpvIndividual(card, m, opt);
    } catch (const vsstat::Error&) {
      continue;  // under-constrained single geometry: skip, as in practice
    }
    const auto pct = [](double a, double b) {
      return b != 0.0 ? 100.0 * (a / b - 1.0) : 0.0;
    };
    const double dv = pct(single.alphas.aVt0, joint.alphas.aVt0);
    const double dl = pct(single.alphas.aLeff, joint.alphas.aLeff);
    const double dw = pct(single.alphas.aWeff, joint.alphas.aWeff);
    table.addRow({util::formatValue(m.geom.widthNm(), 0),
                  util::formatValue(m.geom.lengthNm(), 0),
                  util::formatValue(dv, 2), util::formatValue(dl, 2),
                  util::formatValue(dw, 2)});
    widths.push_back(m.geom.widthNm());
    dVt0.push_back(dv);
    dLeff.push_back(dl);
    dWeff.push_back(dw);
  }
  table.print(std::cout);

  double worst = 0.0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    worst = std::max({worst, std::fabs(dVt0[i]), std::fabs(dLeff[i]),
                      std::fabs(dWeff[i])});
  }
  std::cout << "\nWorst |individual - joint| difference: "
            << util::formatValue(worst, 2)
            << " %  (paper Fig. 2 reports < 10 %)\n";

  util::writeCsv(bench::outPath("fig2_bpv_consistency.csv"),
                 {"width_nm", "dVt0_pct", "dLeff_pct", "dWeff_pct"},
                 {widths, dVt0, dLeff, dWeff});
  return 0;
}
