// Micro-benchmark of the Newton hot path on the paper's benchmark circuits
// (NAND2 Fo3 and the closed 6T SRAM cell), for DC and transient assembler
// settings.  Two variants of one Newton iteration are timed at a converged
// operating point:
//
//   *_legacy    -- the pre-refactor shape: scatter the Jacobian to a dense
//                  matrix, construct a fresh LuFactorization (heap-allocating
//                  copy + pivot array), allocate the step vector per solve.
//   *_workspace -- the current hot path: assemble into the captured CSR
//                  pattern and reuse the per-assembler NewtonWorkspace
//                  (pattern-reusing SparseLu refactor + preallocated dx).
//
// Output is machine-readable JSON, one object per line on stdout:
//   {"name": "...", "ns_per_iter": ..., "allocs": ...}
// where "allocs" is heap allocations per iteration in steady state (the
// workspace path must report 0).  Future PRs track these in BENCH_*.json.
//
// Usage: bench_newton_hotpath [--quick]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "circuits/benchmarks.hpp"
#include "circuits/provider.hpp"
#include "linalg/lu.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"
#include "spice/analysis.hpp"
#include "spice/assembler.hpp"
#include "spice/elements.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

}  // namespace

// Global allocation hooks: count every heap allocation so the bench can
// verify the steady-state Newton iteration allocates nothing.
void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vsstat {
namespace {

using Clock = std::chrono::steady_clock;

linalg::Vector flatten(const spice::Circuit& circuit,
                       const spice::OperatingPoint& op) {
  linalg::Vector x(circuit.unknownCount(), 0.0);
  const std::size_t numNodes = circuit.nodeCount() - 1;
  for (std::size_t n = 0; n < numNodes; ++n) x[n] = op.nodeVoltages[n + 1];
  for (std::size_t b = 0; b < op.branchCurrents.size(); ++b)
    x[numNodes + b] = op.branchCurrents[b];
  return x;
}

struct IterResult {
  double nsPerIter = 0.0;
  double allocsPerIter = 0.0;
};

/// Times `iters` repetitions of one Newton iteration's linear-algebra work
/// at a fixed iterate (assemble + factor + solve), after a warmup that puts
/// every buffer in steady state.
template <typename IterFn>
IterResult timeIterations(IterFn&& iteration, int iters) {
  for (int i = 0; i < 16; ++i) iteration();  // warmup: reach steady state

  const std::uint64_t allocs0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) iteration();
  const auto t1 = Clock::now();
  const std::uint64_t allocs1 = gAllocCount.load(std::memory_order_relaxed);

  IterResult r;
  r.nsPerIter =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      iters;
  r.allocsPerIter = static_cast<double>(allocs1 - allocs0) / iters;
  return r;
}

void emit(const std::string& name, const IterResult& r) {
  std::printf("{\"name\": \"%s\", \"ns_per_iter\": %.1f, \"allocs\": %.2f}\n",
              name.c_str(), r.nsPerIter, r.allocsPerIter);
}

/// Runs the legacy and workspace iteration variants for one assembler
/// configuration and emits both lines.
void benchConfiguration(const std::string& name,
                        spice::detail::Assembler& assembler,
                        const linalg::Vector& x, int iters) {
  // Legacy shape: dense Jacobian + fresh factorization + fresh vectors.
  {
    linalg::Matrix dense;
    const auto legacy = [&] {
      assembler.assemble(x);
      assembler.scatterJacobian(dense);
      linalg::Vector dx =
          linalg::LuFactorization(dense).solve(assembler.residual());
      (void)dx;
    };
    emit(name + "_legacy", timeIterations(legacy, iters));
  }
  // Workspace shape: CSR assembly + pattern-reusing refactor, zero allocs.
  {
    spice::detail::NewtonWorkspace& ws = assembler.workspace();
    const auto workspace = [&] {
      assembler.assemble(x);
      std::copy(assembler.residual().begin(), assembler.residual().end(),
                ws.dx.begin());
      ws.lu.refactor(assembler.jacobian());
      ws.lu.solveInPlace(ws.dx);
    };
    emit(name + "_workspace", timeIterations(workspace, iters));
  }
}

/// DC + transient benches on one circuit, converged at `op`.
void benchCircuit(const std::string& name, const spice::Circuit& circuit,
                  const spice::OperatingPoint& op, int iters) {
  const linalg::Vector x = flatten(circuit, op);
  spice::detail::Assembler assembler(circuit);

  assembler.setDcMode();
  assembler.setTime(0.0);
  assembler.setSourceScale(1.0);
  assembler.setGmin(1e-12);
  benchConfiguration(name + "_dc", assembler, x, iters);

  // Transient setting: commit the DC charges, then iterate with the
  // trapezoidal companion model at a representative 1 ps step (this also
  // activates the charge-derivative Jacobian stamps).
  assembler.assemble(x);
  assembler.commitCharges();
  std::vector<double> slotCurrents;
  assembler.slotCurrents(slotCurrents);
  assembler.setTime(1e-12);
  assembler.setTrapezoidal(1e-12, slotCurrents);
  benchConfiguration(name + "_tran", assembler, x, iters);
}

int run(int iters) {
  using circuits::NominalProvider;
  using models::VsModel;

  // NAND2 fanout-of-3 (paper Fig. 7 fixture).
  {
    NominalProvider provider(VsModel(models::defaultVsNmos()),
                             VsModel(models::defaultVsPmos()));
    circuits::GateFo3Bench bench = circuits::buildNand2Fo3(
        provider, circuits::CellSizing{}, circuits::StimulusSpec{});
    bench.circuit.voltageSource(bench.inSource).setDcLevel(0.0);
    const spice::OperatingPoint op = spice::dcOperatingPoint(bench.circuit);
    benchCircuit("nand2_fo3", bench.circuit, op, iters);
  }

  // Closed 6T SRAM cell (paper Fig. 9 / Table IV fixture).
  {
    NominalProvider provider(VsModel(models::defaultVsNmos()),
                             VsModel(models::defaultVsPmos()));
    circuits::SramCellBench bench = circuits::buildSramCell(
        provider, 0.9, /*wordlineOn=*/true, circuits::SramSizing{});
    const spice::OperatingPoint op =
        spice::dcOperatingPoint(bench.circuit, bench.stateGuess(true), {});
    benchCircuit("sram6t", bench.circuit, op, iters);
  }
  return 0;
}

}  // namespace
}  // namespace vsstat

int main(int argc, char** argv) {
  int iters = 20000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) iters = 500;
  }
  try {
    return vsstat::run(iters);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_newton_hotpath: %s\n", e.what());
    return 1;
  }
}
