// Fig. 8: setup-time distribution of the master-slave NMOS-pass-transistor
// register (250 MC runs in the paper).  Each sample needs a full bisection
// of transient simulations -- the workload class where the paper argues
// the ultra-compact VS model pays off most.
#include <iostream>

#include "common.hpp"
#include "measure/setup_hold.hpp"
#include "mc/runner.hpp"
#include "stats/descriptive.hpp"
#include "stats/kde.hpp"
#include "stats/normality.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_fig8_dff_setup",
                     "Fig. 8 - D flip-flop setup time PDF (master-slave, "
                     "NMOS-only pass transistors)");

  const int samples = bench::scaledSamples(250, 60);
  std::cout << "MC samples per model: " << samples
            << " (each = full setup bisection of ~10 transients)\n";

  const circuits::CellSizing dffSizing{600.0, 300.0, 40.0};
  util::Table table({"model", "mean [ps]", "sigma [ps]", "min [ps]",
                     "max [ps]", "JB normal?"});

  for (const bool useVs : {false, true}) {
    mc::McOptions opt;
    opt.samples = samples;
    opt.seed = useVs ? 81 : 82;
    const mc::McResult r = mc::runCampaign(
        opt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
          auto provider = bench::makeStatProvider(useVs, rng);
          circuits::DffBench bench =
              circuits::buildDff(*provider, 0.9, dffSizing);
          out[0] = measure::measureSetupTime(bench);
        });
    const auto s = stats::summarize(r.metrics[0]);
    const auto jb = stats::jarqueBera(r.metrics[0]);
    table.addRow({useVs ? "VS" : "golden", util::formatValue(s.mean * 1e12, 2),
                  util::formatValue(s.stddev * 1e12, 2),
                  util::formatValue(s.min * 1e12, 2),
                  util::formatValue(s.max * 1e12, 2),
                  jb.rejectAt5Percent ? "no" : "yes"});

    const auto curve = stats::kde(r.metrics[0], 140);
    util::writeCsv(bench::outPath(std::string("fig8_dff_setup_") +
                                  (useVs ? "vs" : "golden") + ".csv"),
                   {"setup_s", "density"}, {curve.x, curve.density});
    std::cout << "\n" << (useVs ? "VS" : "golden")
              << " setup-time histogram:\n"
              << util::asciiHistogram(r.metrics[0], 16, 40, "setup [s]");
    if (r.failures > 0) {
      std::cout << "(" << r.failures << " samples failed to capture)\n";
    }
  }
  table.print(std::cout);

  std::cout << "\nPaper Fig. 8(c) shape: unimodal setup-time PDF around\n"
               "20-30 ps with both models overlapping.\n";
  return 0;
}
