// Table II: extracted standard-deviation coefficients alpha_1..alpha_5
// from the BPV method, NMOS and PMOS.
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

int main() {
  bench::printHeader("bench_table2_alpha",
                     "Table II - extracted Pelgrom coefficients (BPV)");

  const auto& kit = bench::calibratedKit();
  const auto& n = kit.alphas(models::DeviceType::Nmos);
  const auto& p = kit.alphas(models::DeviceType::Pmos);

  util::Table table({"coefficient", "NMOS", "PMOS", "paper NMOS",
                     "paper PMOS", "unit"});
  table.addRow({"alpha1 (VT0)", util::formatValue(n.aVt0, 2),
                util::formatValue(p.aVt0, 2), "2.3", "2.86", "V nm"});
  table.addRow({"alpha2 (Leff)", util::formatValue(n.aLeff, 2),
                util::formatValue(p.aLeff, 2), "3.71", "3.66", "nm"});
  table.addRow({"alpha3 (Weff)", util::formatValue(n.aWeff, 2),
                util::formatValue(p.aWeff, 2), "3.71", "3.66", "nm"});
  table.addRow({"alpha4 (mu)", util::formatValue(n.aMu, 0),
                util::formatValue(p.aMu, 0), "944", "781",
                "nm cm^2/(V s)"});
  table.addRow({"alpha5 (Cinv)", util::formatValue(n.aCinv, 2),
                util::formatValue(p.aCinv, 2), "0.29", "0.81",
                "nm uF/cm^2"});
  table.print(std::cout);

  std::cout << "\nNotes: alpha2 == alpha3 by the LER tie (paper Sec. III);\n"
               "alpha5 is measured directly from the oxide, not BPV-solved.\n"
               "Absolute values depend on the synthetic golden kit's mismatch\n"
               "truth (see DESIGN.md); the paper-shape checks are the same\n"
               "order of magnitude and NMOS-vs-PMOS ordering.\n\n"
            << kit.summary();

  util::CsvWriter csv(bench::outPath("table2_alpha.csv"),
                      {"coefficient", "nmos", "pmos"});
  csv.writeRow(std::vector<std::string>{"aVt0", util::formatValue(n.aVt0, 4),
                                        util::formatValue(p.aVt0, 4)});
  csv.writeRow(std::vector<std::string>{"aLeff", util::formatValue(n.aLeff, 4),
                                        util::formatValue(p.aLeff, 4)});
  csv.writeRow(std::vector<std::string>{"aWeff", util::formatValue(n.aWeff, 4),
                                        util::formatValue(p.aWeff, 4)});
  csv.writeRow(std::vector<std::string>{"aMu", util::formatValue(n.aMu, 2),
                                        util::formatValue(p.aMu, 2)});
  csv.writeRow(std::vector<std::string>{"aCinv", util::formatValue(n.aCinv, 4),
                                        util::formatValue(p.aCinv, 4)});
  return 0;
}
