#!/usr/bin/env bash
# Measures the pre-refactor Newton hot-path baseline: checks the seed commit
# out into a scratch worktree, compiles newton_seed_baseline.cpp against the
# pristine seed sources, and writes BENCH_newton_hotpath_baseline.json at the
# repo root.  Compare against `bench_newton_hotpath` output from the current
# tree (BENCH_newton_hotpath.json).
#
# Usage: bench/measure_seed_baseline.sh [seed-commit] [--quick]
set -euo pipefail

repo_root="$(git rev-parse --show-toplevel)"
seed_commit="${1:-$(git rev-list --max-parents=0 HEAD | head -1)}"
quick="${2:-}"

worktree="$repo_root/build/seed-baseline"
out_json="$repo_root/BENCH_newton_hotpath_baseline.json"

cleanup() {
  git -C "$repo_root" worktree remove --force "$worktree" 2>/dev/null || true
}
trap cleanup EXIT
cleanup

mkdir -p "$repo_root/build"
git -C "$repo_root" worktree add --detach "$worktree" "$seed_commit"

echo "Building seed baseline at $seed_commit ..." >&2
mapfile -t seed_sources < <(find "$worktree/src" -name '*.cpp' | sort)
g++ -O2 -Wall -std=c++20 -I"$worktree/src" \
    "$repo_root/bench/seed_baseline/newton_seed_baseline.cpp" \
    "${seed_sources[@]}" \
    -o "$worktree/newton_seed_baseline" -lpthread

echo "Running seed baseline ..." >&2
"$worktree/newton_seed_baseline" $quick | tee "$out_json"
echo "Wrote $out_json" >&2
