// Ablation study of the BPV design choices the paper motivates:
//   (a) alpha2 == alpha3 LER tie vs free Leff/Weff,
//   (b) Cinv measured directly vs extracted by BPV (the paper argues BPV
//       overestimates tightly-controlled parameters),
//   (c) MC-measured vs analytic golden variances (extraction noise).
#include <iostream>

#include "common.hpp"
#include "extract/bpv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

void printAlphaRow(util::Table& t, const std::string& label,
                   const models::PelgromAlphas& a, double residual) {
  t.addRow({label, util::formatValue(a.aVt0, 2), util::formatValue(a.aLeff, 2),
            util::formatValue(a.aWeff, 2), util::formatValue(a.aMu, 0),
            a.aCinv >= 0.0 ? util::formatValue(a.aCinv, 2) : "n/a",
            util::formatValue(residual, 3)});
}

}  // namespace

int main() {
  bench::printHeader("bench_ablation_bpv",
                     "Ablation - BPV design choices (Sec. III)");

  const auto& kit = bench::calibratedKit();
  const models::VsParams card = kit.nominal(models::DeviceType::Nmos);

  extract::GoldenMeterOptions gm;
  gm.samples = bench::scaledSamples(1000, 300);
  const auto geoms = extract::extractionGeometries();
  const auto measMc = extract::measureGoldenVariances(
      bench::goldenKit(), models::DeviceType::Nmos, geoms, gm);
  std::vector<extract::GeometryMeasurement> measAnalytic;
  for (const auto& g : geoms) {
    measAnalytic.push_back(extract::analyticGoldenVariance(
        bench::goldenKit(), models::DeviceType::Nmos, g));
  }

  util::Table table({"variant", "a1 VT0", "a2 Leff", "a3 Weff", "a4 mu",
                     "a5 Cinv", "NNLS residual"});

  extract::BpvOptions base;
  base.aCinvDirect = bench::goldenKit().nmosMismatch.aCox;

  {
    const auto r = extract::solveBpv(card, measMc, base);
    printAlphaRow(table, "baseline (tie, Cinv direct, MC meas)", r.alphas,
                  r.residualNorm);
  }
  {
    extract::BpvOptions o = base;
    o.tieLengthWidth = false;
    const auto r = extract::solveBpv(card, measMc, o);
    printAlphaRow(table, "no alpha2==alpha3 tie", r.alphas, r.residualNorm);
  }
  {
    extract::BpvOptions o = base;
    o.solveCinvByBpv = true;
    const auto r = extract::solveBpv(card, measMc, o);
    printAlphaRow(table, "Cinv extracted by BPV", r.alphas, r.residualNorm);
  }
  {
    const auto r = extract::solveBpv(card, measAnalytic, base);
    printAlphaRow(table, "noise-free (analytic) variances", r.alphas,
                  r.residualNorm);
  }
  table.print(std::cout);

  std::cout
      << "\nReadings:\n"
         "* Untying alpha2/alpha3 adds a degree of freedom the data cannot\n"
         "  constrain well -> the two split apart without improving the fit\n"
         "  much (the paper's measured split was only 1-5%).\n"
         "* Extracting Cinv by BPV inflates alpha5 well above the directly\n"
         "  measured value (golden truth "
      << util::formatValue(bench::goldenKit().nmosMismatch.aCox, 2)
      << " nm uF/cm^2), reproducing the paper's warning that BPV\n"
         "  overestimates tightly-controlled parameters.\n"
         "* MC-vs-analytic variance deltas show the extraction noise floor\n"
         "  at ~1000 samples/geometry.\n";
  return 0;
}
