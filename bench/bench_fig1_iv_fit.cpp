// Fig. 1: VS model fitting for NMOS (and PMOS) against the golden 40-nm
// kit at W/L = 300/40 nm -- Id-Vg (log) and Id-Vd (linear) characteristics.
#include <iostream>

#include "common.hpp"
#include "extract/fit.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace vsstat;

namespace {

void fitOne(models::DeviceType type) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::BsimLite golden(isN ? bench::goldenKit().nmos
                                    : bench::goldenKit().pmos);
  const models::VsParams seed =
      isN ? models::defaultVsNmos() : models::defaultVsPmos();
  const models::DeviceGeometry geom = models::geometryNm(300, 40);

  const extract::IvFitResult fit = extract::fitVsToGolden(seed, golden, geom);
  const models::VsModel vs(fit.card);

  std::cout << "\n--- " << models::toString(type) << " fit (W/L = 300/40 nm) ---\n";
  util::Table summary({"metric", "value"});
  summary.addRow({"RMS log-space error, Id-Vg", util::formatValue(fit.rmsLogIdVg, 4)});
  summary.addRow({"RMS relative error, Id-Vd", util::formatValue(fit.rmsRelIdVd, 4)});
  summary.addRow({"Cgg relative error", util::formatValue(fit.relCggError, 4)});
  summary.addRow({"LM iterations", std::to_string(fit.iterations)});
  summary.addRow({"converged", fit.converged ? "yes" : "no"});
  summary.addRow({"fitted VT0 [V]", util::formatValue(fit.card.vt0, 4)});
  summary.addRow({"fitted vxo [1e7 cm/s]", util::formatValue(fit.card.vxo / 1e5, 3)});
  summary.addRow({"fitted mu [cm^2/Vs]", util::formatValue(fit.card.mu * 1e4, 1)});
  summary.addRow({"fitted n0", util::formatValue(fit.card.n0, 3)});
  summary.addRow({"fitted beta", util::formatValue(fit.card.beta, 3)});
  summary.print(std::cout);

  // Id-Vg series (vds = 0.05 and 0.9 V), Id-Vd series (vgs = 0.5/0.7/0.9).
  const std::string tag = isN ? "nmos" : "pmos";
  std::vector<double> vg, idVsLin, idGoldLin, idVsSat, idGoldSat;
  for (double v = 0.0; v <= 0.9 + 1e-9; v += 0.025) {
    vg.push_back(v);
    idVsLin.push_back(vs.drainCurrent(geom, v, 0.05));
    idGoldLin.push_back(golden.drainCurrent(geom, v, 0.05));
    idVsSat.push_back(vs.drainCurrent(geom, v, 0.9));
    idGoldSat.push_back(golden.drainCurrent(geom, v, 0.9));
  }
  util::writeCsv(bench::outPath("fig1_idvg_" + tag + ".csv"),
                 {"vgs", "id_vs_lin", "id_golden_lin", "id_vs_sat",
                  "id_golden_sat"},
                 {vg, idVsLin, idGoldLin, idVsSat, idGoldSat});

  std::vector<double> vd, id05, id05g, id07, id07g, id09, id09g;
  for (double v = 0.0; v <= 0.9 + 1e-9; v += 0.025) {
    vd.push_back(v);
    id05.push_back(vs.drainCurrent(geom, 0.5, v));
    id05g.push_back(golden.drainCurrent(geom, 0.5, v));
    id07.push_back(vs.drainCurrent(geom, 0.7, v));
    id07g.push_back(golden.drainCurrent(geom, 0.7, v));
    id09.push_back(vs.drainCurrent(geom, 0.9, v));
    id09g.push_back(golden.drainCurrent(geom, 0.9, v));
  }
  util::writeCsv(bench::outPath("fig1_idvd_" + tag + ".csv"),
                 {"vds", "vs_vg0.5", "golden_vg0.5", "vs_vg0.7",
                  "golden_vg0.7", "vs_vg0.9", "golden_vg0.9"},
                 {vd, id05, id05g, id07, id07g, id09, id09g});

  // ASCII view of the output characteristics (VS = '*', golden = 'o').
  util::Series sVs{vd, id09, '*'};
  util::Series sGold{vd, id09g, 'o'};
  std::cout << "Id-Vd at Vgs=0.9 V (VS '*', golden 'o'):\n"
            << util::asciiScatter({sVs, sGold}, 64, 16, "Vds [V]", "Id [A]");
}

}  // namespace

int main() {
  bench::printHeader("bench_fig1_iv_fit",
                     "Fig. 1 - VS model fitted to the 40-nm golden kit");
  fitOne(models::DeviceType::Nmos);
  fitOne(models::DeviceType::Pmos);
  std::cout << "\nCSV series written under out/fig1_*.csv\n";
  return 0;
}
