// Device-bank benchmark: scalar per-element MOSFET evaluation vs the
// struct-of-arrays banked path (spice/device_bank.hpp) vs the banked path
// in NumericsMode::fast (SIMD transcendental kernels), at two levels:
//
//   micro    -- raw Newton-load evaluation of a 6-lane VS bank (the 6T SRAM
//               device population): per-device virtual evaluateLoad vs one
//               evaluateLoadBatch with per-lane cached derived parameters,
//               in both numerics modes;
//   campaign -- the paper's two statistical inner loops (SRAM SNM DC
//               sweeps, INV FO3 transient delay) through scalar-session,
//               reference-banked-session, and fast-banked-session Monte
//               Carlo campaigns, identical seeds.
//
// Reference rows verify bit-identity between the compared paths in-run;
// fast rows verify the tolerance contract instead (max relative metric
// deviation from the reference run, reported as "max_rel_delta" and
// asserted under "within_tolerance").  "allocs" counts heap allocations
// per sample/evaluation in steady state.  A fourth campaign row composes
// the two session-mode axes -- NumericsMode::fast + SolverMode::reusePivot
// -- with "speedup_vs_fresh" against the fast/fresh run and the same
// tolerance accounting (the reference-numerics reuse rows live in
// bench_campaign).
//
// Output is machine-readable JSON, one object per line on stdout;
// BENCH_device_bank.json records a reference run and CI gates regressions
// against it (scripts/check_bench_regression.py).
//
// Usage: bench_device_bank [--quick]
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "common.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

}  // namespace

// Global allocation hooks (same scheme as bench_campaign): count every heap
// allocation so allocs/sample is exact.
void* operator new(std::size_t size) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vsstat {
namespace {

using Clock = std::chrono::steady_clock;

// --- micro: 6-lane VS bank ---------------------------------------------------

void benchMicro(int sweeps) {
  // Six mismatched VS instances in SRAM-like geometries: the device
  // population one banked SNM assembly evaluates.
  std::vector<std::unique_ptr<models::VsModel>> cards;
  std::vector<models::DeviceGeometry> geoms;
  for (int i = 0; i < 6; ++i) {
    models::VsParams p =
        (i % 2 == 0) ? models::defaultVsNmos() : models::defaultVsPmos();
    p.vt0 += 0.004 * i;
    p.mu *= 1.0 + 0.02 * i;
    cards.push_back(std::make_unique<models::VsModel>(p));
    geoms.push_back(models::geometryNm(150.0 + 50.0 * i, 40));
  }
  std::vector<models::BankLane> lanes;
  for (std::size_t i = 0; i < cards.size(); ++i)
    lanes.push_back(models::BankLane{cards[i].get(), &geoms[i]});
  const models::MosfetModel& frontCard = *cards.front();
  const auto bank = frontCard.makeLoadBank(lanes);
  const auto fastBank =
      frontCard.makeLoadBank(lanes, models::NumericsMode::fast);

  const std::size_t n = cards.size();
  std::vector<double> vgs(n), vds(n);
  std::vector<models::MosfetLoadEvaluation> scalarOut(n), batchOut(n),
      fastOut(n);
  constexpr double kStep = 1e-3;

  const auto biasAt = [&](int s) {
    for (std::size_t i = 0; i < n; ++i) {
      vgs[i] = 0.05 + 0.85 * ((s + static_cast<int>(i) * 7) % 97) / 96.0;
      vds[i] = 0.9 * ((s + static_cast<int>(i) * 13) % 89) / 88.0;
    }
  };

  double checksum = 0.0;
  bool identical = true;
  double fastMaxRel = 0.0;

  // Warmup + bit-identity (reference bank) and tolerance (fast bank)
  // accounting over the full sweep.
  for (int s = 0; s < 200; ++s) {
    biasAt(s);
    for (std::size_t i = 0; i < n; ++i)
      scalarOut[i] = cards[i]->evaluateLoad(geoms[i], vgs[i], vds[i], kStep);
    bank->evaluateLoadBatch(vgs, vds, kStep, batchOut);
    fastBank->evaluateLoadBatch(vgs, vds, kStep, fastOut);
    for (std::size_t i = 0; i < n; ++i) {
      identical = identical && scalarOut[i].at.id == batchOut[i].at.id &&
                  scalarOut[i].didVgs == batchOut[i].didVgs &&
                  scalarOut[i].dqgVds == batchOut[i].dqgVds &&
                  scalarOut[i].dqsVgs == batchOut[i].dqsVgs;
      fastMaxRel = std::max(
          fastMaxRel, std::fabs(fastOut[i].at.id - scalarOut[i].at.id) /
                          (std::fabs(scalarOut[i].at.id) + 1e-15));
    }
  }

  const std::uint64_t a0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  for (int s = 0; s < sweeps; ++s) {
    biasAt(s);
    for (std::size_t i = 0; i < n; ++i) {
      scalarOut[i] = cards[i]->evaluateLoad(geoms[i], vgs[i], vds[i], kStep);
      checksum += scalarOut[i].at.id;
    }
  }
  const auto t1 = Clock::now();
  for (int s = 0; s < sweeps; ++s) {
    biasAt(s);
    bank->evaluateLoadBatch(vgs, vds, kStep, batchOut);
    for (std::size_t i = 0; i < n; ++i) checksum += batchOut[i].at.id;
  }
  const auto t2 = Clock::now();
  const std::uint64_t a1 = gAllocCount.load(std::memory_order_relaxed);
  for (int s = 0; s < sweeps; ++s) {
    biasAt(s);
    fastBank->evaluateLoadBatch(vgs, vds, kStep, fastOut);
    for (std::size_t i = 0; i < n; ++i) checksum += fastOut[i].at.id;
  }
  const auto t3 = Clock::now();
  const std::uint64_t a2 = gAllocCount.load(std::memory_order_relaxed);

  const double evals = static_cast<double>(sweeps) * static_cast<double>(n);
  const double nsScalar =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
      evals;
  const double nsBatch =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1).count() /
      evals;
  const double nsFast =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t3 - t2).count() /
      evals;
  std::printf("{\"name\": \"micro_vs_load_scalar\", \"lanes\": 6, "
              "\"ns_per_device_eval\": %.1f}\n",
              nsScalar);
  std::printf("{\"name\": \"micro_vs_load_banked\", \"lanes\": 6, "
              "\"ns_per_device_eval\": %.1f, \"speedup_vs_scalar\": %.2f, "
              "\"allocs\": %.2f, \"bit_identical\": %s}\n",
              nsBatch, nsScalar / nsBatch,
              static_cast<double>(a1 - a0) / (2.0 * evals),
              identical ? "true" : "false");
  std::printf("{\"name\": \"micro_vs_load_fast\", \"lanes\": 6, "
              "\"ns_per_device_eval\": %.1f, \"speedup_vs_scalar\": %.2f, "
              "\"speedup_vs_banked\": %.2f, \"allocs\": %.2f, "
              "\"max_rel_delta\": %.2e, \"within_tolerance\": %s}\n",
              nsFast, nsScalar / nsFast, nsBatch / nsFast,
              static_cast<double>(a2 - a1) / evals, fastMaxRel,
              fastMaxRel <= 1e-9 ? "true" : "false");
  if (checksum == 12345.0) std::printf("# impossible\n");  // defeat DCE
}

// --- campaigns: scalar vs banked sessions -----------------------------------

models::PelgromAlphas benchAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider(stats::Rng rng) {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), benchAlphas(),
      benchAlphas(), rng);
}

struct CampaignTiming {
  mc::McResult result;
  double usPerSample = 0.0;
  double allocsPerSample = 0.0;
};

/// allocs_per_sample is MARGINAL: the fixed campaign-construction cost
/// (sessions, pattern capture, bank SoA state) is measured on a small
/// reference campaign and differenced out, leaving the steady-state
/// allocation cost of one more sample -- zero, per the engine contract.
constexpr int kWarmSamples = 4;

CampaignTiming timeCampaign(int samples,
                            const std::function<mc::McResult(int)>& run) {
  (void)run(kWarmSamples);  // warmup: sessions, thread pool, thread_locals
  const std::uint64_t base0 = gAllocCount.load(std::memory_order_relaxed);
  (void)run(kWarmSamples);  // fixed campaign cost + kWarmSamples marginals
  const std::uint64_t base1 = gAllocCount.load(std::memory_order_relaxed);

  const std::uint64_t allocs0 = gAllocCount.load(std::memory_order_relaxed);
  const auto t0 = Clock::now();
  CampaignTiming t;
  t.result = run(samples);
  const auto t1 = Clock::now();
  const std::uint64_t allocs1 = gAllocCount.load(std::memory_order_relaxed);

  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count());
  t.usPerSample = us / samples;
  t.allocsPerSample =
      (static_cast<double>(allocs1 - allocs0) -
       static_cast<double>(base1 - base0)) /
      static_cast<double>(samples - kWarmSamples);
  return t;
}

bool bitIdentical(const mc::McResult& a, const mc::McResult& b) {
  if (a.failures != b.failures || a.metrics.size() != b.metrics.size())
    return false;
  for (std::size_t m = 0; m < a.metrics.size(); ++m)
    if (a.metrics[m] != b.metrics[m]) return false;
  return true;
}

constexpr int kSnmPoints = 45;
constexpr std::uint64_t kSeed = 901;

mc::McOptions options(int samples) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = kSeed;
  opt.threads = 1;  // per-sample cost comparison, not parallel throughput
  return opt;
}

mc::McResult snmCampaign(int n, spice::SessionOptions sessionOptions) {
  return mc::runCampaign<circuits::SramButterflyBench>(
      options(n), 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, 0.9,
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t,
         sim::CampaignSession<circuits::SramButterflyBench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
                .cellSnm();
      },
      sessionOptions);
}

mc::McResult invCampaign(int n, spice::SessionOptions sessionOptions) {
  return mc::runCampaign<circuits::GateFo3Bench>(
      options(n), 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildInvFo3(provider, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, sim::CampaignSession<circuits::GateFo3Bench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureGateDelays(session.fixture(), session.spice())
                .average();
      },
      sessionOptions);
}

void benchWorkload(
    const std::string& name, int samples,
    const std::function<mc::McResult(int, spice::SessionOptions)>& campaign) {
  spice::SessionOptions scalarOpt;
  scalarOpt.useDeviceBank = false;
  spice::SessionOptions bankedOpt;
  spice::SessionOptions fastOpt;
  fastOpt.numerics = models::NumericsMode::fast;
  spice::SessionOptions fastReuseOpt = fastOpt;
  fastReuseOpt.solver = linalg::SolverMode::reusePivot;

  const CampaignTiming scalar =
      timeCampaign(samples, [&](int n) { return campaign(n, scalarOpt); });
  const CampaignTiming banked =
      timeCampaign(samples, [&](int n) { return campaign(n, bankedOpt); });
  const CampaignTiming fast =
      timeCampaign(samples, [&](int n) { return campaign(n, fastOpt); });
  const CampaignTiming fastReuse =
      timeCampaign(samples, [&](int n) { return campaign(n, fastReuseOpt); });
  const bool identical = bitIdentical(scalar.result, banked.result);
  const double fastDelta = bench::maxRelMetricDelta(fast.result, banked.result);
  // The composed modes' tolerance is accounted against the fast/fresh run:
  // that isolates what SolverMode::reusePivot adds on top of the already-
  // tolerance-checked fast numerics.
  const double fastReuseDelta =
      bench::maxRelMetricDelta(fastReuse.result, fast.result);
  std::printf("{\"name\": \"%s_scalar_session\", \"samples\": %d, "
              "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
              "\"allocs_per_sample\": %.1f}\n",
              name.c_str(), samples, scalar.usPerSample,
              1e6 / scalar.usPerSample, scalar.allocsPerSample);
  std::printf("{\"name\": \"%s_banked_session\", \"samples\": %d, "
              "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
              "\"allocs_per_sample\": %.1f, \"speedup_vs_scalar\": %.2f, "
              "\"bit_identical\": %s}\n",
              name.c_str(), samples, banked.usPerSample,
              1e6 / banked.usPerSample, banked.allocsPerSample,
              scalar.usPerSample / banked.usPerSample,
              identical ? "true" : "false");
  std::printf("{\"name\": \"%s_fast_session\", \"samples\": %d, "
              "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
              "\"allocs_per_sample\": %.1f, \"speedup_vs_scalar\": %.2f, "
              "\"speedup_vs_banked\": %.2f, \"max_rel_delta\": %.2e, "
              "\"within_tolerance\": %s}\n",
              name.c_str(), samples, fast.usPerSample, 1e6 / fast.usPerSample,
              fast.allocsPerSample, scalar.usPerSample / fast.usPerSample,
              banked.usPerSample / fast.usPerSample, fastDelta,
              // Same per-sample bound the campaign tolerance tests assert
              // (tests/sim/test_fast_campaign.cpp); measured ~1e-14.
              fastDelta <= 1e-8 ? "true" : "false");
  std::printf("{\"name\": \"%s_fast_reuse_session\", \"samples\": %d, "
              "\"us_per_sample\": %.1f, \"samples_per_sec\": %.1f, "
              "\"allocs_per_sample\": %.1f, \"speedup_vs_fresh\": %.2f, "
              "\"speedup_vs_banked\": %.2f, \"max_rel_delta\": %.2e, "
              "\"within_tolerance\": %s}\n",
              name.c_str(), samples, fastReuse.usPerSample,
              1e6 / fastReuse.usPerSample, fastReuse.allocsPerSample,
              fast.usPerSample / fastReuse.usPerSample,
              banked.usPerSample / fastReuse.usPerSample, fastReuseDelta,
              // tests/sim/test_reuse_pivot_campaign.cpp asserts the same
              // 1e-8 per-sample bound for the composed modes.
              fastReuseDelta <= 1e-8 ? "true" : "false");
}

int run(int micro, int snmSamples, int invSamples) {
  benchMicro(micro);
  benchWorkload("sram_snm", snmSamples, [](int n, spice::SessionOptions o) {
    return snmCampaign(n, o);
  });
  benchWorkload("inv_fo3", invSamples, [](int n, spice::SessionOptions o) {
    return invCampaign(n, o);
  });
  return 0;
}

}  // namespace
}  // namespace vsstat

int main(int argc, char** argv) {
  int micro = 200000;
  int snmSamples = 160;
  int invSamples = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      micro = 20000;
      snmSamples = 32;
      invSamples = 12;
    }
  }
  try {
    return vsstat::run(micro, snmSamples, invSamples);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_device_bank: %s\n", e.what());
    return 1;
  }
}
