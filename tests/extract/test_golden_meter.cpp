#include "extract/golden_meter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/geometry.hpp"
#include "util/error.hpp"

namespace vsstat::extract {
namespace {

using models::DeviceType;
using models::geometryNm;

TEST(GoldenKit, DefaultIsFortyNmClass) {
  const GoldenKit kit = GoldenKit::default40nm();
  EXPECT_EQ(kit.nmos.type, DeviceType::Nmos);
  EXPECT_EQ(kit.pmos.type, DeviceType::Pmos);
  EXPECT_DOUBLE_EQ(kit.vdd, 0.9);
  EXPECT_GT(kit.nmosMismatch.aVth, 0.0);
}

TEST(GoldenMeter, McVarianceMatchesAnalyticWithinNoise) {
  const GoldenKit kit = GoldenKit::default40nm();
  const auto geom = geometryNm(600, 40);
  GoldenMeterOptions opt;
  opt.samples = 4000;
  const GeometryMeasurement mc =
      measureGoldenVariance(kit, DeviceType::Nmos, geom, opt);
  const GeometryMeasurement an =
      analyticGoldenVariance(kit, DeviceType::Nmos, geom);
  // MC sigma of variance ~ var * sqrt(2/n) ~ 2%; allow 12%.
  EXPECT_NEAR(mc.varIdsat, an.varIdsat, 0.12 * an.varIdsat);
  EXPECT_NEAR(mc.varLog10Ioff, an.varLog10Ioff, 0.12 * an.varLog10Ioff);
  EXPECT_NEAR(mc.varCgg, an.varCgg, 0.12 * an.varCgg);
}

TEST(GoldenMeter, VarianceShrinksWithArea) {
  const GoldenKit kit = GoldenKit::default40nm();
  const auto small = analyticGoldenVariance(kit, DeviceType::Nmos,
                                            geometryNm(300, 40));
  const auto large = analyticGoldenVariance(kit, DeviceType::Nmos,
                                            geometryNm(1200, 40));
  EXPECT_GT(small.varLog10Ioff, 2.0 * large.varLog10Ioff);
}

TEST(GoldenMeter, DeterministicForFixedSeed) {
  const GoldenKit kit = GoldenKit::default40nm();
  GoldenMeterOptions opt;
  opt.samples = 200;
  opt.seed = 77;
  const auto a =
      measureGoldenVariance(kit, DeviceType::Pmos, geometryNm(600, 40), opt);
  const auto b =
      measureGoldenVariance(kit, DeviceType::Pmos, geometryNm(600, 40), opt);
  EXPECT_DOUBLE_EQ(a.varIdsat, b.varIdsat);
  EXPECT_DOUBLE_EQ(a.varLog10Ioff, b.varLog10Ioff);
}

TEST(GoldenMeter, GeometrySetSweepsDecorrelatedSeeds) {
  const GoldenKit kit = GoldenKit::default40nm();
  GoldenMeterOptions opt;
  opt.samples = 100;
  const auto set = measureGoldenVariances(
      kit, DeviceType::Nmos, {geometryNm(300, 40), geometryNm(600, 40)}, opt);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_GT(set[0].varIdsat / (set[0].geom.widthNm()),
            0.0);  // sanity: populated
}

TEST(GoldenMeter, RejectsTinySampleCount) {
  const GoldenKit kit = GoldenKit::default40nm();
  GoldenMeterOptions opt;
  opt.samples = 4;
  EXPECT_THROW(
      (void)measureGoldenVariance(kit, DeviceType::Nmos, geometryNm(600, 40), opt),
      InvalidArgumentError);
}

TEST(ExtractionGeometries, CoversPaperWidthSweepAndLongerL) {
  const auto geoms = extractionGeometries();
  EXPECT_GE(geoms.size(), 6u);
  bool hasWide = false, hasNarrow = false, hasLongL = false;
  for (const auto& g : geoms) {
    if (g.widthNm() >= 1400.0) hasWide = true;
    if (g.widthNm() <= 150.0) hasNarrow = true;
    if (g.lengthNm() > 50.0) hasLongL = true;
  }
  EXPECT_TRUE(hasWide);
  EXPECT_TRUE(hasNarrow);
  EXPECT_TRUE(hasLongL);
}

}  // namespace
}  // namespace vsstat::extract
