// Second-order / correlated BPV (full paper Eq. 8): Hessian quality,
// Gaussian moment propagation against Monte Carlo, and recovery of the
// Pelgrom coefficients when the parameters are genuinely correlated.
#include <gtest/gtest.h>

#include <cmath>

#include "extract/bpv2.hpp"
#include "measure/device_metrics.hpp"
#include "models/vs_model.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::extract {
namespace {

using models::DeviceGeometry;
using models::geometryNm;
using models::PelgromAlphas;
using models::VsParams;

constexpr double kVdd = 0.9;

VsParams card() { return models::defaultVsNmos(); }

PelgromAlphas paperAlphas() {
  PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.71;
  a.aWeff = 3.71;
  a.aMu = 944.0;
  a.aCinv = 0.30;
  return a;
}

/// First-order correlated variance g' S g per target, used to synthesize
/// consistent "measurements" for the round-trip tests.
std::array<double, kTargetCount> firstOrderVariances(
    const VsParams& c, const DeviceGeometry& geom, const PelgromAlphas& a,
    const linalg::Matrix& r) {
  const linalg::Matrix sens = targetSensitivities(c, geom, kVdd);
  const models::ParameterSigmas s = models::sigmasFor(a, geom);
  const std::array<double, kParameterCount> sigma = {s.sVt0, s.sLeff, s.sWeff,
                                                     s.sMu, s.sCinv};
  std::array<double, kTargetCount> var{};
  for (std::size_t i = 0; i < kTargetCount; ++i) {
    for (std::size_t j = 0; j < kParameterCount; ++j)
      for (std::size_t k = 0; k < kParameterCount; ++k)
        var[i] += sens(i, j) * r(j, k) * sigma[j] * sigma[k] * sens(i, k);
  }
  return var;
}

linalg::Matrix vt0MuCorrelation(double r) {
  linalg::Matrix m = independentCorrelation();
  const auto vt0 = static_cast<std::size_t>(Parameter::Vt0);
  const auto mu = static_cast<std::size_t>(Parameter::Mu);
  m(vt0, mu) = r;
  m(mu, vt0) = r;
  return m;
}

TEST(CorrelationValidation, AcceptsIdentityRejectsMalformed) {
  EXPECT_NO_THROW(validateCorrelation(independentCorrelation()));
  EXPECT_NO_THROW(validateCorrelation(vt0MuCorrelation(0.7)));

  linalg::Matrix wrongSize(3, 3, 0.0);
  EXPECT_THROW(validateCorrelation(wrongSize), InvalidArgumentError);

  linalg::Matrix badDiag = independentCorrelation();
  badDiag(1, 1) = 0.9;
  EXPECT_THROW(validateCorrelation(badDiag), InvalidArgumentError);

  linalg::Matrix asym = independentCorrelation();
  asym(0, 1) = 0.5;  // no mirror
  EXPECT_THROW(validateCorrelation(asym), InvalidArgumentError);

  linalg::Matrix outOfRange = vt0MuCorrelation(1.5);
  EXPECT_THROW(validateCorrelation(outOfRange), InvalidArgumentError);
}

TEST(TargetHessians, AreSymmetricWithFiniteEntries) {
  const auto h = targetHessians(card(), geometryNm(600, 40), kVdd);
  for (const auto& m : h) {
    ASSERT_EQ(m.rows(), kParameterCount);
    for (std::size_t j = 0; j < kParameterCount; ++j) {
      for (std::size_t k = 0; k < kParameterCount; ++k) {
        EXPECT_TRUE(std::isfinite(m(j, k)));
        EXPECT_DOUBLE_EQ(m(j, k), m(k, j));
      }
    }
  }
}

TEST(TargetHessians, SecondOrderTaylorBeatsFirstOrder) {
  // At a deliberately large (several-sigma) VT0+mu excursion, adding the
  // Hessian term must shrink the Idsat prediction error.
  const VsParams c = card();
  const DeviceGeometry geom = geometryNm(600, 40);
  const linalg::Matrix g = targetSensitivities(c, geom, kVdd);
  const auto h = targetHessians(c, geom, kVdd);

  models::VariationDelta delta{};
  delta.dVt0 = 0.03;          // 30 mV
  delta.dMu = -0.06 * c.mu;   // -6% mobility
  const linalg::Vector d = {delta.dVt0, 0.0, 0.0, delta.dMu, 0.0};

  const models::VsModel nominal(c);
  const double e0 = measure::measureTargets(nominal, geom, kVdd).idsat;
  const models::VsModel varied(models::applyToVs(c, delta));
  const double eTrue = measure::measureTargets(varied, geom, kVdd).idsat;

  double linear = e0;
  double quadratic = e0;
  for (std::size_t j = 0; j < kParameterCount; ++j) {
    linear += g(0, j) * d[j];
    quadratic += g(0, j) * d[j];
    for (std::size_t k = 0; k < kParameterCount; ++k)
      quadratic += 0.5 * h[0](j, k) * d[j] * d[k];
  }
  EXPECT_LT(std::fabs(quadratic - eTrue), std::fabs(linear - eTrue));
}

TEST(SecondOrderPropagation, FirstOrderPartMatchesLegacyWhenIndependent) {
  const DeviceGeometry geom = geometryNm(600, 40);
  const auto second = propagateVarianceSecondOrder(
      card(), geom, paperAlphas(), independentCorrelation(), kVdd);
  const VarianceBreakdown legacy =
      propagateVariance(card(), geom, paperAlphas(), kVdd);
  for (std::size_t i = 0; i < kTargetCount; ++i) {
    EXPECT_NEAR(second[i].firstOrder, legacy.totalFor(i),
                1e-9 * legacy.totalFor(i) + 1e-30)
        << "target " << i;
  }
}

TEST(SecondOrderPropagation, SecondOrderTermIsSmallAtPaperSigmas) {
  // The paper's claim: the linear approximation is "sufficiently accurate"
  // at realistic mismatch magnitudes.  Quantify it: the second-order
  // variance term stays below ~10% of the first-order one for Idsat.
  const DeviceGeometry geom = geometryNm(600, 40);
  const auto v = propagateVarianceSecondOrder(
      card(), geom, paperAlphas(), independentCorrelation(), kVdd);
  const auto idsat = static_cast<std::size_t>(Target::Idsat);
  EXPECT_GT(v[idsat].firstOrder, 0.0);
  EXPECT_LT(v[idsat].secondOrder, 0.10 * v[idsat].firstOrder);
}

TEST(SecondOrderPropagation, MatchesMonteCarloUnderCorrelation) {
  // Correlated VT0/mu draws, Idsat variance: moment propagation must land
  // on the Monte Carlo estimate.
  const VsParams c = card();
  const DeviceGeometry geom = geometryNm(600, 40);
  constexpr double kRho = 0.5;

  PelgromAlphas onlyVtMu;
  onlyVtMu.aVt0 = paperAlphas().aVt0;
  onlyVtMu.aMu = paperAlphas().aMu;
  const models::ParameterSigmas s = models::sigmasFor(onlyVtMu, geom);

  const auto predicted = propagateVarianceSecondOrder(
      c, geom, onlyVtMu, vt0MuCorrelation(kRho), kVdd);

  stats::Rng rng(20250611);
  const int n = 20000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z1 = rng.normal();
    const double z2 = rng.normal();
    models::VariationDelta d{};
    d.dVt0 = s.sVt0 * z1;
    d.dMu = s.sMu * (kRho * z1 + std::sqrt(1.0 - kRho * kRho) * z2);
    const models::VsModel m(models::applyToVs(c, d));
    const double idsat = m.drainCurrent(geom, kVdd, kVdd);
    sum += idsat;
    sumSq += idsat * idsat;
  }
  const double mean = sum / n;
  const double mcVar = sumSq / n - mean * mean;

  const auto idsat = static_cast<std::size_t>(Target::Idsat);
  EXPECT_NEAR(predicted[idsat].total() / mcVar, 1.0, 0.06);
}

std::vector<GeometryMeasurement> synthesize(const PelgromAlphas& truth,
                                            const linalg::Matrix& r) {
  std::vector<GeometryMeasurement> meas;
  for (const auto& wl : {std::pair{1500.0, 40.0}, {600.0, 40.0},
                         {300.0, 40.0}, {120.0, 40.0}}) {
    GeometryMeasurement m;
    m.geom = geometryNm(wl.first, wl.second);
    const auto var = firstOrderVariances(card(), m.geom, truth, r);
    m.varIdsat = var[0];
    m.varLog10Ioff = var[1];
    m.varCgg = var[2];
    meas.push_back(m);
  }
  return meas;
}

TEST(CorrelatedBpv, ReducesToIndependentSolveWithIdentity) {
  const auto meas = synthesize(paperAlphas(), independentCorrelation());
  const BpvResult indep = solveBpv(card(), meas);
  const CorrelatedBpvResult corr =
      solveBpvCorrelated(card(), meas, independentCorrelation());
  EXPECT_TRUE(corr.converged);
  EXPECT_LE(corr.outerIterations, 2);
  EXPECT_NEAR(corr.alphas.aVt0, indep.alphas.aVt0, 1e-9);
  EXPECT_NEAR(corr.alphas.aLeff, indep.alphas.aLeff, 1e-9);
  EXPECT_NEAR(corr.alphas.aMu, indep.alphas.aMu, 1e-6);
}

TEST(CorrelatedBpv, RecoversTruthUnderCorrelation) {
  // Ground truth has rho(VT0, mu) = 0.4.  The independence-assuming solve
  // absorbs the cross term into biased alphas; the correlated solve must
  // recover the truth closely.
  const PelgromAlphas truth = paperAlphas();
  const linalg::Matrix r = vt0MuCorrelation(0.4);
  const auto meas = synthesize(truth, r);

  const CorrelatedBpvResult corr = solveBpvCorrelated(card(), meas, r);
  EXPECT_TRUE(corr.converged);
  EXPECT_NEAR(corr.alphas.aVt0 / truth.aVt0, 1.0, 0.05);
  EXPECT_NEAR(corr.alphas.aMu / truth.aMu, 1.0, 0.08);
  EXPECT_NEAR(corr.alphas.aLeff / truth.aLeff, 1.0, 0.08);

  const BpvResult indep = solveBpv(card(), meas);
  const double corrErr = std::fabs(corr.alphas.aMu / truth.aMu - 1.0);
  const double indepErr = std::fabs(indep.alphas.aMu / truth.aMu - 1.0);
  EXPECT_LT(corrErr, indepErr);
}

TEST(CorrelatedBpv, RejectsEmptyMeasurements) {
  EXPECT_THROW((void)solveBpvCorrelated(card(), {}, independentCorrelation()),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::extract
