#include "extract/sensitivity.hpp"

#include <gtest/gtest.h>

#include "models/vs_params.hpp"

namespace vsstat::extract {
namespace {

using models::geometryNm;

class SensitivityTest : public ::testing::Test {
 protected:
  models::VsParams card_ = models::defaultVsNmos();
  models::DeviceGeometry geom_ = geometryNm(600, 40);
  linalg::Matrix s_ = targetSensitivities(card_, geom_, 0.9);

  double at(Target t, Parameter p) const {
    return s_(static_cast<std::size_t>(t), static_cast<std::size_t>(p));
  }
};

TEST_F(SensitivityTest, ShapeIsTargetsByParameters) {
  EXPECT_EQ(s_.rows(), kTargetCount);
  EXPECT_EQ(s_.cols(), kParameterCount);
}

TEST_F(SensitivityTest, SignsMatchDevicePhysics) {
  // Higher VT0 -> less drive, exponentially less leakage.
  EXPECT_LT(at(Target::Idsat, Parameter::Vt0), 0.0);
  EXPECT_LT(at(Target::Log10Ioff, Parameter::Vt0), 0.0);
  // Wider device -> more of everything.
  EXPECT_GT(at(Target::Idsat, Parameter::Weff), 0.0);
  EXPECT_GT(at(Target::Cgg, Parameter::Weff), 0.0);
  // Longer channel -> less DIBL -> less leakage; more gate area -> more Cgg.
  EXPECT_LT(at(Target::Log10Ioff, Parameter::Leff), 0.0);
  EXPECT_GT(at(Target::Cgg, Parameter::Leff), 0.0);
  // More mobility -> more drive (incl. Eq. 5 vxo pull).
  EXPECT_GT(at(Target::Idsat, Parameter::Mu), 0.0);
  // More Cinv -> more charge and capacitance.
  EXPECT_GT(at(Target::Idsat, Parameter::Cinv), 0.0);
  EXPECT_GT(at(Target::Cgg, Parameter::Cinv), 0.0);
}

TEST_F(SensitivityTest, Log10IoffVt0SlopeMatchesSubthresholdTheory) {
  // d(log10 Ioff)/d(VT0) ~ -1/(n phit ln 10): tens of decades per volt.
  const double slope = at(Target::Log10Ioff, Parameter::Vt0);
  EXPECT_LT(slope, -8.0);
  EXPECT_GT(slope, -30.0);
}

TEST_F(SensitivityTest, MobilitySensitivityIncludesVxoCoupling) {
  // Without the Eq. (5) coupling, dIdsat/dmu would be much smaller (the
  // device is quasi-ballistic).  Verify the coupled sensitivity exceeds a
  // pure-Vdsat effect by computing the decoupled version.
  models::VsParams decoupled = card_;
  decoupled.alphaFit = 0.0;
  decoupled.gammaFit = 0.0;
  decoupled.lambdaMfp = 1.0;  // B -> ~1 so (1-B) term vanishes too
  const linalg::Matrix sDecoupled =
      targetSensitivities(decoupled, geom_, 0.9);
  EXPECT_GT(at(Target::Idsat, Parameter::Mu),
            2.0 * sDecoupled(0, static_cast<std::size_t>(Parameter::Mu)));
}

TEST_F(SensitivityTest, StepsScaleWithGeometry) {
  const auto steps = sensitivitySteps(card_, geom_);
  EXPECT_NEAR(steps[static_cast<std::size_t>(Parameter::Leff)],
              0.01 * geom_.length, 1e-18);
  EXPECT_NEAR(steps[static_cast<std::size_t>(Parameter::Weff)],
              0.01 * geom_.width, 1e-18);
}

TEST_F(SensitivityTest, NamesAreStable) {
  EXPECT_STREQ(toString(Target::Idsat), "Idsat");
  EXPECT_STREQ(toString(Target::Log10Ioff), "log10(Ioff)");
  EXPECT_STREQ(toString(Target::Cgg), "Cgg@Vdd");
  EXPECT_STREQ(toString(Parameter::Vt0), "VT0");
  EXPECT_STREQ(toString(Parameter::Cinv), "Cinv");
}

TEST(SensitivityScaling, IdsatVt0SensitivityGrowsWithWidth) {
  const models::VsParams card = models::defaultVsNmos();
  const linalg::Matrix narrow = targetSensitivities(card, geometryNm(300, 40), 0.9);
  const linalg::Matrix wide = targetSensitivities(card, geometryNm(1200, 40), 0.9);
  EXPECT_NEAR(wide(0, 0) / narrow(0, 0), 4.0, 0.2);  // ~linear in W
}

}  // namespace
}  // namespace vsstat::extract
