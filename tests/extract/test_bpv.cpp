#include "extract/bpv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "extract/golden_meter.hpp"
#include "models/vs_params.hpp"
#include "util/error.hpp"

namespace vsstat::extract {
namespace {

using models::geometryNm;
using models::PelgromAlphas;

PelgromAlphas truthAlphas() {
  PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.71;
  a.aWeff = 3.71;
  a.aMu = 900.0;
  a.aCinv = 0.29;
  return a;
}

/// Synthesizes noise-free "measured" variances from a known alpha truth by
/// forward propagation through the VS model itself.  BPV must then recover
/// the truth (round trip).
std::vector<GeometryMeasurement> synthesize(const models::VsParams& card,
                                            const PelgromAlphas& truth) {
  std::vector<GeometryMeasurement> meas;
  for (const auto& g : extractionGeometries()) {
    const VarianceBreakdown vb = propagateVariance(card, g, truth, 0.9);
    GeometryMeasurement m;
    m.geom = g;
    m.varIdsat = vb.totalFor(0);
    m.varLog10Ioff = vb.totalFor(1);
    m.varCgg = vb.totalFor(2);
    meas.push_back(m);
  }
  return meas;
}

TEST(BpvRoundTrip, RecoversKnownAlphasFromSyntheticVariances) {
  const models::VsParams card = models::defaultVsNmos();
  const PelgromAlphas truth = truthAlphas();
  BpvOptions opt;
  opt.aCinvDirect = truth.aCinv;  // Cinv "measured directly"
  const BpvResult r = solveBpv(card, synthesize(card, truth), opt);
  EXPECT_NEAR(r.alphas.aVt0, truth.aVt0, 0.05 * truth.aVt0);
  EXPECT_NEAR(r.alphas.aLeff, truth.aLeff, 0.08 * truth.aLeff);
  EXPECT_NEAR(r.alphas.aWeff, truth.aWeff, 0.08 * truth.aWeff);
  EXPECT_NEAR(r.alphas.aMu, truth.aMu, 0.15 * truth.aMu);
  EXPECT_DOUBLE_EQ(r.alphas.aCinv, truth.aCinv);
  EXPECT_EQ(r.rowsDropped, 0);
}

TEST(BpvRoundTrip, TieForcesEqualLengthWidthAlphas) {
  const models::VsParams card = models::defaultVsNmos();
  const BpvResult r = solveBpv(card, synthesize(card, truthAlphas()));
  EXPECT_DOUBLE_EQ(r.alphas.aLeff, r.alphas.aWeff);
}

TEST(BpvRoundTrip, UntiedSolveStillRecoversTruth) {
  const models::VsParams card = models::defaultVsNmos();
  PelgromAlphas truth = truthAlphas();
  BpvOptions opt;
  opt.tieLengthWidth = false;
  opt.aCinvDirect = truth.aCinv;
  const BpvResult r = solveBpv(card, synthesize(card, truth), opt);
  EXPECT_NEAR(r.alphas.aLeff, truth.aLeff, 0.2 * truth.aLeff);
  EXPECT_NEAR(r.alphas.aWeff, truth.aWeff, 0.2 * truth.aWeff);
}

TEST(BpvIndividual, SingleGeometryIsLessConstrained) {
  // Individual solves (paper Fig. 2) work but scatter more; here we just
  // verify one solves and stays within a loose band of the joint solve.
  const models::VsParams card = models::defaultVsNmos();
  const PelgromAlphas truth = truthAlphas();
  BpvOptions opt;
  opt.aCinvDirect = truth.aCinv;
  const auto meas = synthesize(card, truth);
  const BpvResult joint = solveBpv(card, meas, opt);
  const BpvResult single = solveBpvIndividual(card, meas[2], opt);
  EXPECT_NEAR(single.alphas.aVt0, joint.alphas.aVt0, 0.3 * joint.alphas.aVt0);
}

TEST(Bpv, SolveCinvByBpvAblation) {
  // The ablation mode extracts Cinv instead of measuring it; with
  // noise-free synthetic data it lands near the truth (the paper's point
  // is that with *real* noisy data BPV overestimates such tight params).
  const models::VsParams card = models::defaultVsNmos();
  const PelgromAlphas truth = truthAlphas();
  BpvOptions opt;
  opt.solveCinvByBpv = true;
  const BpvResult r = solveBpv(card, synthesize(card, truth), opt);
  EXPECT_GE(r.alphas.aCinv, 0.0);
  EXPECT_LT(r.alphas.aCinv, 5.0 * truth.aCinv);
}

TEST(Bpv, ThrowsOnEmptyMeasurements) {
  EXPECT_THROW((void)solveBpv(models::defaultVsNmos(), {}), InvalidArgumentError);
}

TEST(Bpv, DegenerateRowsAreDroppedAndCounted) {
  const models::VsParams card = models::defaultVsNmos();
  GeometryMeasurement zero;
  zero.geom = geometryNm(600, 40);
  zero.varIdsat = 1e-30;  // below the Cinv-subtraction floor
  zero.varLog10Ioff = 1e-30;
  zero.varCgg = 1e-60;
  const auto good = synthesize(card, truthAlphas());
  std::vector<GeometryMeasurement> meas = good;
  meas.push_back(zero);
  const BpvResult r = solveBpv(card, meas);
  EXPECT_GT(r.rowsDropped, 0);
}

TEST(PropagateVariance, BreakdownSumsToTotal) {
  const models::VsParams card = models::defaultVsNmos();
  const VarianceBreakdown vb =
      propagateVariance(card, geometryNm(600, 40), truthAlphas(), 0.9);
  double manual = 0.0;
  for (std::size_t j = 0; j < 5; ++j) manual += vb.contributions(0, j);
  EXPECT_DOUBLE_EQ(vb.totalFor(0), manual);
  EXPECT_GT(vb.totalFor(0), 0.0);
  EXPECT_GT(vb.totalFor(1), 0.0);
  EXPECT_GT(vb.totalFor(2), 0.0);
}

TEST(PropagateVariance, Vt0DominatesLeakageVariance) {
  // Fig. 3 shape: RDF (VT0) is the leading contributor to leakage sigma.
  const models::VsParams card = models::defaultVsNmos();
  const VarianceBreakdown vb =
      propagateVariance(card, geometryNm(600, 40), truthAlphas(), 0.9);
  const std::size_t ioffRow = 1;
  const double vt0Part = vb.contributions(ioffRow, 0);
  EXPECT_GT(vt0Part, 0.5 * vb.totalFor(ioffRow));
}

}  // namespace
}  // namespace vsstat::extract
