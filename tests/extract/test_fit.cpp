#include "extract/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "measure/device_metrics.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::extract {
namespace {

using models::BsimLite;
using models::geometryNm;
using models::VsModel;

TEST(VsFit, SelfFitIsNearPerfect) {
  // Fitting the VS model to itself must keep errors at numerical noise.
  const models::VsParams truth = models::defaultVsNmos();
  const VsModel golden(truth);
  const IvFitResult r =
      fitVsToGolden(truth, golden, geometryNm(300, 40));
  EXPECT_LT(r.rmsLogIdVg, 1e-4);
  EXPECT_LT(r.rmsRelIdVd, 1e-4);
  EXPECT_LT(std::fabs(r.relCggError), 1e-4);
}

TEST(VsFit, CrossModelFitReachesFigureOneQuality) {
  // Fig. 1: VS tracks the golden kit across all regions.  Cross-family
  // fits can't be perfect; a few percent RMS is the expected quality.
  const BsimLite golden(models::defaultBsimNmos());
  const IvFitResult r = fitVsToGolden(models::defaultVsNmos(), golden,
                                      geometryNm(300, 40));
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.rmsLogIdVg, 0.25);     // < ~25% in log-current space
  EXPECT_LT(r.rmsRelIdVd, 0.10);     // < 10% on output curves
  EXPECT_LT(std::fabs(r.relCggError), 0.05);
}

TEST(VsFit, AnchorsPinIdsatAndIoff) {
  const BsimLite golden(models::defaultBsimNmos());
  const auto geom = geometryNm(300, 40);
  const IvFitResult r =
      fitVsToGolden(models::defaultVsNmos(), golden, geom);
  const VsModel fitted(r.card);
  const double idsatErr =
      measure::idsat(fitted, geom, 0.9) / measure::idsat(golden, geom, 0.9) -
      1.0;
  const double ioffErr = measure::log10Ioff(fitted, geom, 0.9) -
                         measure::log10Ioff(golden, geom, 0.9);
  EXPECT_LT(std::fabs(idsatErr), 0.05);  // Idsat within 5%
  EXPECT_LT(std::fabs(ioffErr), 0.05);   // Ioff within ~12%
}

TEST(VsFit, PmosFitAlsoConverges) {
  const BsimLite golden(models::defaultBsimPmos());
  const IvFitResult r = fitVsToGolden(models::defaultVsPmos(), golden,
                                      geometryNm(300, 40));
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.rmsRelIdVd, 0.12);
}

TEST(VsFit, FittedCardStaysInPhysicalBounds) {
  const BsimLite golden(models::defaultBsimNmos());
  const IvFitResult r = fitVsToGolden(models::defaultVsNmos(), golden,
                                      geometryNm(300, 40));
  EXPECT_GT(r.card.vt0, 0.15);
  EXPECT_LT(r.card.vt0, 0.65);
  EXPECT_GE(r.card.n0, 1.0);
  EXPECT_GT(r.card.vxo, 0.0);
  EXPECT_GT(r.card.mu, 0.0);
  EXPECT_GT(r.card.beta, 1.0);
}

TEST(VsFit, RejectsNonPositiveVdd) {
  const BsimLite golden(models::defaultBsimNmos());
  FitOptions opt;
  opt.vdd = 0.0;
  EXPECT_THROW((void)fitVsToGolden(models::defaultVsNmos(), golden,
                             geometryNm(300, 40), opt),
               vsstat::InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::extract
