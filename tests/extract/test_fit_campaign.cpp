// The banked multi-fit extraction engine's contract tests:
//   * banked == scalar agreement (bit-exact under reference numerics) for
//     all three card families,
//   * box bounds respected -- pinned lanes are reported, never violated,
//   * bit-identical campaigns across 1/2/4 workers,
//   * per-class failure accounting on an injected bad-data lane,
//   * population sigma round-trips through synthesize -> re-extract.
#include "extract/fit_campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::extract {
namespace {

models::DeviceGeometry nominalGeom() { return {80e-9, 40e-9}; }

/// Dataset factory: per-lane vth-perturbed truth card, synthesized on the
/// campaign grid with multiplicative measurement noise.
FitCampaign::DatasetFn vsPopulation(const FitCampaign& campaign,
                                    models::VsParams truth, double vtSigma,
                                    double noiseRel) {
  return [&campaign, truth, vtSigma, noiseRel](
             std::size_t, stats::Rng& rng, FitDataset& d) {
    models::VsParams t = truth;
    t.vt0 += vtSigma * rng.normal();
    const models::VsModel m(t);
    campaign.synthesizeDataset(m, noiseRel, rng, d);
  };
}

TEST(FitCampaign, BankedMatchesScalarBitwiseVs) {
  const models::VsParams seed;
  FitCampaignOptions banked;
  banked.threads = 1;
  FitCampaignOptions scalar = banked;
  scalar.useBank = false;

  const FitCampaign cb(seed, nominalGeom(), vsMeasurementGrid(), banked);
  const FitCampaign cs(seed, nominalGeom(), vsMeasurementGrid(), scalar);

  models::VsParams truth = seed;
  truth.vt0 = 0.44;
  const FitCampaignResult rb =
      cb.run(12, 99, vsPopulation(cb, truth, 0.015, 0.01));
  const FitCampaignResult rs =
      cs.run(12, 99, vsPopulation(cs, truth, 0.015, 0.01));

  EXPECT_GE(rb.convergedFraction(), 0.9);
  // Reference-mode banked evaluation is bit-identical to the scalar path by
  // the bank contract, so the whole campaign hash must match.
  EXPECT_EQ(rb.paramsFnv1a(), rs.paramsFnv1a());
}

TEST(FitCampaign, BankedMatchesScalarBitwiseAlphaPower) {
  const models::AlphaPowerParams seed;
  FitCampaignOptions banked;
  banked.threads = 1;
  FitCampaignOptions scalar = banked;
  scalar.useBank = false;

  const FitCampaign cb(seed, nominalGeom(), strongInversionGrid(), banked);
  const FitCampaign cs(seed, nominalGeom(), strongInversionGrid(), scalar);

  const auto data = [](const FitCampaign& c) {
    return [&c](std::size_t, stats::Rng& rng, FitDataset& d) {
      models::AlphaPowerParams t;
      t.vth0 += 0.01 * rng.normal();
      const models::AlphaPowerModel m(t);
      c.synthesizeDataset(m, 0.01, rng, d);
    };
  };
  const FitCampaignResult rb = cb.run(8, 7, data(cb));
  const FitCampaignResult rs = cs.run(8, 7, data(cs));
  EXPECT_EQ(rb.paramsFnv1a(), rs.paramsFnv1a());
}

TEST(FitCampaign, BankedMatchesScalarBitwiseBsim) {
  const models::BsimParams seed;
  FitCampaignOptions banked;
  banked.threads = 1;
  FitCampaignOptions scalar = banked;
  scalar.useBank = false;

  const FitCampaign cb(seed, nominalGeom(), vsMeasurementGrid(), banked);
  const FitCampaign cs(seed, nominalGeom(), vsMeasurementGrid(), scalar);

  const auto data = [](const FitCampaign& c) {
    return [&c](std::size_t, stats::Rng& rng, FitDataset& d) {
      models::BsimParams t;
      t.vth0 += 0.01 * rng.normal();
      const models::BsimLite m(t);
      c.synthesizeDataset(m, 0.01, rng, d);
    };
  };
  const FitCampaignResult rb = cb.run(8, 11, data(cb));
  const FitCampaignResult rs = cs.run(8, 11, data(cs));
  EXPECT_EQ(rb.paramsFnv1a(), rs.paramsFnv1a());
}

TEST(FitCampaign, RecoversNoiselessTruthWithinFitTolerance) {
  const models::VsParams seed;
  models::VsParams truth = seed;
  truth.vt0 = 0.46;
  truth.mu = 2.3e-2;

  FitCampaignOptions opt;
  opt.threads = 1;
  opt.maxIterations = 120;
  const FitCampaign c(seed, nominalGeom(), vsMeasurementGrid(), opt);
  const FitCampaignResult r =
      c.run(2, 1, vsPopulation(c, truth, 0.0, 0.0));

  for (std::size_t lane = 0; lane < r.laneCount; ++lane) {
    EXPECT_TRUE(r.outcomes[lane] == FitOutcome::converged ||
                r.outcomes[lane] == FitOutcome::stalled)
        << toString(r.outcomes[lane]);
    EXPECT_LT(r.cost[lane], 1e-6);
    const models::VsParams fitted = c.vsCard(r, lane);
    EXPECT_NEAR(fitted.vt0, truth.vt0, 0.02 * truth.vt0);
  }
}

TEST(FitCampaign, BoundPinnedLanesAreReportedNeverViolated) {
  const models::VsParams seed;
  // Truth vt0 far above the family's physical box (hi = 0.65): the optimum
  // presses against the bound; the engine must clamp there and say so.
  models::VsParams truth = seed;
  truth.vt0 = 0.72;

  FitCampaignOptions opt;
  opt.threads = 1;
  const FitCampaign c(seed, nominalGeom(), vsMeasurementGrid(), opt);
  const FitCampaignResult r =
      c.run(3, 5, vsPopulation(c, truth, 0.0, 0.0));

  // Family box, same order as the campaign's parameter vector.
  const double lo[7] = {0.15, 0.04, 1.22, 0.4e5, 0.6e-2, 1.2, 1.0e-2};
  const double hi[7] = {0.65, 0.25, 1.90, 2.5e5, 5.0e-2, 2.8, 2.6e-2};
  for (std::size_t lane = 0; lane < r.laneCount; ++lane) {
    const auto x = r.lane(lane);
    for (std::size_t j = 0; j < x.size(); ++j) {
      EXPECT_GE(x[j], lo[j]);
      EXPECT_LE(x[j], hi[j]);
    }
    EXPECT_EQ(r.outcomes[lane], FitOutcome::boundPinned)
        << toString(r.outcomes[lane]) << " iters=" << r.iterations[lane]
        << " cost=" << r.cost[lane] << " mask=" << r.boundMask[lane];
    EXPECT_NE(r.boundMask[lane], 0u);
    EXPECT_EQ(c.vsCard(r, lane).vt0, hi[0]);  // clamped exactly on the bound
  }
  EXPECT_EQ(r.outcomeCounts[static_cast<int>(FitOutcome::boundPinned)], 3);
}

TEST(FitCampaign, BitIdenticalAcrossWorkerCounts) {
  const models::VsParams seed;
  models::VsParams truth = seed;
  truth.vt0 = 0.44;

  std::vector<std::uint64_t> hashes;
  for (const unsigned threads : {1u, 2u, 4u}) {
    FitCampaignOptions opt;
    opt.threads = threads;
    const FitCampaign c(seed, nominalGeom(), vsMeasurementGrid(), opt);
    const FitCampaignResult r =
        c.run(16, 1234, vsPopulation(c, truth, 0.02, 0.01));
    hashes.push_back(r.paramsFnv1a());
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

TEST(FitCampaign, FastNumericsBitIdenticalAcrossWorkerCountsAndTolerant) {
  const models::VsParams seed;
  models::VsParams truth = seed;
  truth.vt0 = 0.44;

  FitCampaignOptions ref;
  ref.threads = 1;
  const FitCampaign cr(seed, nominalGeom(), vsMeasurementGrid(), ref);
  const FitCampaignResult rr =
      cr.run(12, 77, vsPopulation(cr, truth, 0.01, 0.005));

  std::vector<std::uint64_t> hashes;
  FitCampaignResult fast;
  for (const unsigned threads : {1u, 4u}) {
    FitCampaignOptions opt;
    opt.threads = threads;
    opt.numerics = models::NumericsMode::fast;
    const FitCampaign c(seed, nominalGeom(), vsMeasurementGrid(), opt);
    fast = c.run(12, 77, vsPopulation(c, truth, 0.01, 0.005));
    hashes.push_back(fast.paramsFnv1a());
  }
  // Fast mode is deterministic (same bits per worker count)...
  EXPECT_EQ(hashes[0], hashes[1]);
  // ...and agrees with reference within fit tolerance, not bit identity:
  // both campaigns extract cards that match to a fraction of the noise.
  EXPECT_GE(fast.convergedFraction(), 0.9);
  for (std::size_t lane = 0; lane < fast.laneCount; ++lane) {
    if (fast.outcomes[lane] != FitOutcome::converged ||
        rr.outcomes[lane] != FitOutcome::converged)
      continue;
    EXPECT_NEAR(fast.lane(lane)[0], rr.lane(lane)[0],
                0.02 * std::fabs(rr.lane(lane)[0]));
  }
}

TEST(FitCampaign, BadDataLaneIsClassifiedNotFatal) {
  const models::VsParams seed;
  FitCampaignOptions opt;
  opt.threads = 2;
  const FitCampaign c(seed, nominalGeom(), vsMeasurementGrid(), opt);

  const auto data = [&c, seed](std::size_t lane, stats::Rng& rng,
                               FitDataset& d) {
    const models::VsModel m(seed);
    c.synthesizeDataset(m, 0.01, rng, d);
    if (lane == 2) {
      // An unmeasurable die: NaN currents must classify as a non-finite
      // lane, not poison the campaign.
      d.id[3] = std::numeric_limits<double>::quiet_NaN();
    }
  };
  const FitCampaignResult r = c.run(6, 21, data);

  EXPECT_EQ(r.outcomes[2], FitOutcome::nonFinite);
  EXPECT_EQ(r.outcomeCounts[static_cast<int>(FitOutcome::nonFinite)], 1);
  EXPECT_TRUE(std::isnan(r.cost[2]));
  ASSERT_TRUE(r.firstFailure.valid);
  EXPECT_EQ(r.firstFailure.lane, 2u);
  EXPECT_EQ(r.firstFailure.outcome, FitOutcome::nonFinite);
  EXPECT_FALSE(r.firstFailure.message.empty());
  // The failed lane reports the (clamped) seed card, inside the box.
  EXPECT_EQ(c.vsCard(r, 2).vt0, seed.vt0);
  // Everyone else still extracted.
  EXPECT_GE(r.outcomeCounts[static_cast<int>(FitOutcome::converged)] +
                r.outcomeCounts[static_cast<int>(FitOutcome::boundPinned)],
            5);
}

TEST(FitCampaign, SigmaRoundTripsThroughExtraction) {
  const models::VsParams seed;
  const double sigmaIn = 0.02;  // 20 mV vt0 spread across the population

  FitCampaignOptions opt;
  opt.threads = 0;  // hardware concurrency; result is worker-invariant
  const FitCampaign c(seed, nominalGeom(), vsMeasurementGrid(), opt);
  const FitCampaignResult r =
      c.run(160, 4242, vsPopulation(c, seed, sigmaIn, 0.004));

  EXPECT_GE(r.convergedFraction(), 0.95);
  double sum = 0.0, sumSq = 0.0;
  std::size_t used = 0;
  for (std::size_t lane = 0; lane < r.laneCount; ++lane) {
    if (r.outcomes[lane] != FitOutcome::converged &&
        r.outcomes[lane] != FitOutcome::boundPinned)
      continue;
    const double vt0 = r.lane(lane)[0];
    sum += vt0;
    sumSq += vt0 * vt0;
    ++used;
  }
  ASSERT_GT(used, 100u);
  const double mean = sum / static_cast<double>(used);
  const double var = sumSq / static_cast<double>(used) - mean * mean;
  const double sigmaOut = std::sqrt(std::max(var, 0.0));
  EXPECT_NEAR(mean, seed.vt0, 0.01);
  EXPECT_NEAR(sigmaOut, sigmaIn, 0.25 * sigmaIn);
}

TEST(FitCampaign, ValidatesConstruction) {
  const models::VsParams seed;
  MeasurementGrid empty;
  EXPECT_THROW(FitCampaign(seed, nominalGeom(), empty), InvalidArgumentError);

  FitCampaignOptions opt;
  opt.levmar.lowerBounds = {0.0};  // wrong arity for the 7-param VS family
  EXPECT_THROW(FitCampaign(seed, nominalGeom(), vsMeasurementGrid(), opt),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::extract
