// Streaming estimator and frame builders (serve/stream.hpp): running
// statistics folded from campaign chunks, and the wire frames built from
// them.  Every frame must itself parse as JSON (clients round-trip them
// through serve::parseJson in the tests below, exactly as a real client
// would).
#include "serve/stream.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace vsstat::serve {
namespace {

/// Feeds `values` to an estimator as synthetic chunks of `chunk` samples;
/// indices `failAt` are marked failed (metricDomain) instead.
StreamingEstimator foldChunks(const std::vector<double>& values,
                              std::size_t chunk,
                              const std::vector<std::size_t>& failAt = {},
                              std::optional<yield::SpecLimit> spec = {}) {
  StreamingEstimator est(1, spec);
  for (std::size_t first = 0; first < values.size(); first += chunk) {
    const std::size_t end = std::min(values.size(), first + chunk);
    std::vector<double> metrics(values.begin() +
                                    static_cast<std::ptrdiff_t>(first),
                                values.begin() +
                                    static_cast<std::ptrdiff_t>(end));
    std::vector<char> ok(end - first, 1);
    std::vector<signed char> cls(end - first, -1);
    std::vector<int> rescues(end - first, 0);
    for (const std::size_t f : failAt)
      if (f >= first && f < end) {
        ok[f - first] = 0;
        cls[f - first] =
            static_cast<signed char>(FailureClass::metricDomain);
      }
    mc::McChunkView view;
    view.first = first;
    view.end = end;
    view.total = values.size();
    view.metricCount = 1;
    view.metrics = metrics.data();
    view.ok = ok.data();
    view.failureClass = cls.data();
    view.rescues = rescues.data();
    est.fold(view);
  }
  return est;
}

TEST(StreamingEstimator, MatchesExactMomentsOverChunks) {
  stats::Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.normal(1.0, 0.2));

  const StreamingEstimator est = foldChunks(values, 64);
  EXPECT_EQ(est.done(), 500u);
  EXPECT_EQ(est.okCount(), 500u);
  EXPECT_EQ(est.failureCount(), 0u);
  // Welford over chunks is the same recurrence as Welford over the stream.
  EXPECT_DOUBLE_EQ(est.mean(), stats::summarize(values).mean);
  EXPECT_DOUBLE_EQ(est.sigma(), stats::summarize(values).stddev);
  EXPECT_NEAR(est.q50(), stats::quantile(values, 0.5), 0.05);
  EXPECT_EQ(est.values(), values);
}

TEST(StreamingEstimator, CountsFailuresPerClassAndYieldsConservatively) {
  std::vector<double> values(100, 0.5);
  yield::SpecLimit spec;
  spec.upper = 1.0;
  const StreamingEstimator est = foldChunks(values, 32, {3, 50, 97}, spec);
  EXPECT_EQ(est.done(), 100u);
  EXPECT_EQ(est.okCount(), 97u);
  EXPECT_EQ(est.failureCount(), 3u);
  EXPECT_EQ(est.failureOf(static_cast<std::size_t>(
                FailureClass::metricDomain)),
            3);
  // countAsFail semantics: 97 passing survivors over 100 budgeted samples.
  ASSERT_TRUE(est.runningYield().has_value());
  EXPECT_DOUBLE_EQ(*est.runningYield(), 0.97);
}

TEST(Frames, ProgressFrameParsesBack) {
  const StreamingEstimator est = foldChunks({1.0, 2.0, 3.0, 4.0, 5.0}, 2);
  const JsonValue frame = parseJson(progressFrame("req-1", est, 12.5));
  EXPECT_EQ(frame.find("type")->string, "progress");
  EXPECT_EQ(frame.find("id")->string, "req-1");
  EXPECT_DOUBLE_EQ(frame.find("done")->number, 5.0);
  EXPECT_EQ(frame.find("mean")->number, est.mean());
  EXPECT_TRUE(frame.find("yield")->isNull());
  EXPECT_DOUBLE_EQ(frame.find("failures")->find("total")->number, 0.0);
  EXPECT_DOUBLE_EQ(frame.find("elapsed_ms")->number, 12.5);
}

TEST(Frames, KdeFrameCarriesTheCurve) {
  stats::Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal());
  const StreamingEstimator est = foldChunks(values, 50);
  const JsonValue frame = parseJson(kdeFrame("k", est, 16));
  EXPECT_EQ(frame.find("type")->string, "kde");
  EXPECT_EQ(frame.find("x")->items.size(), 16u);
  EXPECT_EQ(frame.find("density")->items.size(), 16u);
  EXPECT_GT(frame.find("bandwidth")->number, 0.0);
}

TEST(Frames, FinalFrameIsExactAndHashed) {
  mc::McResult result;
  result.metrics = {{0.2, 0.4, 0.6, 0.8}};
  result.failures = 1;
  result.failuresByClass[static_cast<std::size_t>(
      FailureClass::nonConvergence)] = 1;
  yield::SpecLimit spec;
  spec.upper = 0.7;

  const std::string text =
      finalFrame("f", result, 5, spec, /*warm=*/true, 3.0, 9.0);
  const JsonValue frame = parseJson(text);
  EXPECT_EQ(frame.find("type")->string, "final");
  EXPECT_DOUBLE_EQ(frame.find("samples")->number, 5.0);
  EXPECT_DOUBLE_EQ(frame.find("ok")->number, 4.0);
  // Bit-exact against the same calls a client would make in-process.
  EXPECT_EQ(frame.find("mean")->number,
            stats::summarize(result.metrics[0]).mean);
  EXPECT_EQ(frame.find("sigma")->number,
            stats::summarize(result.metrics[0]).stddev);
  const yield::YieldEstimate y =
      yield::yieldOfCampaign(result, 0, spec, yield::DropPolicy{});
  EXPECT_EQ(frame.find("yield")->find("value")->number, y.yield);
  EXPECT_DOUBLE_EQ(frame.find("yield")->find("passed")->number,
                   static_cast<double>(y.passed));
  EXPECT_EQ(frame.find("cache")->string, "warm");
  // 1 failure in 5 samples = 20% > the 5% degradation threshold.
  EXPECT_EQ(frame.find("health")->string, "DEGRADED");
  EXPECT_EQ(frame.find("metrics_fnv1a")->string.substr(0, 2), "0x");
}

TEST(Frames, ErrorFrameCarriesCodeAndDeckLine) {
  const JsonValue deck =
      parseJson(errorFrame("e", RequestError::deckError, "bad card", 12));
  EXPECT_EQ(deck.find("type")->string, "error");
  EXPECT_EQ(deck.find("code")->string, "deck_error");
  EXPECT_DOUBLE_EQ(deck.find("line")->number, 12.0);
  EXPECT_EQ(deck.find("message")->string, "bad card");

  const JsonValue bad =
      parseJson(errorFrame("", RequestError::badJson, "oops"));
  EXPECT_EQ(bad.find("code")->string, "bad_json");
  EXPECT_EQ(bad.find("line"), nullptr) << "line is deck_error-only";
}

TEST(Frames, FingerprintIsOrderSensitive) {
  mc::McResult a;
  a.metrics = {{1.0, 2.0}};
  mc::McResult b;
  b.metrics = {{2.0, 1.0}};
  EXPECT_NE(metricsFingerprint(a), metricsFingerprint(b));
}

}  // namespace
}  // namespace vsstat::serve
