// Campaign-server request layer (serve/request.hpp): the hand-rolled JSON
// document model and the strict request-schema validation behind it.
#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace vsstat::serve {
namespace {

// --- JSON parser -----------------------------------------------------------

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parseJson("null").isNull());
  EXPECT_TRUE(parseJson("true").boolean);
  EXPECT_FALSE(parseJson("false").boolean);
  EXPECT_DOUBLE_EQ(parseJson("-12.5e2").number, -1250.0);
  EXPECT_EQ(parseJson("\"hi\"").string, "hi");
}

TEST(Json, ParsesNestedDocument) {
  const JsonValue doc =
      parseJson(R"({"a": [1, 2, {"b": "x"}], "c": {"d": null}})");
  ASSERT_EQ(doc.kind, JsonValue::Kind::object);
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
  EXPECT_EQ(a->items[2].find("b")->string, "x");
  EXPECT_TRUE(doc.find("c")->find("d")->isNull());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, PreservesMemberOrder) {
  const JsonValue doc = parseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(doc.members.size(), 3u);
  EXPECT_EQ(doc.members[0].first, "z");
  EXPECT_EQ(doc.members[1].first, "a");
  EXPECT_EQ(doc.members[2].first, "m");
}

TEST(Json, DecodesEscapes) {
  EXPECT_EQ(parseJson(R"("a\nb\t\"q\"\\")").string, "a\nb\t\"q\"\\");
  EXPECT_EQ(parseJson(R"("Aé")").string, "A\xC3\xA9");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parseJson(""), JsonParseError);
  EXPECT_THROW((void)parseJson("{"), JsonParseError);
  EXPECT_THROW((void)parseJson("{\"a\":}"), JsonParseError);
  EXPECT_THROW((void)parseJson("[1,]"), JsonParseError);
  EXPECT_THROW((void)parseJson("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)parseJson("tru"), JsonParseError);
  EXPECT_THROW((void)parseJson("{} trailing"), JsonParseError);
}

TEST(Json, NumberSerializationRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, -2.5e-300, 6.02214076e23, 0.0}) {
    std::string out;
    appendJsonNumber(out, v);
    const double back = parseJson(out).number;
    EXPECT_EQ(back, v) << out;  // bit-exact: %.17g round-trips doubles
  }
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  std::string out;
  appendJsonNumber(out, std::nan(""));
  EXPECT_EQ(out, "null");
  out.clear();
  appendJsonNumber(out, HUGE_VAL);
  EXPECT_EQ(out, "null");
}

TEST(Json, StringSerializationEscapes) {
  std::string out;
  appendJsonString(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

// --- request schema --------------------------------------------------------

JsonValue minimalRequest() {
  return parseJson(
      R"({"deck": "V1 a 0 1.0\n", "measure": {"probes": ["a"]}})");
}

TEST(CampaignRequestSchema, MinimalRequestGetsDefaults) {
  const CampaignRequest req = parseCampaignRequest(minimalRequest());
  EXPECT_EQ(req.samples, 1000);
  EXPECT_EQ(req.seed, 42u);
  EXPECT_EQ(req.threads, 1u);
  EXPECT_EQ(req.scheme, mc::SamplingPlan::Scheme::providerRng);
  EXPECT_EQ(req.mode.tier, spice::ToleranceTier::perSample);
  EXPECT_EQ(req.measure.analysis, MeasureSpec::Analysis::op);
  ASSERT_EQ(req.measure.probes.size(), 1u);
  EXPECT_FALSE(req.measure.spec.has_value());
  EXPECT_EQ(req.streamEvery, 256);
  // Default alphas are the paper-flavored Pelgrom set.
  EXPECT_DOUBLE_EQ(req.nmosAlphas.aVt0, defaultAlphas().aVt0);
}

TEST(CampaignRequestSchema, FullRequestParses) {
  const CampaignRequest req = parseCampaignRequest(parseJson(R"({
    "id": "r7", "deck": "x", "samples": 512, "seed": 9, "threads": 4,
    "mode": {"numerics": "fast", "solver": "reusePivot",
             "tier": "statistical"},
    "scheme": "sobol",
    "variability": {"sigma_scale": 2.0, "nmos": {"avt0": 1.5}},
    "measure": {"analysis": "tran", "probes": ["out", "q"],
                "spec": {"min": 0.1, "max": 0.8}},
    "stream_every": 64, "kde_every": 128, "kde_points": 48})"));
  EXPECT_EQ(req.id, "r7");
  EXPECT_EQ(req.samples, 512);
  EXPECT_EQ(req.mode.numerics, models::NumericsMode::fast);
  EXPECT_EQ(req.mode.solver, linalg::SolverMode::reusePivot);
  EXPECT_EQ(req.mode.tier, spice::ToleranceTier::statistical);
  EXPECT_EQ(req.scheme, mc::SamplingPlan::Scheme::sobol);
  // sigma_scale applies after per-polarity overrides, to both polarities.
  EXPECT_DOUBLE_EQ(req.nmosAlphas.aVt0, 3.0);
  EXPECT_DOUBLE_EQ(req.pmosAlphas.aVt0, 2.0 * defaultAlphas().aVt0);
  EXPECT_EQ(req.measure.analysis, MeasureSpec::Analysis::tran);
  ASSERT_EQ(req.measure.probes.size(), 2u);
  ASSERT_TRUE(req.measure.spec.has_value());
  EXPECT_DOUBLE_EQ(*req.measure.spec->lower, 0.1);
  EXPECT_DOUBLE_EQ(*req.measure.spec->upper, 0.8);
  EXPECT_EQ(req.streamEvery, 64);
  EXPECT_EQ(req.kdeEvery, 128);
  EXPECT_EQ(req.kdePoints, 48);
}

void expectBadRequest(const std::string& json, const std::string& needle) {
  try {
    (void)parseCampaignRequest(parseJson(json));
    ADD_FAILURE() << "accepted: " << json;
  } catch (const RequestValidationError& e) {
    EXPECT_EQ(e.code(), RequestError::badRequest);
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(CampaignRequestSchema, RejectsSchemaViolations) {
  expectBadRequest(R"([1,2])", "must be a JSON object");
  expectBadRequest(R"({"measure": {"probes": ["a"]}})", "deck");
  expectBadRequest(R"({"deck": "", "measure": {"probes": ["a"]}})",
                   "deck must not be empty");
  expectBadRequest(R"({"deck": "x"})", "measure");
  expectBadRequest(R"({"deck": "x", "measure": {"probes": []}})", "probes");
  expectBadRequest(
      R"({"deck": "x", "samples": 0, "measure": {"probes": ["a"]}})",
      "samples");
  expectBadRequest(
      R"({"deck": "x", "samples": 2.5, "measure": {"probes": ["a"]}})",
      "integer");
  expectBadRequest(
      R"({"deck": "x", "mode": {"tier": "warp"}, "measure": {"probes": ["a"]}})",
      "tier");
  expectBadRequest(
      R"({"deck": "x", "scheme": "dartboard", "measure": {"probes": ["a"]}})",
      "dartboard");
  // Unknown keys fail loudly instead of silently running defaults.
  expectBadRequest(
      R"({"deck": "x", "samplez": 10, "measure": {"probes": ["a"]}})",
      "samplez");
  expectBadRequest(
      R"({"deck": "x", "measure": {"probes": ["a"], "specc": {}}})", "specc");
  expectBadRequest(
      R"({"deck": "x", "variability": {"nmos": {"avtO": 1}},
          "measure": {"probes": ["a"]}})",
      "avtO");
}

TEST(CampaignRequestSchema, WireNamesOfErrorCodes) {
  EXPECT_STREQ(toString(RequestError::badJson), "bad_json");
  EXPECT_STREQ(toString(RequestError::badRequest), "bad_request");
  EXPECT_STREQ(toString(RequestError::deckError), "deck_error");
  EXPECT_STREQ(toString(RequestError::campaignError), "campaign_error");
}

}  // namespace
}  // namespace vsstat::serve
