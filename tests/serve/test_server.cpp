// Campaign-server integration (serve/server.hpp): the protocol core end to
// end -- classified error frames, streamed campaigns whose final statistics
// are BIT-equal to a same-seed in-process mc::runCampaign at 1/2/4
// workers, warm session-cache reuse, and two campaigns interleaving
// through the shared thread pool.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "spice/netlist.hpp"
#include "stats/descriptive.hpp"

namespace vsstat::serve {
namespace {

constexpr const char* kInverterDeck =
    "VDD vdd 0 0.9\n"
    "VIN in 0 0.45\n"
    "MP out in vdd pch W=600n L=40n\n"
    "MN out in 0 nch W=300n L=40n\n"
    ".model nch vs_nmos\n"
    ".model pch vs_pmos\n"
    ".end\n";

constexpr const char* kDividerDeck =
    "VDD vdd 0 0.9\n"
    "MN1 mid vdd 0 nch W=300n L=40n\n"
    "MN2 vdd vdd mid nch W=300n L=40n\n"
    ".model nch vs_nmos\n"
    ".end\n";

std::string makeRequest(const std::string& id, const char* deck, int samples,
                        unsigned threads, int streamEvery) {
  std::string req = "{\"id\":";
  appendJsonString(req, id);
  req += ",\"deck\":";
  appendJsonString(req, deck);
  req += ",\"samples\":" + std::to_string(samples);
  req += ",\"seed\":11,\"threads\":" + std::to_string(threads);
  req += ",\"stream_every\":" + std::to_string(streamEvery);
  req += ",\"measure\":{\"probes\":[\"" +
         std::string(deck == kDividerDeck ? "mid" : "out") + "\"]}}";
  return req;
}

std::vector<std::string> runLine(CampaignServer& server,
                                 const std::string& line) {
  std::vector<std::string> frames;
  server.handleLine(line,
                    [&frames](const std::string& f) { frames.push_back(f); });
  return frames;
}

JsonValue finalFrameOf(const std::vector<std::string>& frames) {
  for (const std::string& f : frames) {
    const JsonValue frame = parseJson(f);
    const std::string type = frame.find("type")->string;
    if (type == "final" || type == "error") return frame;
  }
  ADD_FAILURE() << "no terminal frame";
  return JsonValue{};
}

int countProgress(const std::vector<std::string>& frames) {
  int n = 0;
  for (const std::string& f : frames)
    if (f.find("\"type\":\"progress\"") != std::string::npos) ++n;
  return n;
}

// --- error paths -----------------------------------------------------------

TEST(CampaignServer, BadJsonGetsAnErrorFrame) {
  CampaignServer server;
  const std::vector<std::string> frames = runLine(server, "{nope");
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(finalFrameOf(frames).find("code")->string, "bad_json");
}

TEST(CampaignServer, SchemaViolationGetsBadRequestWithIdEcho) {
  CampaignServer server;
  const std::vector<std::string> frames =
      runLine(server, R"({"id": "r9", "deck": "x"})");
  ASSERT_EQ(frames.size(), 1u);
  const JsonValue frame = finalFrameOf(frames);
  EXPECT_EQ(frame.find("code")->string, "bad_request");
  EXPECT_EQ(frame.find("id")->string, "r9");
}

TEST(CampaignServer, MalformedDeckGetsLineClassifiedDeckError) {
  CampaignServer server;
  std::string req = R"({"deck": )";
  appendJsonString(req, "V1 a 0 1.0\nR1 a 0 bogus\n");
  req += R"(, "measure": {"probes": ["a"]}})";
  const std::vector<std::string> frames = runLine(server, req);
  ASSERT_EQ(frames.size(), 1u);
  const JsonValue frame = finalFrameOf(frames);
  EXPECT_EQ(frame.find("code")->string, "deck_error");
  EXPECT_DOUBLE_EQ(frame.find("line")->number, 2.0);
  EXPECT_NE(frame.find("message")->string.find("bogus"), std::string::npos);
}

TEST(CampaignServer, UnknownProbeGetsBadRequest) {
  CampaignServer server;
  std::string req = R"({"deck": )";
  appendJsonString(req, kInverterDeck);
  req += R"(, "measure": {"probes": ["nonexistent"]}})";
  const JsonValue frame = finalFrameOf(runLine(server, req));
  EXPECT_EQ(frame.find("code")->string, "bad_request");
  EXPECT_NE(frame.find("message")->string.find("nonexistent"),
            std::string::npos);
}

TEST(CampaignServer, BlankLinesAreIgnored) {
  CampaignServer server;
  EXPECT_TRUE(runLine(server, "").empty());
  EXPECT_TRUE(runLine(server, "  \t").empty());
}

// --- streamed statistics vs in-process campaigns ---------------------------

constexpr int kSamples = 48;

/// The reference: the same campaign through the public in-process API
/// (mc::runCampaign over a deck-built fixture), same seed and axes.
mc::McResult inProcessCampaign(unsigned threads) {
  spice::ParsedNetlist parsed = spice::parseNetlist(kInverterDeck);
  const spice::NodeId out = parsed.circuit.node("out");
  const models::VsParams nmos = *parsed.vsNmos;
  const models::VsParams pmos = *parsed.vsPmos;

  mc::McOptions opt;
  opt.samples = kSamples;
  opt.seed = 11;
  opt.threads = threads;
  return mc::runCampaign<DeckFixture>(
      opt, 1,
      [](circuits::DeviceProvider& p) {
        return DeckFixture{
            std::move(spice::parseNetlist(kInverterDeck, p).circuit)};
      },
      [nmos, pmos] {
        return std::make_unique<mc::VsStatisticalProvider>(
            nmos, pmos, defaultAlphas(), defaultAlphas(), stats::Rng(1));
      },
      [out](std::size_t, sim::CampaignSession<DeckFixture>& session,
            stats::Rng&, std::vector<double>& metrics) {
        metrics[0] = session.spice().dcOperatingPoint().v(out);
      });
}

TEST(CampaignServer, StreamedFinalStatsBitEqualInProcessCampaign) {
  const mc::McResult reference = inProcessCampaign(1);
  ASSERT_EQ(reference.sampleCount(), static_cast<std::size_t>(kSamples));
  const stats::Summary summary = stats::summarize(reference.metrics[0]);
  char refHash[32];
  std::snprintf(refHash, sizeof refHash, "0x%016" PRIx64,
                metricsFingerprint(reference));

  // The worker-count sweep doubles as the scheduling-independence check:
  // in-process campaigns are bit-identical across 1/2/4 workers, so one
  // reference serves all three server runs.
  for (const unsigned threads : {1u, 2u, 4u}) {
    const mc::McResult parallel = inProcessCampaign(threads);
    EXPECT_EQ(parallel.metrics[0], reference.metrics[0])
        << threads << " workers";

    CampaignServer server;
    const std::vector<std::string> frames = runLine(
        server, makeRequest("bits", kInverterDeck, kSamples, threads, 16));
    EXPECT_GE(countProgress(frames), 3) << threads << " workers";

    const JsonValue frame = finalFrameOf(frames);
    ASSERT_EQ(frame.find("type")->string, "final") << threads << " workers";
    // %.17g serialization round-trips exactly: parsed values must be
    // BIT-equal to the in-process statistics.
    EXPECT_EQ(frame.find("mean")->number, summary.mean);
    EXPECT_EQ(frame.find("sigma")->number, summary.stddev);
    EXPECT_EQ(frame.find("median")->number, summary.median);
    EXPECT_EQ(frame.find("metrics_fnv1a")->string, refHash);
    EXPECT_DOUBLE_EQ(frame.find("ok")->number,
                     static_cast<double>(kSamples));
  }
}

TEST(CampaignServer, RepeatRequestGoesWarmWithIdenticalBits) {
  CampaignServer server;
  const std::string request =
      makeRequest("warmth", kInverterDeck, kSamples, 2, 16);

  const JsonValue cold = finalFrameOf(runLine(server, request));
  ASSERT_EQ(cold.find("type")->string, "final");
  EXPECT_EQ(cold.find("cache")->string, "cold");

  const JsonValue warm = finalFrameOf(runLine(server, request));
  ASSERT_EQ(warm.find("type")->string, "final");
  EXPECT_EQ(warm.find("cache")->string, "warm");
  EXPECT_EQ(warm.find("metrics_fnv1a")->string,
            cold.find("metrics_fnv1a")->string);

  const auto stats = server.cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CampaignServer, InterleavedCampaignsMatchTheirSoloRuns) {
  // Solo baselines, one per topology.
  std::string soloInvHash;
  std::string soloDivHash;
  {
    CampaignServer solo;
    soloInvHash = finalFrameOf(runLine(solo, makeRequest("a", kInverterDeck,
                                                         kSamples, 2, 12)))
                      .find("metrics_fnv1a")
                      ->string;
    soloDivHash = finalFrameOf(runLine(solo, makeRequest("b", kDividerDeck,
                                                         kSamples, 2, 12)))
                      .find("metrics_fnv1a")
                      ->string;
  }

  // Two concurrent connections, two topologies: campaigns interleave at
  // chunk granularity on the shared worker pool and session cache.
  CampaignServer server;
  std::vector<std::string> invFrames;
  std::vector<std::string> divFrames;
  std::thread invThread([&] {
    invFrames =
        runLine(server, makeRequest("a", kInverterDeck, kSamples, 2, 12));
  });
  std::thread divThread([&] {
    divFrames =
        runLine(server, makeRequest("b", kDividerDeck, kSamples, 2, 12));
  });
  invThread.join();
  divThread.join();

  EXPECT_GE(countProgress(invFrames), 3);
  EXPECT_GE(countProgress(divFrames), 3);
  const JsonValue invFinal = finalFrameOf(invFrames);
  const JsonValue divFinal = finalFrameOf(divFrames);
  ASSERT_EQ(invFinal.find("type")->string, "final");
  ASSERT_EQ(divFinal.find("type")->string, "final");
  EXPECT_EQ(invFinal.find("id")->string, "a");
  EXPECT_EQ(divFinal.find("id")->string, "b");
  // Concurrency must not leak into results: same bits as the solo runs.
  EXPECT_EQ(invFinal.find("metrics_fnv1a")->string, soloInvHash);
  EXPECT_EQ(divFinal.find("metrics_fnv1a")->string, soloDivHash);
}

// --- statistical tier over the wire ----------------------------------------

TEST(CampaignServer, StatisticalTierStreamsBlockedChunks) {
  CampaignServer server;
  std::string req = "{\"id\":\"st\",\"deck\":";
  appendJsonString(req, kInverterDeck);
  req += ",\"samples\":96,\"seed\":3,\"threads\":2"
         ",\"mode\":{\"tier\":\"statistical\",\"solver\":\"reusePivot\"}"
         ",\"stream_every\":24,\"kde_every\":48,\"kde_points\":16"
         ",\"measure\":{\"probes\":[\"out\"],\"spec\":{\"min\":0.2}}}";
  const std::vector<std::string> frames = runLine(server, req);

  // stream_every=24 rounds up to the 32-sample warm-chain block: 3 chunks.
  EXPECT_EQ(countProgress(frames), 3);
  int kdeFrames = 0;
  for (const std::string& f : frames)
    if (f.find("\"type\":\"kde\"") != std::string::npos) ++kdeFrames;
  EXPECT_GE(kdeFrames, 1);

  const JsonValue frame = finalFrameOf(frames);
  ASSERT_EQ(frame.find("type")->string, "final");
  EXPECT_EQ(frame.find("health")->string, "OK");
  ASSERT_NE(frame.find("yield"), nullptr);
  EXPECT_FALSE(frame.find("yield")->isNull());
}

}  // namespace
}  // namespace vsstat::serve
