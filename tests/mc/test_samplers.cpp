// Sample generators: stratification, low-discrepancy structure, moments,
// determinism, and the variance-reduction property that motivates them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "mc/samplers.hpp"
#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::mc {
namespace {

TEST(Samplers, ValidateConstructionAndIndices) {
  EXPECT_THROW(IidSampler(0, 10, 1), InvalidArgumentError);
  EXPECT_THROW(LatinHypercubeSampler(2, 0, 1), InvalidArgumentError);
  EXPECT_THROW(HaltonSampler(65, 10, 1), InvalidArgumentError);

  const IidSampler s(3, 4, 1);
  EXPECT_EQ(s.dimension(), 3u);
  EXPECT_EQ(s.samples(), 4u);
  EXPECT_THROW((void)s.standardNormals(4), InvalidArgumentError);
}

TEST(Samplers, IidIsDeterministicPerSeedAndIndex) {
  const IidSampler a(4, 8, 42);
  const IidSampler b(4, 8, 42);
  EXPECT_EQ(a.standardNormals(3), b.standardNormals(3));
  EXPECT_NE(a.standardNormals(3), a.standardNormals(4));

  const IidSampler c(4, 8, 43);
  EXPECT_NE(a.standardNormals(3), c.standardNormals(3));
}

TEST(Samplers, LatinHypercubeStratifiesEveryDimension) {
  constexpr std::size_t kN = 32;
  const LatinHypercubeSampler s(3, kN, 7);

  for (std::size_t d = 0; d < 3; ++d) {
    std::set<int> strata;
    for (std::size_t i = 0; i < kN; ++i) {
      const double u = stats::normalCdf(s.standardNormals(i)[d]);
      strata.insert(static_cast<int>(u * kN));
    }
    // Every stratum hit exactly once.
    EXPECT_EQ(strata.size(), kN) << "dimension " << d;
  }
}

TEST(Samplers, LatinHypercubeMomentsAreStandardNormal) {
  constexpr std::size_t kN = 2000;
  const LatinHypercubeSampler s(2, kN, 11);
  double sum = 0.0;
  double sumSq = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double z = s.standardNormals(i)[0];
    sum += z;
    sumSq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sumSq / kN, 1.0, 0.03);
}

TEST(Samplers, RadicalInverseIsVanDerCorput) {
  // Base 2: 1 -> 0.5, 2 -> 0.25, 3 -> 0.75, 4 -> 0.125 ...
  EXPECT_DOUBLE_EQ(HaltonSampler::radicalInverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(HaltonSampler::radicalInverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(HaltonSampler::radicalInverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(HaltonSampler::radicalInverse(4, 2), 0.125);
  // Base 3: 1 -> 1/3, 2 -> 2/3, 3 -> 1/9.
  EXPECT_NEAR(HaltonSampler::radicalInverse(3, 3), 1.0 / 9.0, 1e-15);
}

TEST(Samplers, HaltonCoversDyadicIntervalsEvenly) {
  // First 2^k points of the base-2 dimension (after the rotation is
  // removed) hit each dyadic interval exactly once.
  constexpr std::size_t kN = 16;
  const HaltonSampler s(1, kN, 5);
  // Recover the rotation from point 0: u0 = RI(1,2) + shift mod 1.
  const double u0 = stats::normalCdf(s.standardNormals(0)[0]);
  const double shift = u0 - 0.5;
  std::set<int> cells;
  for (std::size_t i = 0; i < kN; ++i) {
    double u = stats::normalCdf(s.standardNormals(i)[0]) - shift;
    u -= std::floor(u);
    cells.insert(static_cast<int>(u * kN));
  }
  EXPECT_EQ(cells.size(), kN);
}

TEST(Samplers, VarianceReductionOnASmoothFunction) {
  // Mean of f(z) = sum(z_d): all three estimators are unbiased, but the
  // stratified/low-discrepancy designs shrink the estimator variance by
  // a large factor on this (additive, smooth) integrand.
  constexpr std::size_t kDim = 4;
  constexpr std::size_t kN = 64;
  constexpr int kReps = 30;

  const auto estimatorVariance = [&](auto makeSampler) {
    double sum = 0.0;
    double sumSq = 0.0;
    for (int r = 0; r < kReps; ++r) {
      const auto sampler = makeSampler(static_cast<std::uint64_t>(r + 1));
      double mean = 0.0;
      for (std::size_t i = 0; i < kN; ++i) {
        const auto z = sampler.standardNormals(i);
        double f = 0.0;
        for (double v : z) f += v;
        mean += f;
      }
      mean /= kN;
      sum += mean;
      sumSq += mean * mean;
    }
    return sumSq / kReps - (sum / kReps) * (sum / kReps);
  };

  const double varIid = estimatorVariance(
      [](std::uint64_t s) { return IidSampler(kDim, kN, s); });
  const double varLhs = estimatorVariance(
      [](std::uint64_t s) { return LatinHypercubeSampler(kDim, kN, s); });
  const double varHalton = estimatorVariance(
      [](std::uint64_t s) { return HaltonSampler(kDim, kN, s); });

  EXPECT_LT(varLhs, 0.05 * varIid);
  EXPECT_LT(varHalton, 0.25 * varIid);
}

}  // namespace
}  // namespace vsstat::mc
