#include "mc/providers.hpp"

#include <gtest/gtest.h>

#include "measure/device_metrics.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"

namespace vsstat::mc {
namespace {

using models::DeviceType;
using models::geometryNm;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

TEST(VsProvider, InstancesVaryAroundNominal) {
  VsStatisticalProvider p(models::defaultVsNmos(), models::defaultVsPmos(),
                          someAlphas(), someAlphas(), stats::Rng(7));
  const auto geom = geometryNm(600, 40);
  stats::MomentAccumulator acc;
  for (int i = 0; i < 500; ++i) {
    const auto inst = p.make(DeviceType::Nmos, "M", geom);
    acc.add(measure::idsat(*inst.model, inst.geometry, 0.9));
  }
  EXPECT_GT(acc.stddev(), 0.0);
  EXPECT_NEAR(acc.stddev() / acc.mean(), 0.035, 0.02);  // few-% mismatch
}

TEST(VsProvider, ZeroAlphasReproduceNominalExactly) {
  VsStatisticalProvider p(models::defaultVsNmos(), models::defaultVsPmos(),
                          models::PelgromAlphas{}, models::PelgromAlphas{},
                          stats::Rng(7));
  const auto geom = geometryNm(600, 40);
  const models::VsModel nominal(models::defaultVsNmos());
  const auto inst = p.make(DeviceType::Nmos, "M", geom);
  EXPECT_DOUBLE_EQ(measure::idsat(*inst.model, inst.geometry, 0.9),
                   measure::idsat(nominal, geom, 0.9));
}

TEST(VsProvider, PolarityRouting) {
  VsStatisticalProvider p(models::defaultVsNmos(), models::defaultVsPmos(),
                          someAlphas(), someAlphas(), stats::Rng(3));
  EXPECT_EQ(p.make(DeviceType::Nmos, "N", geometryNm(300, 40)).model->deviceType(),
            DeviceType::Nmos);
  EXPECT_EQ(p.make(DeviceType::Pmos, "P", geometryNm(300, 40)).model->deviceType(),
            DeviceType::Pmos);
}

TEST(BsimProvider, InstancesVaryAroundNominal) {
  BsimStatisticalProvider p(
      models::defaultBsimNmos(), models::defaultBsimPmos(),
      models::defaultBsimMismatchNmos(), models::defaultBsimMismatchPmos(),
      stats::Rng(11));
  const auto geom = geometryNm(600, 40);
  stats::MomentAccumulator acc;
  for (int i = 0; i < 500; ++i) {
    const auto inst = p.make(DeviceType::Nmos, "M", geom);
    acc.add(measure::log10Ioff(*inst.model, inst.geometry, 0.9));
  }
  EXPECT_GT(acc.stddev(), 0.05);
  EXPECT_LT(acc.stddev(), 0.5);
}

TEST(Providers, SameSeedSameSequence) {
  const auto geom = geometryNm(600, 40);
  VsStatisticalProvider p1(models::defaultVsNmos(), models::defaultVsPmos(),
                           someAlphas(), someAlphas(), stats::Rng(42));
  VsStatisticalProvider p2(models::defaultVsNmos(), models::defaultVsPmos(),
                           someAlphas(), someAlphas(), stats::Rng(42));
  for (int i = 0; i < 10; ++i) {
    const auto a = p1.make(DeviceType::Nmos, "M", geom);
    const auto b = p2.make(DeviceType::Nmos, "M", geom);
    EXPECT_DOUBLE_EQ(measure::idsat(*a.model, a.geometry, 0.9),
                     measure::idsat(*b.model, b.geometry, 0.9));
  }
}

}  // namespace
}  // namespace vsstat::mc
