// Regression test for the contract documented in mc/runner.hpp: campaign
// results are bit-identical regardless of thread count, because every sample
// draws from a child RNG derived only from (campaign seed, sample index) and
// results are collected in sample-index order.  This must hold on the
// persistent thread pool exactly as it did with spawn-per-call threads.
#include "mc/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace vsstat::mc {
namespace {

McResult runWith(unsigned threads, std::uint64_t seed, bool withFailures) {
  McOptions opt;
  opt.samples = 600;
  opt.seed = seed;
  opt.threads = threads;
  return runCampaign(
      opt, 3,
      [withFailures](std::size_t i, stats::Rng& rng, std::vector<double>& out) {
        const double a = rng.normal();
        const double b = rng.uniform(-1.0, 1.0);
        if (withFailures && std::fabs(a) > 1.5) {
          throw ConvergenceError("non-convergent corner", 80);
        }
        out[0] = a;
        out[1] = b;
        out[2] = a * b + static_cast<double>(i);
      });
}

void expectBitIdentical(const McResult& lhs, const McResult& rhs) {
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size());
  EXPECT_EQ(lhs.failures, rhs.failures);
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m) {
    ASSERT_EQ(lhs.metrics[m].size(), rhs.metrics[m].size()) << "metric " << m;
    // operator== on vector<double> compares element bits (no tolerance).
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << "metric " << m;
  }
}

TEST(McDeterminism, BitIdenticalAcrossThreadCounts) {
  const McResult t1 = runWith(1, 42, /*withFailures=*/false);
  const McResult t2 = runWith(2, 42, /*withFailures=*/false);
  const McResult t8 = runWith(8, 42, /*withFailures=*/false);
  expectBitIdentical(t1, t2);
  expectBitIdentical(t1, t8);
  EXPECT_EQ(t1.failures, 0);
  EXPECT_EQ(t1.sampleCount(), 600u);
}

TEST(McDeterminism, BitIdenticalAcrossThreadCountsWithFailures) {
  const McResult t1 = runWith(1, 7, /*withFailures=*/true);
  const McResult t2 = runWith(2, 7, /*withFailures=*/true);
  const McResult t8 = runWith(8, 7, /*withFailures=*/true);
  // Some samples must actually have thrown for this test to bite.
  EXPECT_GT(t1.failures, 0);
  EXPECT_LT(t1.failures, 600);
  expectBitIdentical(t1, t2);
  expectBitIdentical(t1, t8);
}

TEST(McDeterminism, RepeatedCampaignsOnTheSamePoolAreIdentical) {
  // Per-worker scratch buffers persist across campaigns; reuse must not
  // leak state between campaigns.
  const McResult first = runWith(8, 1234, /*withFailures=*/true);
  const McResult second = runWith(8, 1234, /*withFailures=*/true);
  expectBitIdentical(first, second);
}

}  // namespace
}  // namespace vsstat::mc
