#include "mc/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace vsstat::mc {
namespace {

TEST(McRunner, CollectsAllSamples) {
  McOptions opt;
  opt.samples = 100;
  const McResult r = runCampaign(
      opt, 2, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        out[0] = static_cast<double>(i);
        out[1] = 2.0 * static_cast<double>(i);
      });
  EXPECT_EQ(r.sampleCount(), 100u);
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.metrics.size(), 2u);
}

TEST(McRunner, DeterministicAcrossThreadCounts) {
  const auto run = [](unsigned threads) {
    McOptions opt;
    opt.samples = 500;
    opt.seed = 99;
    opt.threads = threads;
    const McResult r = runCampaign(
        opt, 1, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
          out[0] = rng.normal();
        });
    return stats::mean(r.metrics[0]);
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

TEST(McRunner, SampleRngsAreDecorrelated) {
  McOptions opt;
  opt.samples = 20000;
  const McResult r = runCampaign(
      opt, 2, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        out[0] = rng.normal();
        out[1] = rng.normal();
      });
  // Mean near zero and consecutive samples uncorrelated.
  EXPECT_NEAR(stats::mean(r.metrics[0]), 0.0, 0.03);
  EXPECT_NEAR(stats::correlation(r.metrics[0], r.metrics[1]), 0.0, 0.03);
}

TEST(McRunner, FailedSamplesAreDroppedAndCounted) {
  McOptions opt;
  opt.samples = 50;
  const McResult r = runCampaign(
      opt, 1, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        if (i % 5 == 0) throw std::runtime_error("non-convergent corner");
        out[0] = 1.0;
      });
  EXPECT_EQ(r.failures, 10);
  EXPECT_EQ(r.sampleCount(), 40u);
}

TEST(McRunner, DifferentSeedsGiveDifferentStreams) {
  const auto run = [](std::uint64_t seed) {
    McOptions opt;
    opt.samples = 50;
    opt.seed = seed;
    const McResult r = runCampaign(
        opt, 1, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
          out[0] = rng.normal();
        });
    return r.metrics[0][0];
  };
  EXPECT_NE(run(1), run(2));
}

TEST(McRunner, SampleCountEnforcesTheSharedRowLengthContract) {
  // Rows are filled in lockstep (failure-drop contract, see runner.hpp):
  // a campaign result always satisfies sampleCount() + failures == samples.
  McOptions opt;
  opt.samples = 40;
  opt.seed = 9;
  const McResult r = runCampaign(
      opt, 2, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        if (i % 5 == 0) throw std::runtime_error("dropped corner");
        out[0] = static_cast<double>(i);
        out[1] = -static_cast<double>(i);
      });
  EXPECT_EQ(r.metrics[0].size(), r.metrics[1].size());
  EXPECT_EQ(static_cast<int>(r.sampleCount()) + r.failures, opt.samples);

  // Hand-tampered ragged rows must be rejected loudly, not silently
  // reported as the first row's length.
  McResult ragged = r;
  ragged.metrics[1].pop_back();
  EXPECT_THROW((void)ragged.sampleCount(), InvalidArgumentError);
}

TEST(McRunner, RejectsBadOptions) {
  McOptions opt;
  opt.samples = 0;
  EXPECT_THROW(
      runCampaign(opt, 1,
                  [](std::size_t, stats::Rng&, std::vector<double>&) {}),
      InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::mc
