#include "mc/runner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace vsstat::mc {
namespace {

TEST(McRunner, CollectsAllSamples) {
  McOptions opt;
  opt.samples = 100;
  const McResult r = runCampaign(
      opt, 2, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        out[0] = static_cast<double>(i);
        out[1] = 2.0 * static_cast<double>(i);
      });
  EXPECT_EQ(r.sampleCount(), 100u);
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.metrics.size(), 2u);
}

TEST(McRunner, DeterministicAcrossThreadCounts) {
  const auto run = [](unsigned threads) {
    McOptions opt;
    opt.samples = 500;
    opt.seed = 99;
    opt.threads = threads;
    const McResult r = runCampaign(
        opt, 1, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
          out[0] = rng.normal();
        });
    return stats::mean(r.metrics[0]);
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

TEST(McRunner, SampleRngsAreDecorrelated) {
  McOptions opt;
  opt.samples = 20000;
  const McResult r = runCampaign(
      opt, 2, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        out[0] = rng.normal();
        out[1] = rng.normal();
      });
  // Mean near zero and consecutive samples uncorrelated.
  EXPECT_NEAR(stats::mean(r.metrics[0]), 0.0, 0.03);
  EXPECT_NEAR(stats::correlation(r.metrics[0], r.metrics[1]), 0.0, 0.03);
}

TEST(McRunner, FailedSamplesAreDroppedAndCounted) {
  McOptions opt;
  opt.samples = 50;
  const McResult r = runCampaign(
      opt, 1, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        if (i % 5 == 0) throw ConvergenceError("non-convergent corner", 80);
        out[0] = 1.0;
      });
  EXPECT_EQ(r.failures, 10);
  EXPECT_EQ(r.sampleCount(), 40u);
  EXPECT_EQ(r.failuresOf(FailureClass::nonConvergence), 10);
  EXPECT_EQ(r.rescued, 0);
}

TEST(McRunner, FailuresAreClassifiedPerClassWithFirstFailureDiagnostics) {
  McOptions opt;
  opt.samples = 40;
  opt.seed = 3;
  const McResult r = runCampaign(
      opt, 1, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        if (i % 10 == 3) throw SingularMatrixError("pivot breakdown", 2);
        if (i % 10 == 5) throw NonFiniteError("NaN lane");
        if (i % 10 == 7) throw MetricDomainError("output never fell");
        out[0] = 1.0;
      });
  EXPECT_EQ(r.failures, 12);
  EXPECT_EQ(r.failuresOf(FailureClass::singular), 4);
  EXPECT_EQ(r.failuresOf(FailureClass::nonFinite), 4);
  EXPECT_EQ(r.failuresOf(FailureClass::metricDomain), 4);
  EXPECT_EQ(r.failuresOf(FailureClass::nonConvergence), 0);
  EXPECT_EQ(r.failuresOf(FailureClass::unclassified), 0);
  // First failure is the lowest-indexed one, independent of scheduling.
  ASSERT_TRUE(r.firstFailure.valid);
  EXPECT_EQ(r.firstFailure.sampleIndex, 3u);
  EXPECT_EQ(r.firstFailure.failureClass, FailureClass::singular);
  EXPECT_NE(r.firstFailure.message.find("pivot breakdown"),
            std::string::npos);
}

TEST(McRunner, SingularFailuresAreCaughtAsConvergenceErrors) {
  // SingularMatrixError derives from ConvergenceError (homotopy handlers
  // catch the base) yet carries the finer class for the taxonomy.
  try {
    throw SingularMatrixError("singular to working precision", 5);
  } catch (const ConvergenceError& e) {
    EXPECT_EQ(e.failureClass(), FailureClass::singular);
    EXPECT_EQ(e.iterations(), 5);
  }
}

TEST(McRunner, NonSampleFailuresPropagateOutOfTheCampaign) {
  // A programming error must abort the campaign, never be counted as a
  // dropped corner.
  McOptions opt;
  opt.samples = 8;
  opt.threads = 2;
  EXPECT_THROW(
      runCampaign(opt, 1,
                  [](std::size_t i, stats::Rng&, std::vector<double>& out) {
                    if (i == 5) throw std::runtime_error("logic bug");
                    out[0] = 1.0;
                  }),
      std::runtime_error);
}

TEST(McRunner, RescuedSamplesAreCountedViaTheSampleContext) {
  McOptions opt;
  opt.samples = 30;
  const McResult r = runCampaign(
      opt, 1,
      SampleFnEx([](std::size_t i, stats::Rng&, std::vector<double>& out,
                    SampleContext& ctx) {
        out[0] = 1.0;
        if (i % 3 == 0) ctx.rescueAttempts = 1;  // simulated ladder rescue
      }));
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.rescued, 10);
}

TEST(McRunner, DifferentSeedsGiveDifferentStreams) {
  const auto run = [](std::uint64_t seed) {
    McOptions opt;
    opt.samples = 50;
    opt.seed = seed;
    const McResult r = runCampaign(
        opt, 1, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
          out[0] = rng.normal();
        });
    return r.metrics[0][0];
  };
  EXPECT_NE(run(1), run(2));
}

TEST(McRunner, SampleCountEnforcesTheSharedRowLengthContract) {
  // Rows are filled in lockstep (failure-drop contract, see runner.hpp):
  // a campaign result always satisfies sampleCount() + failures == samples.
  McOptions opt;
  opt.samples = 40;
  opt.seed = 9;
  const McResult r = runCampaign(
      opt, 2, [](std::size_t i, stats::Rng&, std::vector<double>& out) {
        if (i % 5 == 0) throw ConvergenceError("dropped corner", 80);
        out[0] = static_cast<double>(i);
        out[1] = -static_cast<double>(i);
      });
  EXPECT_EQ(r.metrics[0].size(), r.metrics[1].size());
  EXPECT_EQ(static_cast<int>(r.sampleCount()) + r.failures, opt.samples);

  // Hand-tampered ragged rows must be rejected loudly, not silently
  // reported as the first row's length.
  McResult ragged = r;
  ragged.metrics[1].pop_back();
  EXPECT_THROW((void)ragged.sampleCount(), InvalidArgumentError);
}

TEST(McRunner, RejectsBadOptions) {
  McOptions opt;
  opt.samples = 0;
  EXPECT_THROW(
      runCampaign(opt, 1,
                  [](std::size_t, stats::Rng&, std::vector<double>&) {}),
      InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::mc
