// Parameterized yield properties: Gaussian yield against empirical Monte
// Carlo across a grid of (mean, sigma, spec window) cases.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "stats/rng.hpp"
#include "yield/parametric.hpp"

namespace vsstat::yield {
namespace {

struct YieldCase {
  double mean;
  double sigma;
  double lower;  ///< in sigmas around the mean
  double upper;
};

class GaussianVsEmpirical : public ::testing::TestWithParam<YieldCase> {};

TEST_P(GaussianVsEmpirical, AgreeWithinSamplingError) {
  const YieldCase& p = GetParam();
  const SpecLimit spec{p.mean + p.lower * p.sigma,
                       p.mean + p.upper * p.sigma};
  const double analytic = gaussianYield(p.mean, p.sigma, spec);

  stats::Rng rng(0xABCDEF);
  std::vector<double> samples;
  samples.reserve(60000);
  for (int i = 0; i < 60000; ++i)
    samples.push_back(rng.normal(p.mean, p.sigma));
  const double empirical = empiricalYield(samples, spec);

  // Binomial sampling error at n = 60000 stays below ~0.6% absolute.
  EXPECT_NEAR(empirical, analytic, 0.006);

  // And the Wilson interval must cover the analytic value.
  const YieldEstimate e = yieldOfSamples(samples, spec, 2.6);
  EXPECT_GE(analytic, e.lower - 1e-12);
  EXPECT_LE(analytic, e.upper + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    WindowGrid, GaussianVsEmpirical,
    ::testing::Values(YieldCase{0.0, 1.0, -1.0, 1.0},
                      YieldCase{0.0, 1.0, -2.0, 2.0},
                      YieldCase{0.0, 1.0, -3.0, 3.0},
                      YieldCase{5.0, 0.5, -1.5, 2.5},
                      YieldCase{-2.0, 3.0, -0.5, 0.5},
                      YieldCase{10.0, 2.0, -4.0, 0.0}),
    [](const ::testing::TestParamInfo<YieldCase>& i) {
      return "case" + std::to_string(i.index);
    });

}  // namespace
}  // namespace vsstat::yield
