// Mean-shift importance sampling: unbiasedness on analytic Gaussian tail
// events, variance advantage over brute force, and the shift search.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/qq.hpp"
#include "util/error.hpp"
#include "yield/importance.hpp"

namespace vsstat::yield {
namespace {

TEST(ImportanceSampling, RecoverAnalyticOneDimensionalTail) {
  // P(z > 4) = 1 - Phi(4) = 3.167e-5.
  const FailureIndicator fails = [](const std::vector<double>& z) {
    return z[0] > 4.0;
  };
  ImportanceOptions opt;
  opt.samples = 20000;
  opt.seed = 5;
  const ImportanceResult r = importanceSample(fails, {4.0}, opt);

  const double truth = 1.0 - stats::normalCdf(4.0);
  EXPECT_NEAR(r.probability / truth, 1.0, 0.05);
  EXPECT_LT(r.relStdError, 0.03);
  EXPECT_GT(r.failingDraws, 5000);  // shifted onto the boundary: ~half fail
}

TEST(ImportanceSampling, RecoverLinearBoundaryInThreeDimensions) {
  // Fail when a.z > c with |a| = 1: P = 1 - Phi(c).
  const std::vector<double> a = {0.6, 0.0, 0.8};
  constexpr double kC = 3.5;
  const FailureIndicator fails = [&](const std::vector<double>& z) {
    return a[0] * z[0] + a[1] * z[1] + a[2] * z[2] > kC;
  };
  // Most probable failure point: c * a.
  const std::vector<double> shift = {kC * a[0], kC * a[1], kC * a[2]};
  ImportanceOptions opt;
  opt.samples = 20000;
  opt.seed = 6;
  const ImportanceResult r = importanceSample(fails, shift, opt);
  const double truth = 1.0 - stats::normalCdf(kC);
  EXPECT_NEAR(r.probability / truth, 1.0, 0.05);
}

TEST(ImportanceSampling, AgreesWithBruteForceOnCommonEvent) {
  // Moderate event (P ~ 0.159): IS and brute force must agree -- checks
  // the weights are an unbiased correction, not just a tail trick.
  const FailureIndicator fails = [](const std::vector<double>& z) {
    return z[0] > 1.0;
  };
  ImportanceOptions opt;
  opt.samples = 40000;
  opt.seed = 7;
  const ImportanceResult is = importanceSample(fails, {1.0}, opt);
  const ImportanceResult bf = bruteForceProbability(fails, 1, opt);
  const double truth = 1.0 - stats::normalCdf(1.0);
  EXPECT_NEAR(is.probability / truth, 1.0, 0.03);
  EXPECT_NEAR(bf.probability / truth, 1.0, 0.03);
}

TEST(ImportanceSampling, BeatsBruteForceVarianceAtTheTail) {
  const FailureIndicator fails = [](const std::vector<double>& z) {
    return z[0] > 4.5;
  };
  ImportanceOptions opt;
  opt.samples = 10000;
  opt.seed = 8;
  const ImportanceResult is = importanceSample(fails, {4.5}, opt);
  const ImportanceResult bf = bruteForceProbability(fails, 1, opt);
  // Brute force sees essentially no failures at P ~ 3.4e-6 with 1e4
  // samples; IS resolves it with a tight relative error.
  EXPECT_EQ(bf.failingDraws, 0);
  EXPECT_GT(is.failingDraws, 1000);
  EXPECT_LT(is.relStdError, 0.05);
  const double truth = 1.0 - stats::normalCdf(4.5);
  EXPECT_NEAR(is.probability / truth, 1.0, 0.10);
}

TEST(ImportanceSampling, ValidatesInputs) {
  const FailureIndicator fails = [](const std::vector<double>&) {
    return false;
  };
  EXPECT_THROW((void)importanceSample(fails, {}, {}), InvalidArgumentError);
  ImportanceOptions one;
  one.samples = 1;
  EXPECT_THROW((void)importanceSample(fails, {1.0}, one),
               InvalidArgumentError);
  EXPECT_THROW((void)bruteForceProbability(fails, 0, {}),
               InvalidArgumentError);
}

TEST(FindFailureShift, LocatesTheNearestBoundary) {
  // Failure region: z1 > 3 (axis-aligned).  The search must pick the +z1
  // axis and place the shift just short of radius 3.
  const FailureIndicator fails = [](const std::vector<double>& z) {
    return z[1] > 3.0;
  };
  const std::vector<double> shift = findFailureShift(fails, 3);
  ASSERT_EQ(shift.size(), 3u);
  EXPECT_NEAR(shift[1], 0.9 * 3.0, 0.2);
  EXPECT_DOUBLE_EQ(shift[0], 0.0);
  EXPECT_DOUBLE_EQ(shift[2], 0.0);
}

TEST(FindFailureShift, UsesExtraDirectionsWhenTheyAreCloser) {
  // Failure region: z0 + z1 > 3 => boundary at radius 3/sqrt(2) ~ 2.12
  // along the diagonal, but at radius 3 along either axis.
  const FailureIndicator fails = [](const std::vector<double>& z) {
    return z[0] + z[1] > 3.0;
  };
  const std::vector<double> shift =
      findFailureShift(fails, 2, {{1.0, 1.0}});
  const double norm = std::hypot(shift[0], shift[1]);
  EXPECT_NEAR(norm, 0.9 * 3.0 / std::sqrt(2.0), 0.2);
  EXPECT_NEAR(shift[0], shift[1], 1e-9);
}

TEST(FindFailureShift, ThrowsWhenNothingFails) {
  const FailureIndicator fails = [](const std::vector<double>&) {
    return false;
  };
  EXPECT_THROW((void)findFailureShift(fails, 2), ConvergenceError);
}

}  // namespace
}  // namespace vsstat::yield
