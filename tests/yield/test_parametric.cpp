// Parametric yield arithmetic: Gaussian yield against analytic CDF values,
// empirical yield, Wilson intervals.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "yield/parametric.hpp"

namespace vsstat::yield {
namespace {

TEST(SpecLimit, PassLogicCoversAllWindowShapes) {
  const SpecLimit open{};
  EXPECT_TRUE(open.passes(-1e30));
  EXPECT_TRUE(open.passes(1e30));

  const SpecLimit lowerOnly{0.0, std::nullopt};
  EXPECT_TRUE(lowerOnly.passes(0.0));
  EXPECT_FALSE(lowerOnly.passes(-1e-12));

  const SpecLimit band{-1.0, 1.0};
  EXPECT_TRUE(band.passes(0.5));
  EXPECT_FALSE(band.passes(1.5));
  EXPECT_FALSE(band.passes(-1.5));
}

TEST(GaussianYield, MatchesAnalyticNormalProbabilities) {
  // One-sided: P(X > mean - 3 sigma) = Phi(3) = 0.99865.
  EXPECT_NEAR(gaussianYield(0.0, 1.0, {-3.0, std::nullopt}), 0.99865, 1e-4);
  // Two-sided +/- 1 sigma: 68.27%.
  EXPECT_NEAR(gaussianYield(0.0, 1.0, {-1.0, 1.0}), 0.6827, 1e-3);
  // Shifted/scaled: spec [2, 6] on N(4, 1) is the same +/- 2 sigma window.
  EXPECT_NEAR(gaussianYield(4.0, 1.0, {2.0, 6.0}),
              gaussianYield(0.0, 1.0, {-2.0, 2.0}), 1e-12);
  // No bounds: certain pass.
  EXPECT_DOUBLE_EQ(gaussianYield(0.0, 1.0, {}), 1.0);
  EXPECT_THROW((void)gaussianYield(0.0, 0.0, {}), InvalidArgumentError);
}

TEST(EmpiricalYield, CountsWindowMembership) {
  const std::vector<double> s{0.1, 0.2, 0.3, 0.4, 0.9};
  EXPECT_DOUBLE_EQ(empiricalYield(s, {std::nullopt, 0.5}), 0.8);
  EXPECT_DOUBLE_EQ(empiricalYield(s, {0.15, 0.35}), 0.4);
  EXPECT_THROW((void)empiricalYield({}, {}), InvalidArgumentError);
}

TEST(WilsonInterval, KnownValues) {
  // 95% Wilson interval for 90/100: approximately [0.825, 0.944].
  const YieldEstimate e = yieldWithConfidence(90, 100);
  EXPECT_DOUBLE_EQ(e.yield, 0.9);
  EXPECT_NEAR(e.lower, 0.825, 0.005);
  EXPECT_NEAR(e.upper, 0.944, 0.005);

  // Zero successes still gives a positive upper bound (rule-of-three-ish).
  const YieldEstimate zero = yieldWithConfidence(0, 100);
  EXPECT_DOUBLE_EQ(zero.yield, 0.0);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.01);
  EXPECT_LT(zero.upper, 0.06);

  // All successes clamp the upper bound at 1.
  const YieldEstimate all = yieldWithConfidence(50, 50);
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
  EXPECT_LT(all.lower, 1.0);
}

TEST(WilsonInterval, ValidatesInputs) {
  EXPECT_THROW((void)yieldWithConfidence(1, 0), InvalidArgumentError);
  EXPECT_THROW((void)yieldWithConfidence(-1, 10), InvalidArgumentError);
  EXPECT_THROW((void)yieldWithConfidence(11, 10), InvalidArgumentError);
  EXPECT_THROW((void)yieldWithConfidence(5, 10, 0.0), InvalidArgumentError);
}

TEST(YieldOfSamples, CombinesCountingAndInterval) {
  std::vector<double> s(200, 0.5);
  s[0] = 2.0;  // one failure
  const YieldEstimate e = yieldOfSamples(s, {std::nullopt, 1.0});
  EXPECT_DOUBLE_EQ(e.yield, 199.0 / 200.0);
  EXPECT_EQ(e.passed, 199);
  EXPECT_EQ(e.total, 200);
  EXPECT_LT(e.lower, e.yield);
  EXPECT_GT(e.upper, e.yield);
}

}  // namespace
}  // namespace vsstat::yield
