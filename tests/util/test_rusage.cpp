#include "util/rusage.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace vsstat::util {
namespace {

TEST(RunIsolated, ReportsSuccessExitCode) {
  const CampaignUsage u = runIsolated([] { /* trivial workload */ });
  EXPECT_EQ(u.exitCode, 0);
  EXPECT_GE(u.wallSeconds, 0.0);
  EXPECT_GT(u.maxRssMiB, 0.0);
}

TEST(RunIsolated, ReportsFailureExitCode) {
  const CampaignUsage u =
      runIsolated([] { throw std::runtime_error("child fails"); });
  EXPECT_EQ(u.exitCode, 1);
}

TEST(RunIsolated, ChildMemoryDoesNotLeakIntoParent) {
  // Allocate ~64 MiB in the child; the parent's measurement of a later
  // trivial child must not inherit that RSS.
  const CampaignUsage big = runIsolated([] {
    std::vector<double> hog(8 * 1024 * 1024, 1.0);
    volatile double sink = hog[123];
    (void)sink;
  });
  const CampaignUsage small = runIsolated([] {});
  EXPECT_GT(big.maxRssMiB, small.maxRssMiB);
}

TEST(RunInProcess, MeasuresWallTime) {
  const CampaignUsage u = runInProcess([] {
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) x = x + static_cast<double>(i);
  });
  EXPECT_EQ(u.exitCode, 0);
  EXPECT_GE(u.wallSeconds, 0.0);
}

}  // namespace
}  // namespace vsstat::util
