#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace vsstat::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.addRow({"Idsat", "33.1"});
  t.addRow({"Ioff", "0.13"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("Idsat"), std::string::npos);
  EXPECT_NE(s.find("0.13"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
  EXPECT_EQ(t.columnCount(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InvalidArgumentError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvalidArgumentError);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"x"});
  t.addRow({"1"});
  t.addSeparator();
  t.addRow({"2"});
  std::ostringstream os;
  t.print(os);
  // header rule + separator + top/bottom: at least 4 rule lines
  int rules = 0;
  std::istringstream is(os.str());
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_GE(rules, 4);
}

TEST(TableFormat, FixedPrecision) {
  EXPECT_EQ(formatValue(3.14159, 2), "3.14");
  EXPECT_EQ(formatValue(-1.0, 1), "-1.0");
}

TEST(TableFormat, Scientific) {
  EXPECT_EQ(formatSci(12345.0, 2), "1.23e+04");
}

TEST(TableFormat, EngineeringPicksSensiblePrefix) {
  EXPECT_EQ(formatEng(3.3e-5, "A", 1), "33.0 uA");
  EXPECT_EQ(formatEng(4.2e-12, "s", 1), "4.2 ps");
  EXPECT_EQ(formatEng(1.5e8, "Hz", 1), "150.0 MHz");
}

TEST(TableFormat, EngineeringHandlesZero) {
  EXPECT_EQ(formatEng(0.0, "A", 1), "0.0 A");
}

}  // namespace
}  // namespace vsstat::util
