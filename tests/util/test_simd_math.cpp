// Kernel-vs-libm accuracy sweeps for util/simd_math.hpp.
//
// Every bound asserted here is the documented contract of the header (the
// measured worst cases carry 2-4x headroom).  The sweeps cover the full VS
// argument ranges: logistic/softplus arguments from deep subthreshold (exp
// underflow, |x| far past the +-34 reference clamp) to strong inversion,
// log1p over the softplus image [0, 1e18], and the Fsat pow corners (ratio
// spanning 1e-12..50, beta and 1/beta exponents, ratio == 0 exactly).
//
// The kernels dispatch to AVX2+FMA clones where the host supports them;
// both paths share one body (simd_math_kernels.inc) and the same bounds,
// so this suite validates whichever path the CI host runs.
#include "util/simd_math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace vsstat::util::simd {
namespace {

/// Relative deviation from the libm reference; exact matches are 0, any
/// non-finite mismatch is pushed far beyond every bound.
double relErr(double got, double ref) {
  if (got == ref) return 0.0;
  if (!std::isfinite(got) || !std::isfinite(ref)) return 1e30;
  return std::fabs(got - ref) / std::fabs(ref);
}

class SimdMathTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 4097;  // odd: exercises the padded tail
  std::mt19937_64 rng{20260726};
  std::vector<double> x = std::vector<double>(kN);
  std::vector<double> out = std::vector<double>(kN);

  template <class Fill, class Kernel, class Ref>
  double worstRel(int reps, Fill fill, Kernel kernel, Ref ref) {
    double worst = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      for (double& v : x) v = fill();
      kernel(x.data(), out.data(), x.size());
      for (std::size_t i = 0; i < x.size(); ++i)
        worst = std::max(worst, relErr(out[i], ref(x[i])));
    }
    return worst;
  }
};

TEST_F(SimdMathTest, ExpFullRange) {
  std::uniform_real_distribution<double> d(-708.0, 708.0);
  EXPECT_LE(worstRel(
                50, [&] { return d(rng); },
                [](const double* a, double* o, std::size_t n) {
                  expArray(a, o, n);
                },
                [](double v) { return std::exp(v); }),
            1e-12);
}

TEST_F(SimdMathTest, ExpVsChainRangeIncludingSubthresholdUnderflow) {
  // The VS chain's logistic/softplus arguments: the reference tails clamp
  // at +-34, so the kernels must agree with libm through the whole band
  // around it (subthreshold currents live in exp(-34..0)).
  std::uniform_real_distribution<double> d(-60.0, 60.0);
  EXPECT_LE(worstRel(
                50, [&] { return d(rng); },
                [](const double* a, double* o, std::size_t n) {
                  expArray(a, o, n);
                },
                [](double v) { return std::exp(v); }),
            1e-12);
}

TEST_F(SimdMathTest, ExpSaturatesOutsideClampRange) {
  const double xs[4] = {-800.0, -709.0, 709.0, 800.0};
  double o[4];
  expArray(xs, o, 4);
  // Documented clamp: inputs fold to [-708, 708]; no infinities, no zeros.
  for (double v : o) EXPECT_TRUE(std::isfinite(v));
  EXPECT_DOUBLE_EQ(o[0], o[1]);
  EXPECT_DOUBLE_EQ(o[2], o[3]);
  EXPECT_GT(o[0], 0.0);
}

TEST_F(SimdMathTest, LogNormalPositives) {
  // Absolute bound: near x == 1 the result crosses 0, where a relative
  // bound is meaningless; away from the crossing |log| >= ~0.3 makes the
  // documented 4e-12 absolute bound a ~1e-11 relative one.
  std::uniform_real_distribution<double> mag(-300.0, 300.0);
  double worst = 0.0;
  for (int rep = 0; rep < 50; ++rep) {
    for (double& v : x) v = std::exp2(0.5 * mag(rng));
    logArray(x.data(), out.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double ref = std::log(x[i]);
      worst = std::max(worst, std::fabs(out[i] - ref) /
                                  std::max(1.0, std::fabs(ref)));
    }
  }
  EXPECT_LE(worst, 4e-12);
}

TEST_F(SimdMathTest, LogNearOneCancellation) {
  std::uniform_real_distribution<double> d(-0.3, 0.3);
  double worst = 0.0;
  for (int rep = 0; rep < 50; ++rep) {
    for (double& v : x) v = 1.0 + d(rng);
    logArray(x.data(), out.data(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      worst = std::max(worst, std::fabs(out[i] - std::log(x[i])));
  }
  EXPECT_LE(worst, 4e-12);
}

TEST_F(SimdMathTest, Log1pSoftplusImage) {
  // softplus feeds log1p with exp(eta) in [exp(-708), 1e18].
  std::uniform_real_distribution<double> mag(-18.0, 18.0);
  EXPECT_LE(worstRel(
                50, [&] { return std::pow(10.0, mag(rng)); },
                [](const double* a, double* o, std::size_t n) {
                  log1pArray(a, o, n);
                },
                [](double v) { return std::log1p(v); }),
            1e-11);
}

TEST_F(SimdMathTest, Log1pTinyIsExact) {
  // Below epsilon the correction term IS the answer: log1p(x) == x.
  const double xs[5] = {0.0, 1e-300, 1e-30, 1e-17, 4.9e-324};
  double o[5];
  log1pArray(xs, o, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(o[i], xs[i]) << "x=" << xs[i];
}

TEST_F(SimdMathTest, PowVsFsatDomain) {
  // Fsat corners: t = ratio^beta with ratio in [1e-12, 50] (deep linear
  // region through hard saturation) and both beta and 1/beta exponents.
  std::uniform_real_distribution<double> mb(-12.0, std::log10(50.0));
  std::uniform_real_distribution<double> dy(1.2, 2.5);
  std::vector<double> base(kN), y(kN);
  double worst = 0.0;
  for (int rep = 0; rep < 50; ++rep) {
    for (std::size_t i = 0; i < kN; ++i) {
      base[i] = std::pow(10.0, mb(rng));
      y[i] = (i % 2 != 0) ? dy(rng) : 1.0 / dy(rng);
    }
    powArray(base.data(), y.data(), out.data(), kN);
    for (std::size_t i = 0; i < kN; ++i)
      worst = std::max(worst, relErr(out[i], std::pow(base[i], y[i])));
  }
  EXPECT_LE(worst, 1e-9);
}

TEST_F(SimdMathTest, PowCorners) {
  // ratio == 0 must give exactly 0 (the Fsat numerator relies on it).
  const double base[4] = {0.0, 0.0, 1.0, 50.0};
  const double y[4] = {1.8, 0.55, 1.8, 2.0};
  double o[4];
  powArray(base, y, o, 4);
  EXPECT_EQ(o[0], 0.0);
  EXPECT_EQ(o[1], 0.0);
  EXPECT_NEAR(o[2], 1.0, 1e-12);
  EXPECT_NEAR(o[3], 2500.0, 2500.0 * 1e-11);
}

TEST_F(SimdMathTest, ArrayDriversMatchAtEveryLengthAndPosition) {
  // The padded-tail driver must give each element the same bits no matter
  // the array length or the element's block position: determinism of the
  // fast pipeline across bank layouts depends on it.
  std::uniform_real_distribution<double> d(-30.0, 30.0);
  std::vector<double> big(29), ref(29);
  for (double& v : big) v = d(rng);
  expArray(big.data(), ref.data(), big.size());
  for (std::size_t len = 1; len <= big.size(); ++len) {
    std::vector<double> o(len);
    expArray(big.data(), o.data(), len);
    for (std::size_t i = 0; i < len; ++i)
      EXPECT_EQ(o[i], ref[i]) << "len=" << len << " i=" << i;
  }
}

TEST_F(SimdMathTest, DispatchReportsAPath) {
  // Smoke: the dispatch decided something and the kernels run under it
  // (on CI hosts with AVX2 this exercises the clone TU).
  (void)usingAvx2();
  const double xs[1] = {1.0};
  double o[1];
  expArray(xs, o, 1);
  EXPECT_NEAR(o[0], 2.718281828459045, 1e-11);
}

}  // namespace
}  // namespace vsstat::util::simd
