#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace vsstat::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempDir {
  std::filesystem::path dir;
  TempDir() {
    dir = std::filesystem::temp_directory_path() / "vsstat_csv_test";
    std::filesystem::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

TEST(Csv, WritesHeaderAndNumericRows) {
  TempDir tmp;
  const std::string path = (tmp.dir / "a.csv").string();
  {
    CsvWriter w(path, {"x", "y"});
    w.writeRow(std::vector<double>{1.0, 2.5});
    w.writeRow(std::vector<double>{3.0, -4.0});
  }
  const std::string content = slurp(path);
  EXPECT_NE(content.find("x,y\n"), std::string::npos);
  EXPECT_NE(content.find("1,2.5\n"), std::string::npos);
  EXPECT_NE(content.find("3,-4\n"), std::string::npos);
}

TEST(Csv, CreatesParentDirectories) {
  TempDir tmp;
  const std::string path = (tmp.dir / "deep/nested/b.csv").string();
  CsvWriter w(path, {"v"});
  w.writeRow(std::vector<double>{7.0});
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(Csv, RejectsArityMismatch) {
  TempDir tmp;
  CsvWriter w((tmp.dir / "c.csv").string(), {"a", "b"});
  EXPECT_THROW(w.writeRow(std::vector<double>{1.0}), InvalidArgumentError);
}

TEST(Csv, WriteCsvHelperAlignsColumns) {
  TempDir tmp;
  const std::string path = (tmp.dir / "d.csv").string();
  writeCsv(path, {"t", "v"}, {{0.0, 1.0, 2.0}, {5.0, 6.0, 7.0}});
  const std::string content = slurp(path);
  EXPECT_NE(content.find("t,v"), std::string::npos);
  EXPECT_NE(content.find("2,7"), std::string::npos);
}

TEST(Csv, WriteCsvRejectsRaggedColumns) {
  TempDir tmp;
  EXPECT_THROW(
      writeCsv((tmp.dir / "e.csv").string(), {"a", "b"}, {{1.0}, {1.0, 2.0}}),
      InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::util
