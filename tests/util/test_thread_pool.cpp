#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vsstat::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallelFor(kCount, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadPathMatchesSerial) {
  std::vector<int> order;
  parallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallelFor(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  const auto run = [](unsigned threads) {
    std::vector<double> out(256);
    parallelFor(out.size(),
                [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(8));
}

TEST(EffectiveThreadCount, NonZeroPassesThrough) {
  EXPECT_EQ(effectiveThreadCount(3), 3u);
}

TEST(EffectiveThreadCount, ZeroResolvesToAtLeastOne) {
  EXPECT_GE(effectiveThreadCount(0), 1u);
}

}  // namespace
}  // namespace vsstat::util
