#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace vsstat::util {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallelFor(kCount, [&](std::size_t i) { visits[i].fetch_add(1); }, 4);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  bool called = false;
  parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadPathMatchesSerial) {
  std::vector<int> order;
  parallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallelFor(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  const auto run = [](unsigned threads) {
    std::vector<double> out(256);
    parallelFor(out.size(),
                [&](std::size_t i) { out[i] = static_cast<double>(i) * 1.5; },
                threads);
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(8));
}

TEST(EffectiveThreadCount, NonZeroPassesThrough) {
  EXPECT_EQ(effectiveThreadCount(3), 3u);
}

TEST(EffectiveThreadCount, ZeroResolvesToAtLeastOne) {
  EXPECT_GE(effectiveThreadCount(0), 1u);
}

TEST(ThreadPool, WorkersPersistAcrossCalls) {
  ThreadPool& pool = ThreadPool::instance();
  std::atomic<int> sum{0};
  pool.parallelFor(100, [&](std::size_t i) { sum += static_cast<int>(i); }, 4);
  const unsigned afterFirst = pool.workerCount();
  EXPECT_GE(afterFirst, 3u);  // caller is the fourth lane
  for (int round = 0; round < 5; ++round) {
    pool.parallelFor(100, [&](std::size_t) { sum += 1; }, 4);
  }
  // Same concurrency again: no new threads were spawned.
  EXPECT_EQ(pool.workerCount(), afterFirst);
}

TEST(ThreadPool, GrowsToLargerRequestsOnly) {
  ThreadPool& pool = ThreadPool::instance();
  pool.parallelFor(64, [](std::size_t) {}, 6);
  const unsigned grown = pool.workerCount();
  EXPECT_GE(grown, 5u);
  pool.parallelFor(64, [](std::size_t) {}, 2);  // smaller request: no growth
  EXPECT_EQ(pool.workerCount(), grown);
}

TEST(ThreadPool, NestedParallelForRunsSeriallyWithoutDeadlock) {
  std::atomic<int> total{0};
  parallelFor(
      8,
      [&](std::size_t) {
        // Nested call from inside a sweep: must degrade to serial inline
        // execution instead of deadlocking on the single shared pool.
        parallelFor(10, [&](std::size_t) { total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, ExceptionLeavesPoolReusable) {
  EXPECT_THROW(parallelFor(
                   50,
                   [](std::size_t i) {
                     if (i == 10) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
  // The pool must be fully drained and reusable after a failed sweep.
  std::atomic<int> count{0};
  parallelFor(50, [&](std::size_t) { count.fetch_add(1); }, 4);
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace vsstat::util
