#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vsstat::util {
namespace {

TEST(AsciiHistogram, RendersBars) {
  std::vector<double> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(i % 10);
  const std::string s = asciiHistogram(samples, 10, 20, "value");
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(AsciiHistogram, HandlesEmptySample) {
  EXPECT_EQ(asciiHistogram({}, 10, 20), "(no samples)\n");
}

TEST(AsciiHistogram, HandlesDegenerateSample) {
  const std::string s = asciiHistogram({1.0, 1.0, 1.0}, 5, 10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(AsciiScatter, PlacesPointsInGrid) {
  Series s;
  s.x = {0.0, 1.0};
  s.y = {0.0, 1.0};
  s.glyph = 'o';
  const std::string plot = asciiScatter({s}, 16, 8, "xl", "yl");
  EXPECT_NE(plot.find('o'), std::string::npos);
  EXPECT_NE(plot.find("xl"), std::string::npos);
  EXPECT_NE(plot.find("yl"), std::string::npos);
}

TEST(AsciiScatter, MultipleSeriesUseDistinctGlyphs) {
  Series a{{0.0}, {0.0}, 'a'};
  Series b{{1.0}, {1.0}, 'b'};
  const std::string plot = asciiScatter({a, b}, 16, 8);
  EXPECT_NE(plot.find('a'), std::string::npos);
  EXPECT_NE(plot.find('b'), std::string::npos);
}

TEST(AsciiScatter, RejectsRaggedSeries) {
  Series s{{0.0, 1.0}, {0.0}, '*'};
  EXPECT_THROW(asciiScatter({s}), InvalidArgumentError);
}

TEST(AsciiScatter, EmptyInputReportsNoPoints) {
  EXPECT_EQ(asciiScatter({}), "(no points)\n");
}

}  // namespace
}  // namespace vsstat::util
