#include "util/units.hpp"

#include <gtest/gtest.h>

namespace vsstat::units {
namespace {

TEST(Units, ThermalVoltageAt300K) {
  EXPECT_NEAR(thermalVoltage(300.0), 0.025852, 1e-5);
}

TEST(Units, ThermalVoltageScalesLinearlyWithTemperature) {
  EXPECT_NEAR(thermalVoltage(600.0), 2.0 * thermalVoltage(300.0), 1e-12);
}

TEST(Units, LengthRoundTrips) {
  EXPECT_DOUBLE_EQ(mToNm(nmToM(40.0)), 40.0);
  EXPECT_DOUBLE_EQ(mToUm(umToM(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(nmToM(1000.0), umToM(1.0));
}

TEST(Units, ArealCapacitanceConversion) {
  // 1.8 uF/cm^2 == 0.018 F/m^2.
  EXPECT_DOUBLE_EQ(uFPerCm2ToSI(1.8), 0.018);
  EXPECT_DOUBLE_EQ(siToUFPerCm2(uFPerCm2ToSI(1.8)), 1.8);
}

TEST(Units, MobilityConversion) {
  // 200 cm^2/Vs == 0.02 m^2/Vs.
  EXPECT_DOUBLE_EQ(cm2PerVsToSI(200.0), 0.02);
  EXPECT_DOUBLE_EQ(siToCm2PerVs(cm2PerVsToSI(123.0)), 123.0);
}

TEST(Units, VelocityConversion) {
  // 1.2e7 cm/s == 1.2e5 m/s.
  EXPECT_DOUBLE_EQ(cmPerSToSI(1.2e7), 1.2e5);
}

TEST(Units, TimeConversion) {
  EXPECT_DOUBLE_EQ(psToS(5.0), 5e-12);
  EXPECT_DOUBLE_EQ(sToPs(psToS(7.25)), 7.25);
}

}  // namespace
}  // namespace vsstat::units
