#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

TEST(Cholesky, FactorsKnownSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Matrix l = choleskyFactor(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(Cholesky, FactorReconstructsMatrix) {
  const Matrix a{{6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
  const Matrix l = choleskyFactor(a);
  EXPECT_LT(maxAbsDiff(l * l.transposed(), a), 1e-12);
}

TEST(Cholesky, SolveMatchesDirectSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Vector x = choleskySolve(a, {10.0, 8.0});
  // Verify A x == b.
  const Vector b = a * x;
  EXPECT_NEAR(b[0], 10.0, 1e-12);
  EXPECT_NEAR(b[1], 8.0, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(choleskyFactor(a), ConvergenceError);
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(choleskyFactor(Matrix(2, 3)), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::linalg
