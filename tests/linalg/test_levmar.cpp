#include "linalg/levmar.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

TEST(LevMar, FitsExponentialDecay) {
  // Data from y = 2 exp(-0.5 t); recover (amplitude, rate).
  std::vector<double> t, y;
  for (int i = 0; i < 20; ++i) {
    t.push_back(0.2 * i);
    y.push_back(2.0 * std::exp(-0.5 * 0.2 * i));
  }
  const ResidualFn fn = [&](const Vector& x, Vector& r) {
    for (std::size_t i = 0; i < t.size(); ++i)
      r[i] = x[0] * std::exp(-x[1] * t[i]) - y[i];
  };
  const LevMarResult res = levenbergMarquardt(fn, {1.0, 1.0}, t.size());
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 0.5, 1e-6);
  EXPECT_LT(res.cost, 1e-14);
  EXPECT_LT(res.cost, res.initialCost);
}

TEST(LevMar, SolvesRosenbrockAsLeastSquares) {
  // r = (1 - x, 10 (y - x^2)); minimum at (1, 1).
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = 1.0 - x[0];
    r[1] = 10.0 * (x[1] - x[0] * x[0]);
  };
  LevMarOptions opt;
  opt.maxIterations = 500;
  const LevMarResult res = levenbergMarquardt(fn, {-1.2, 1.0}, 2, opt);
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], 1.0, 1e-5);
}

TEST(LevMar, RespectsBoxBounds) {
  // Unconstrained minimum at x = 3, but bound to [0, 2].
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = x[0] - 3.0;
    r[1] = 0.0;
  };
  LevMarOptions opt;
  opt.lowerBounds = {0.0};
  opt.upperBounds = {2.0};
  const LevMarResult res = levenbergMarquardt(fn, {1.0}, 2, opt);
  EXPECT_NEAR(res.x[0], 2.0, 1e-8);
}

TEST(LevMar, StartingAtOptimumStaysThere) {
  const ResidualFn fn = [](const Vector& x, Vector& r) { r[0] = x[0]; r[1] = x[1]; };
  const LevMarResult res = levenbergMarquardt(fn, {0.0, 0.0}, 2);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.cost, 0.0, 1e-30);
}

TEST(LevMar, RejectsBadShapes) {
  const ResidualFn fn = [](const Vector&, Vector&) {};
  EXPECT_THROW(levenbergMarquardt(fn, {}, 2), InvalidArgumentError);
  EXPECT_THROW(levenbergMarquardt(fn, {1.0, 2.0}, 1), InvalidArgumentError);
  LevMarOptions opt;
  opt.lowerBounds = {0.0, 0.0, 0.0};
  EXPECT_THROW(levenbergMarquardt(fn, {1.0}, 2, opt), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::linalg
