#include "linalg/levmar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

TEST(LevMar, FitsExponentialDecay) {
  // Data from y = 2 exp(-0.5 t); recover (amplitude, rate).
  std::vector<double> t, y;
  for (int i = 0; i < 20; ++i) {
    t.push_back(0.2 * i);
    y.push_back(2.0 * std::exp(-0.5 * 0.2 * i));
  }
  const ResidualFn fn = [&](const Vector& x, Vector& r) {
    for (std::size_t i = 0; i < t.size(); ++i)
      r[i] = x[0] * std::exp(-x[1] * t[i]) - y[i];
  };
  const LevMarResult res = levenbergMarquardt(fn, {1.0, 1.0}, t.size());
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
  EXPECT_NEAR(res.x[1], 0.5, 1e-6);
  EXPECT_LT(res.cost, 1e-14);
  EXPECT_LT(res.cost, res.initialCost);
}

TEST(LevMar, SolvesRosenbrockAsLeastSquares) {
  // r = (1 - x, 10 (y - x^2)); minimum at (1, 1).
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = 1.0 - x[0];
    r[1] = 10.0 * (x[1] - x[0] * x[0]);
  };
  LevMarOptions opt;
  opt.maxIterations = 500;
  const LevMarResult res = levenbergMarquardt(fn, {-1.2, 1.0}, 2, opt);
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], 1.0, 1e-5);
}

TEST(LevMar, RespectsBoxBounds) {
  // Unconstrained minimum at x = 3, but bound to [0, 2].
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = x[0] - 3.0;
    r[1] = 0.0;
  };
  LevMarOptions opt;
  opt.lowerBounds = {0.0};
  opt.upperBounds = {2.0};
  const LevMarResult res = levenbergMarquardt(fn, {1.0}, 2, opt);
  EXPECT_NEAR(res.x[0], 2.0, 1e-8);
}

TEST(LevMar, StartingAtOptimumStaysThere) {
  const ResidualFn fn = [](const Vector& x, Vector& r) { r[0] = x[0]; r[1] = x[1]; };
  const LevMarResult res = levenbergMarquardt(fn, {0.0, 0.0}, 2);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.cost, 0.0, 1e-30);
}

TEST(LevMar, RejectsBadShapes) {
  const ResidualFn fn = [](const Vector&, Vector&) {};
  EXPECT_THROW(levenbergMarquardt(fn, {}, 2), InvalidArgumentError);
  EXPECT_THROW(levenbergMarquardt(fn, {1.0, 2.0}, 1), InvalidArgumentError);
  LevMarOptions opt;
  opt.lowerBounds = {0.0, 0.0, 0.0};
  EXPECT_THROW(levenbergMarquardt(fn, {1.0}, 2, opt), InvalidArgumentError);
}

TEST(LevMar, SingularNormalEquationsAtEveryDampingThrow) {
  // Exactly collinear parameter columns: J^T J is rank 1.  With lambda
  // pinned at zero (lambdaUp = 1), every damping attempt solves the same
  // singular system; the solver must classify that instead of reporting a
  // bogus converged result (the pre-fix behaviour).
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = x[0] + x[1] - 1.0;
    r[1] = 2.0 * (x[0] + x[1]) - 2.0 + 3.0;  // keeps the gradient nonzero
  };
  LevMarOptions opt;
  opt.initialLambda = 0.0;
  opt.lambdaUp = 1.0;
  // Start at x0 == x1 so the two forward-difference columns are bit-for-bit
  // identical and elimination meets an exactly-zero pivot.
  try {
    (void)levenbergMarquardt(fn, {1.0, 1.0}, 2, opt);
    FAIL() << "expected SingularMatrixError";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.failureClass(), FailureClass::singular);
  }
}

TEST(LevMar, MarquardtDampingRegularizesCollinearColumns) {
  // The same rank-1 system converges fine once lambda is allowed to grow:
  // singular-JtJ is only thrown when damping cannot help.
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = x[0] + x[1] - 1.0;
    r[1] = x[0] + x[1] - 1.0;
  };
  const LevMarResult res = levenbergMarquardt(fn, {0.0, 3.0}, 2);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0] + res.x[1], 1.0, 1e-8);
}

TEST(LevMar, NonFiniteResidualAtStartThrows) {
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = std::log(x[0]);  // x0 = -1 -> NaN
    r[1] = x[0];
  };
  try {
    (void)levenbergMarquardt(fn, {-1.0}, 2);
    FAIL() << "expected NonFiniteError";
  } catch (const NonFiniteError& e) {
    EXPECT_EQ(e.failureClass(), FailureClass::nonFinite);
  }
}

TEST(LevMar, NonFiniteJacobianThrows) {
  // Finite residual exactly at the start, NaN at any perturbed point: the
  // forward-difference Jacobian goes non-finite on iteration 0.
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    const double bad = std::numeric_limits<double>::quiet_NaN();
    r[0] = (x[0] == 1.0) ? 0.5 : bad;
    r[1] = x[0];
  };
  EXPECT_THROW((void)levenbergMarquardt(fn, {1.0}, 2), NonFiniteError);
}

TEST(LevMar, NonFiniteTrialPointIsRejectedNotFatal) {
  // Model blows up for x > 2.2 but the constrained optimum (x = 2) is
  // reachable: trial steps into the blow-up region must shrink, not abort.
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = (x[0] > 2.2) ? std::numeric_limits<double>::quiet_NaN()
                        : x[0] - 2.0;
    r[1] = 0.0;
  };
  const LevMarResult res = levenbergMarquardt(fn, {0.5}, 2);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 2.0, 1e-6);
}

TEST(LevMar, ReportsActiveBoundMask) {
  // Unconstrained minimum at (3, 0.5); x0 is clamped to its bound, x1 stays
  // interior.
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    r[0] = x[0] - 3.0;
    r[1] = x[1] - 0.5;
  };
  LevMarOptions opt;
  opt.lowerBounds = {0.0, 0.0};
  opt.upperBounds = {2.0, 1.0};
  const LevMarResult res = levenbergMarquardt(fn, {1.0, 0.1}, 2, opt);
  EXPECT_NEAR(res.x[0], 2.0, 1e-10);
  EXPECT_NEAR(res.x[1], 0.5, 1e-8);
  EXPECT_EQ(res.activeBounds, 1u);
}

TEST(LevMar, WorkspaceFormMatchesFreeFunctionBitwise) {
  std::vector<double> t, y;
  for (int i = 0; i < 20; ++i) {
    t.push_back(0.2 * i);
    y.push_back(2.0 * std::exp(-0.5 * 0.2 * i));
  }
  const ResidualFn fn = [&](const Vector& x, Vector& r) {
    for (std::size_t i = 0; i < t.size(); ++i)
      r[i] = x[0] * std::exp(-x[1] * t[i]) - y[i];
  };
  const LevMarResult free = levenbergMarquardt(fn, {1.0, 1.0}, t.size());

  LevMarWorkspace ws;
  LevMarResult wsRes;
  levenbergMarquardt(fn, {1.0, 1.0}, t.size(), LevMarOptions{}, ws, wsRes);
  ASSERT_EQ(wsRes.x.size(), free.x.size());
  EXPECT_EQ(wsRes.x[0], free.x[0]);
  EXPECT_EQ(wsRes.x[1], free.x[1]);
  EXPECT_EQ(wsRes.cost, free.cost);
  EXPECT_EQ(wsRes.iterations, free.iterations);

  // Re-running on the warm workspace must give the same bits again.
  LevMarResult again;
  levenbergMarquardt(fn, {1.0, 1.0}, t.size(), LevMarOptions{}, ws, again);
  EXPECT_EQ(again.x[0], free.x[0]);
  EXPECT_EQ(again.cost, free.cost);
}

TEST(LevMar, RejectsMoreParametersThanBoundMaskWidth) {
  const ResidualFn fn = [](const Vector& x, Vector& r) {
    for (std::size_t i = 0; i < x.size(); ++i) r[i] = x[i];
  };
  const Vector x0(33, 1.0);
  EXPECT_THROW((void)levenbergMarquardt(fn, x0, 33), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::linalg
