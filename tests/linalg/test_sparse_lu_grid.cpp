// Sparse-vs-dense factor equivalence on the grid-scale fixture ladder.
//
// SparseLu (fill-reducing order + Gilbert-Peierls symbolic/numeric factor)
// and DensePivotLu (the retained dense-pivot baseline) factor the SAME
// assembled MNA Jacobian on every ladder rung and must agree:
//
//   * solutions componentwise to ~1e-12 of the solution scale;
//   * scaled residual ||Ax - b||_inf / (||A||_inf ||x||_inf + ||b||_inf)
//     <= 1e-12 for the sparse factor on EVERY rung, including the 64x64
//     mesh where the dense baseline is too slow to run;
//   * determinants (where they do not underflow);
//
// plus the structural claims the ladder was built to probe: near-linear
// factor memory on the big mesh, and less fill on the (tree-topology)
// H-tree than on a comparably sized 2-D mesh.  A final test pins the
// growth-monitor fallback parity of reuse-pivot mode on a real mesh
// Jacobian: a value excursion that invalidates the snapshotted pivots must
// fall back to a fresh factor (counted), still solve to residual 1e-12,
// and restoring the snapshot afterwards must reproduce the original
// solve bit-for-bit.
#include "linalg/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "linalg/dense_pivot_lu.hpp"
#include "models/vs_model.hpp"
#include "spice/assembler.hpp"

namespace vsstat::linalg {
namespace {

circuits::NominalProvider vsProvider() {
  return circuits::NominalProvider(models::VsModel(models::defaultVsNmos()),
                                   models::VsModel(models::defaultVsPmos()));
}

/// Deterministic, varied Newton iterate: node biases spread over (0.2, 0.7)
/// so device stamps contribute real (bias-dependent) conductances, not just
/// the mesh resistors.
Vector testIterate(std::size_t n) {
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 0.2 + 0.5 * static_cast<double>((i * 37u) % 101u) / 101.0;
  return x;
}

/// Deterministic rhs with sign changes and O(1) magnitudes.
Vector testRhs(std::size_t n) {
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i)
    b[i] = ((i % 3u) == 0u ? -1.0 : 1.0) *
           (0.25 + static_cast<double>((i * 13u) % 7u));
  return b;
}

double infNorm(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

/// ||A||_inf (max absolute row sum) of a sparse matrix.
double matrixInfNorm(const SparseMatrix& m) {
  const SparsePattern& p = m.pattern();
  double norm = 0.0;
  for (std::size_t r = 0; r < p.size(); ++r) {
    double rowSum = 0.0;
    for (std::size_t s = p.rowStart()[r]; s < p.rowStart()[r + 1]; ++s)
      rowSum += std::fabs(m.values()[s]);
    norm = std::max(norm, rowSum);
  }
  return norm;
}

/// r = A x - b via the CSR slots.
Vector residual(const SparseMatrix& m, const Vector& x, const Vector& b) {
  const SparsePattern& p = m.pattern();
  Vector r(b.size(), 0.0);
  for (std::size_t s = 0; s < p.nonZeroCount(); ++s)
    r[p.rowIndex()[s]] += m.values()[s] * x[p.colIndex()[s]];
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  return r;
}

/// The rung-acceptance bound: backward-stable scaled residual <= 1e-12.
void expectTinyResidual(const SparseMatrix& m, const Vector& x,
                        const Vector& b, const char* rung) {
  const double scale =
      matrixInfNorm(m) * infNorm(x) + infNorm(b);
  EXPECT_LE(infNorm(residual(m, x, b)), 1e-12 * scale) << rung;
}

/// Assembles the MNA Jacobian of `circuit` at the deterministic iterate.
/// The assembler owns the pattern/matrix; keep it alive while using them.
struct AssembledJacobian {
  explicit AssembledJacobian(spice::Circuit& circuit)
      : assembler(circuit), x(testIterate(circuit.unknownCount())) {
    assembler.setGmin(1e-3);  // homotopy-shunt level: all node diags present
    assembler.assemble(x);
  }
  spice::detail::Assembler assembler;
  Vector x;
  [[nodiscard]] const SparseMatrix& jacobian() const {
    return assembler.jacobian();
  }
};

/// Factors `m` both ways and checks solution agreement + sparse residual.
void expectSparseMatchesDense(const SparseMatrix& m, const char* rung) {
  const std::size_t n = m.pattern().size();
  const Vector b = testRhs(n);

  SparseLu sparse;
  sparse.refactor(m);
  const Vector xs = sparse.solve(b);
  expectTinyResidual(m, xs, b, rung);

  DensePivotLu dense;
  dense.refactor(m);
  const Vector xd = dense.solve(b);
  expectTinyResidual(m, xd, b, rung);

  double maxDiff = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    maxDiff = std::max(maxDiff, std::fabs(xs[i] - xd[i]));
  EXPECT_LE(maxDiff, 1e-12 * std::max(1.0, infNorm(xd))) << rung;

  // Determinants agree where representable (they underflow on big rungs:
  // a product of ~n pivots of magnitude well below 1).
  const double dd = dense.determinant();
  const double ds = sparse.determinant();
  if (std::isfinite(dd) && std::fabs(dd) > 1e-280) {
    EXPECT_NEAR(ds / dd, 1.0, 1e-9) << rung;
  }
}

TEST(SparseLuGrid, MeshRung10x10MatchesDense) {
  auto p = vsProvider();
  auto bench = circuits::buildPowerGridIrDrop(p, 10, 10, 0.9);
  AssembledJacobian a(bench.circuit);
  expectSparseMatchesDense(a.jacobian(), "mesh 10x10");
}

TEST(SparseLuGrid, MeshRung32x32MatchesDense) {
  auto p = vsProvider();
  auto bench = circuits::buildPowerGridIrDrop(p, 32, 32, 0.9);
  AssembledJacobian a(bench.circuit);
  expectSparseMatchesDense(a.jacobian(), "mesh 32x32");
}

TEST(SparseLuGrid, HTreeRungsMatchDense) {
  for (int levels : {3, 6}) {
    auto p = vsProvider();
    auto bench = circuits::buildHTreeClock(p, levels, 0.9);
    AssembledJacobian a(bench.circuit);
    expectSparseMatchesDense(a.jacobian(), "h-tree");
  }
}

TEST(SparseLuGrid, SramColumnRungsMatchDense) {
  for (int cells : {4, 32}) {
    auto p = vsProvider();
    auto bench = circuits::buildSramColumn(p, cells, 0.9, circuits::SramSizing{});
    AssembledJacobian a(bench.circuit);
    expectSparseMatchesDense(a.jacobian(), "sram column");
  }
}

TEST(SparseLuGrid, Mesh64x64ResidualAndNearLinearMemory) {
  // The dense baseline is O(n^3) ~ 5e10 flops at n ~ 4k: sparse-only rung.
  auto p = vsProvider();
  auto bench = circuits::buildPowerGridIrDrop(p, 64, 64, 0.9);
  AssembledJacobian a(bench.circuit);
  const SparseMatrix& m = a.jacobian();
  const std::size_t n = m.pattern().size();

  SparseLu lu;
  lu.refactor(m);
  const Vector b = testRhs(n);
  expectTinyResidual(m, lu.solve(b), b, "mesh 64x64");

  // Near-linear factor memory: the whole factor (values + indices + column
  // starts) must be a sliver of one dense n x n value array.  Measured:
  // ~137k factor nnz vs ~20k pattern nnz (fill ~6.8x) vs 16.7M dense slots.
  const std::size_t denseBytes = n * n * sizeof(double);
  EXPECT_LT(lu.factorMemoryBytes(), denseBytes / 20);
  EXPECT_GT(lu.fillRatio(), 1.0);
  EXPECT_LT(lu.fillRatio(), 12.0);
}

TEST(SparseLuGrid, HTreeFillsLessThanMesh) {
  // Topology bracket: a tree eliminates with (near-)zero fill under a
  // fill-reducing order, a 2-D mesh cannot.  Both rungs here have ~1k
  // unknowns.
  auto p1 = vsProvider();
  auto tree = circuits::buildHTreeClock(p1, 9, 0.9);
  AssembledJacobian at(tree.circuit);
  SparseLu treeLu;
  treeLu.refactor(at.jacobian());

  auto p2 = vsProvider();
  auto mesh = circuits::buildPowerGridIrDrop(p2, 32, 32, 0.9);
  AssembledJacobian am(mesh.circuit);
  SparseLu meshLu;
  meshLu.refactor(am.jacobian());

  EXPECT_LT(treeLu.fillRatio(), meshLu.fillRatio());
  EXPECT_LT(treeLu.fillRatio(), 2.5);  // near-none, even with pivoting
}

TEST(SparseLuGrid, ReusePivotGrowthFallbackParityOnMesh) {
  auto p = vsProvider();
  auto bench = circuits::buildPowerGridIrDrop(p, 10, 10, 0.9);
  AssembledJacobian a(bench.circuit);
  const SparseMatrix& j = a.jacobian();
  const std::size_t n = j.pattern().size();
  const Vector b = testRhs(n);

  SparseLu lu;
  lu.setSolverMode(SolverMode::reusePivot);
  lu.refactor(j);
  lu.snapshotPivotOrder();
  // Steady-state reuse solve (fast refactor on the snapshotted structure):
  // the baseline the post-excursion solve must reproduce bit-for-bit.
  lu.refactor(j);
  EXPECT_EQ(lu.fastRefactorCount(), 1u);
  const Vector x0 = lu.solve(b);
  expectTinyResidual(j, x0, b, "reuse baseline");
  EXPECT_EQ(lu.pivotFallbackCount(), 0u);

  // Value excursion on the same pattern: crush the diagonal by 1e-12 so the
  // snapshotted pivots produce ~1e11 multipliers.  The growth monitor must
  // reject the reuse refactor and fall back to one fresh full factor --
  // which still solves the (nonsingular) excursion matrix to 1e-12.
  SparseMatrix crushed(j.pattern());
  for (std::size_t s = 0; s < j.values().size(); ++s) {
    const bool diag = j.pattern().rowIndex()[s] == j.pattern().colIndex()[s];
    crushed.setAt(static_cast<std::int32_t>(s),
                  diag ? j.values()[s] * 1e-12 : j.values()[s]);
  }
  lu.refactor(crushed);
  EXPECT_EQ(lu.pivotFallbackCount(), 1u);
  const Vector xc = lu.solve(b);
  // The excursion matrix is deliberately ill-conditioned (~1e12), so a
  // solution-vector compare against the dense baseline is meaningless;
  // backward stability (tiny residual) is the fallback-parity contract,
  // and the dense baseline must meet the same bound on the same values.
  expectTinyResidual(crushed, xc, b, "excursion fallback");
  DensePivotLu dense;
  dense.refactor(crushed);
  expectTinyResidual(crushed, dense.solve(b), b, "excursion dense");

  // Restoring the snapshot heals the excursion completely: the original
  // values solve to the SAME BITS as before it.
  lu.restorePivotSnapshot();
  lu.refactor(j);
  const Vector x1 = lu.solve(b);
  ASSERT_EQ(x0.size(), x1.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(x0[i], x1[i]) << i;
  EXPECT_EQ(lu.pivotFallbackCount(), 1u);  // no new fallback
}

}  // namespace
}  // namespace vsstat::linalg
