#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

using Coords = std::vector<std::pair<std::size_t, std::size_t>>;

TEST(SparsePattern, AssignsOneSlotPerDistinctCoordinate) {
  const SparsePattern p(3, Coords{{0, 0}, {1, 1}, {0, 0}, {2, 0}, {1, 1}});
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.nonZeroCount(), 3u);
  EXPECT_GE(p.slot(0, 0), 0);
  EXPECT_GE(p.slot(1, 1), 0);
  EXPECT_GE(p.slot(2, 0), 0);
  EXPECT_EQ(p.slot(0, 1), -1);
  EXPECT_EQ(p.slot(2, 2), -1);
}

TEST(SparsePattern, SlotsAreCsrOrdered) {
  const SparsePattern p(2, Coords{{1, 0}, {0, 1}, {0, 0}});
  // Row 0 slots come before row 1 slots, columns ascending within a row.
  EXPECT_EQ(p.slot(0, 0), 0);
  EXPECT_EQ(p.slot(0, 1), 1);
  EXPECT_EQ(p.slot(1, 0), 2);
  EXPECT_EQ(p.rowStart(), (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(p.colIndex(), (std::vector<std::size_t>{0, 1, 0}));
  EXPECT_EQ(p.rowIndex(), (std::vector<std::size_t>{0, 0, 1}));
}

TEST(SparsePattern, RejectsOutOfRangeCoordinates) {
  EXPECT_THROW(SparsePattern(2, Coords{{2, 0}}), InvalidArgumentError);
  EXPECT_THROW(SparsePattern(0, Coords{}), InvalidArgumentError);
}

TEST(SparsePattern, ReportsSparsity) {
  const SparsePattern p(2, Coords{{0, 0}});
  EXPECT_DOUBLE_EQ(p.sparsity(), 0.75);
}

TEST(SparseMatrix, AccumulatesAndClears) {
  const SparsePattern p(2, Coords{{0, 0}, {1, 1}});
  SparseMatrix m(p);
  m.addAt(p.slot(0, 0), 2.0);
  m.addAt(p.slot(0, 0), 0.5);
  m.addAt(p.slot(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(m(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);  // structural zero reads as 0
  m.clear();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(SparseMatrix, ScattersToDense) {
  const SparsePattern p(2, Coords{{0, 1}, {1, 0}});
  SparseMatrix m(p);
  m.addAt(p.slot(0, 1), 3.0);
  m.addAt(p.slot(1, 0), 4.0);
  Matrix dense;
  m.scatterTo(dense);
  EXPECT_EQ(dense.rows(), 2u);
  EXPECT_DOUBLE_EQ(dense(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(dense(0, 0), 0.0);
}

// --- SparseLu ---------------------------------------------------------------

/// Fills a SparseMatrix from a dense reference (pattern = nonzeros of d).
SparseMatrix fromDense(const SparsePattern& p, const Matrix& d) {
  SparseMatrix m(p);
  for (std::size_t r = 0; r < d.rows(); ++r)
    for (std::size_t c = 0; c < d.cols(); ++c)
      if (p.slot(r, c) >= 0) m.addAt(p.slot(r, c), d(r, c));
  return m;
}

TEST(SparseLu, SolvesSmallSystem) {
  const SparsePattern p(2, Coords{{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const SparseMatrix m = fromDense(p, Matrix{{2.0, 1.0}, {1.0, 3.0}});
  SparseLu lu;
  lu.refactor(m);
  const Vector x = lu.solve({3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(SparseLu, HandlesZeroDiagonalViaPivoting) {
  // MNA voltage-source rows have structurally zero diagonals.
  const SparsePattern p(2, Coords{{0, 1}, {1, 0}});
  const SparseMatrix m = fromDense(p, Matrix{{0.0, 1.0}, {1.0, 0.0}});
  SparseLu lu;
  lu.refactor(m);
  const Vector x = lu.solve({2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(SparseLu, DetectsSingularMatrix) {
  const SparsePattern p(2, Coords{{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const SparseMatrix m = fromDense(p, Matrix{{1.0, 2.0}, {2.0, 4.0}});
  SparseLu lu;
  EXPECT_THROW(lu.refactor(m), ConvergenceError);
}

TEST(SparseLu, FastRefactorReusesStructure) {
  stats::Rng rng(3);
  const std::size_t n = 8;
  // Sparse diagonally-dominant pattern: diagonal + a band + a few extras.
  Coords coords;
  for (std::size_t i = 0; i < n; ++i) {
    coords.emplace_back(i, i);
    if (i + 1 < n) {
      coords.emplace_back(i, i + 1);
      coords.emplace_back(i + 1, i);
    }
  }
  coords.emplace_back(0, n - 1);
  const SparsePattern p(n, coords);

  SparseLu lu;
  for (int trial = 0; trial < 10; ++trial) {
    Matrix d(n, n);
    for (const auto& [r, c] : coords)
      d(r, c) = rng.uniform(-1.0, 1.0) + (r == c ? 4.0 : 0.0);
    const SparseMatrix m = fromDense(p, d);

    Vector xTrue(n);
    for (std::size_t i = 0; i < n; ++i) xTrue[i] = rng.uniform(-2.0, 2.0);
    const Vector b = d * xTrue;

    lu.refactor(m);
    Vector x = b;
    lu.solveInPlace(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
  }
  // One analyze+pivot pass, every later factorization reused the structure.
  EXPECT_EQ(lu.fullFactorCount(), 1u);
  EXPECT_EQ(lu.fastRefactorCount(), 9u);
  EXPECT_GE(lu.factorNonZeroCount(), p.nonZeroCount());
}

TEST(SparseLu, RepivotsWhenFastPathBreaksDown) {
  const SparsePattern p(2, Coords{{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  SparseLu lu;
  lu.refactor(fromDense(p, Matrix{{4.0, 1.0}, {1.0, 3.0}}));
  // Now make the (0,0) pivot exactly zero: the fast path must fall back to
  // a fresh partial-pivot factorization and still solve correctly.
  lu.refactor(fromDense(p, Matrix{{0.0, 1.0}, {1.0, 1.0}}));
  const Vector x = lu.solve({2.0, 5.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_EQ(lu.fullFactorCount(), 2u);
}

TEST(SparseLu, MatchesDenseLuOnRandomSystems) {
  stats::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.below(8);
    Coords coords;
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || rng.uniform(0.0, 1.0) < 0.4) {
          coords.emplace_back(i, j);
          d(i, j) = rng.uniform(-1.0, 1.0) + (i == j ? double(n) : 0.0);
        }
      }
    }
    const SparsePattern p(n, coords);
    SparseLu lu;
    lu.refactor(fromDense(p, d));

    Vector xTrue(n);
    for (std::size_t i = 0; i < n; ++i) xTrue[i] = rng.uniform(-2.0, 2.0);
    Vector x = d * xTrue;
    lu.solveInPlace(x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);

    EXPECT_NEAR(lu.determinant(), LuFactorization(d).determinant(),
                1e-9 * std::max(1.0, std::fabs(lu.determinant())));
  }
}

TEST(DenseLuRefactor, ReusesStorageAcrossFactorizations) {
  LuFactorization lu;
  lu.refactor(Matrix{{2.0, 0.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(lu.solve({2.0, 4.0})[0], 1.0);
  lu.refactor(Matrix{{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_DOUBLE_EQ(lu.solve({5.0, 7.0})[1], 7.0);
  EXPECT_THROW(lu.refactor(Matrix{{1.0, 2.0}, {2.0, 4.0}}), ConvergenceError);
}

}  // namespace
}  // namespace vsstat::linalg
