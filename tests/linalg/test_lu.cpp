#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

TEST(Lu, SolvesSmallSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = luSolve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SolvesWithPivoting) {
  // Leading zero forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = luSolve(a, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Lu, DetectsSingularMatrix) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuFactorization{a}, ConvergenceError);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, InvalidArgumentError);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix a{{4.0, 3.0}, {6.0, 3.0}};
  EXPECT_NEAR(LuFactorization(a).determinant(), -6.0, 1e-12);
}

TEST(Lu, ReusableForMultipleRhs) {
  const LuFactorization lu(Matrix{{2.0, 0.0}, {0.0, 4.0}});
  EXPECT_DOUBLE_EQ(lu.solve({2.0, 4.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(lu.solve({4.0, 8.0})[1], 2.0);
}

TEST(Lu, RandomSystemsRoundTrip) {
  stats::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.below(10);
    Matrix a(n, n);
    Vector xTrue(n);
    for (std::size_t i = 0; i < n; ++i) {
      xTrue[i] = rng.uniform(-2.0, 2.0);
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
      a(i, i) += static_cast<double>(n);  // diagonally dominant
    }
    const Vector b = a * xTrue;
    const Vector x = luSolve(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-9);
  }
}

}  // namespace
}  // namespace vsstat::linalg
