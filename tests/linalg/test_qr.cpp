#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

TEST(Qr, SolvesSquareSystemExactly) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = leastSquares(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Qr, OverdeterminedLineFit) {
  // Fit y = a + b t through 4 points of the exact line y = 1 + 2t.
  Matrix a(4, 2);
  Vector b(4);
  for (int i = 0; i < 4; ++i) {
    const double t = i;
    a(i, 0) = 1.0;
    a(i, 1) = t;
    b[i] = 1.0 + 2.0 * t;
  }
  const Vector x = leastSquares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Qr, MinimizesResidualForInconsistentSystem) {
  // Three equations x = 0, 1, 2: least-squares answer is the mean.
  Matrix a(3, 1, 1.0);
  const Vector x = leastSquares(a, {0.0, 1.0, 2.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(QrFactorization(a).residualNorm({0.0, 1.0, 2.0}),
              std::sqrt(2.0), 1e-12);
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column is a multiple of the first
  }
  EXPECT_THROW(leastSquares(a, {1.0, 2.0, 3.0}), ConvergenceError);
}

TEST(Qr, RejectsUnderdetermined) {
  EXPECT_THROW(QrFactorization{Matrix(2, 3)}, InvalidArgumentError);
}

TEST(Qr, RandomOverdeterminedSystemsMatchNormalEquations) {
  stats::Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 12;
    const std::size_t n = 4;
    Matrix a(m, n);
    Vector xTrue(n);
    for (std::size_t j = 0; j < n; ++j) xTrue[j] = rng.uniform(-1.0, 1.0);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    const Vector b = a * xTrue;  // consistent -> exact recovery
    const Vector x = leastSquares(a, b);
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(x[j], xTrue[j], 1e-9);
  }
}

}  // namespace
}  // namespace vsstat::linalg
