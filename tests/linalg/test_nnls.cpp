#include "linalg/nnls.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "stats/rng.hpp"

namespace vsstat::linalg {
namespace {

TEST(Nnls, MatchesUnconstrainedWhenSolutionIsPositive) {
  const Matrix a{{2.0, 0.0}, {0.0, 3.0}, {1.0, 1.0}};
  const Vector b{2.0, 6.0, 3.0};  // exact solution x = (1, 2)
  const NnlsResult r = nnls(a, b);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 2.0, 1e-10);
  EXPECT_NEAR(r.residualNorm, 0.0, 1e-10);
}

TEST(Nnls, ClampsNegativeComponentToZero) {
  // Unconstrained least squares would want x[1] < 0.
  const Matrix a{{1.0, 1.0}, {1.0, -1.0}};
  const Vector b{0.0, 2.0};
  const NnlsResult r = nnls(a, b);
  EXPECT_GE(r.x[0], 0.0);
  EXPECT_DOUBLE_EQ(r.x[1], 0.0);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);  // best non-negative fit
}

TEST(Nnls, AllZeroWhenRhsIsAntiCorrelated) {
  const Matrix a{{1.0}, {1.0}};
  const Vector b{-1.0, -2.0};
  const NnlsResult r = nnls(a, b);
  EXPECT_DOUBLE_EQ(r.x[0], 0.0);
}

TEST(Nnls, SolutionSatisfiesKkt) {
  // Random over-determined problems: at the solution the gradient must be
  // <= 0 on the active set and ~0 on the passive set.
  stats::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a(8, 3);
    Vector b(8);
    for (std::size_t i = 0; i < 8; ++i) {
      b[i] = rng.uniform(-1.0, 1.0);
      for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    }
    const NnlsResult r = nnls(a, b);
    const Vector g = a.transposed() * sub(b, a * r.x);
    for (std::size_t j = 0; j < 3; ++j) {
      if (r.x[j] > 0.0) {
        EXPECT_NEAR(g[j], 0.0, 1e-8) << "passive coordinate " << j;
      } else {
        EXPECT_LE(g[j], 1e-8) << "active coordinate " << j;
      }
    }
  }
}

TEST(Nnls, RecoversSparseNonNegativeTruth) {
  stats::Rng rng(5);
  Matrix a(20, 4);
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.uniform(0.0, 1.0);
  const Vector xTrue{0.0, 2.0, 0.0, 0.5};
  const Vector b = a * xTrue;
  const NnlsResult r = nnls(a, b);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_NEAR(r.x[j], xTrue[j], 1e-8);
}

}  // namespace
}  // namespace vsstat::linalg
