#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

TEST(Matrix, ConstructsFromInitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RejectsRaggedInitializer) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgumentError);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), InvalidArgumentError);
  EXPECT_THROW((void)m.at(0, 2), InvalidArgumentError);
}

TEST(Matrix, TransposeRoundTrips) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(maxAbsDiff(t.transposed(), m), 0.0);
}

TEST(Matrix, MultiplicationMatchesHandComputation) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplicationShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgumentError);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = a * Vector{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, SelectColumnsExtractsInOrder) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix s = a.selectColumns({2, 0});
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 6.0);
}

TEST(Matrix, AdditionAndScaling) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 4.0}};
  const Matrix c = a + b * 2.0;
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 10.0);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(normInf(Vector{-7.0, 2.0}), 7.0);
  Vector y{1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(VectorOps, AddSubScale) {
  const Vector a{1.0, 2.0};
  const Vector b{0.5, 1.5};
  EXPECT_DOUBLE_EQ(add(a, b)[1], 3.5);
  EXPECT_DOUBLE_EQ(sub(a, b)[0], 0.5);
  EXPECT_DOUBLE_EQ(scale(a, 3.0)[1], 6.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW((void)dot(Vector{1.0}, Vector{1.0, 2.0}), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::linalg
