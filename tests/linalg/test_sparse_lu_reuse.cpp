// Pivot-reuse contract of SparseLu (SolverMode::reusePivot support):
//
//   * refactorReusingPivots() skips the dense partial-pivot + symbolic pass
//     while the reused order stays healthy (fullFactorCount flat);
//   * the breakdown monitor catches both failure modes of a stale order --
//     a near-zero reused pivot and excessive element growth -- and falls
//     back to a full re-pivot whose solve is still accurate;
//   * the canonical snapshot restores the primed order after a breakdown,
//     so solve results depend only on the solve's own inputs (the
//     determinism proof campaign bit-identity is built on);
//   * repeated runs of the whole scenario are bit-identical.
#include "linalg/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/sparse.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

/// Dense n x n pattern (every position structural) + value setter.
SparsePattern densePattern(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> coords;
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) coords.emplace_back(r, c);
  return SparsePattern(n, coords);
}

void setValues(SparseMatrix& m, const std::vector<std::vector<double>>& rows) {
  m.clear();
  const std::size_t n = rows.size();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      m.addAt(m.pattern().slot(r, c), rows[r][c]);
}

double maxResidual(const SparseMatrix& a, const Vector& x, const Vector& b) {
  const std::size_t n = x.size();
  double worst = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double ax = 0.0;
    for (std::size_t c = 0; c < n; ++c) ax += a(r, c) * x[c];
    worst = std::max(worst, std::fabs(ax - b[r]));
  }
  return worst;
}

// A0's partial pivot swaps rows (|4| > |1| in column 0); the reused order
// therefore puts the second original row first.
const std::vector<std::vector<double>> kA0 = {{1.0, 2.0}, {4.0, 1.0}};

TEST(SparseLuReuse, ReuseSkipsRepivotAndStaysAccurate) {
  const SparsePattern pattern = densePattern(2);
  SparseMatrix m(pattern);
  SparseLu lu;

  setValues(m, kA0);
  lu.refactorReusingPivots(m);  // first call: full analyze + pivot
  EXPECT_EQ(lu.fullFactorCount(), 1u);
  lu.snapshotPivotOrder();
  ASSERT_TRUE(lu.hasPivotSnapshot());

  const Vector b{3.0, 5.0};
  for (int solve = 0; solve < 5; ++solve) {
    lu.restorePivotSnapshot();
    setValues(m, {{1.0 + 0.01 * solve, 2.0}, {4.0, 1.0 - 0.01 * solve}});
    lu.refactorReusingPivots(m);
    const Vector x = lu.solve(b);
    // Per-solve residual bound: the reused-order factorization must solve
    // the CURRENT values accurately, not just the snapshot's.
    EXPECT_LT(maxResidual(m, x, b), 1e-12) << "solve " << solve;
  }
  EXPECT_EQ(lu.fullFactorCount(), 1u);  // never re-pivoted
  EXPECT_EQ(lu.pivotFallbackCount(), 0u);
  EXPECT_GE(lu.fastRefactorCount(), 5u);
}

TEST(SparseLuReuse, GrowthMonitorTriggersFullRepivot) {
  const SparsePattern pattern = densePattern(2);
  SparseMatrix m(pattern);
  SparseLu lu;

  setValues(m, kA0);
  lu.refactorReusingPivots(m);
  lu.snapshotPivotOrder();

  // Under the reused order the pivot becomes 1e-9: far above the absolute
  // zero-pivot tolerance (1e-14), so only the growth monitor can see that
  // the 1e9-sized multiplier makes the reused order numerically degenerate.
  const std::vector<std::vector<double>> grower = {{1.0, 2.0}, {1e-9, 1.0}};
  setValues(m, grower);
  lu.refactorReusingPivots(m);
  EXPECT_EQ(lu.pivotFallbackCount(), 1u);
  EXPECT_EQ(lu.fullFactorCount(), 2u);  // breakdown re-pivoted from scratch

  const Vector b{1.0, 1.0};
  const Vector x = lu.solve(b);
  EXPECT_LT(maxResidual(m, x, b), 1e-12);
}

TEST(SparseLuReuse, ZeroPivotTriggersFullRepivot) {
  const SparsePattern pattern = densePattern(2);
  SparseMatrix m(pattern);
  SparseLu lu;

  setValues(m, kA0);
  lu.refactorReusingPivots(m);
  lu.snapshotPivotOrder();

  // Exact zero where the reused order wants its first pivot.
  setValues(m, {{1.0, 2.0}, {0.0, 1.0}});
  lu.refactorReusingPivots(m);
  EXPECT_EQ(lu.pivotFallbackCount(), 1u);

  const Vector b{1.0, 1.0};
  const Vector x = lu.solve(b);
  EXPECT_LT(maxResidual(m, x, b), 1e-12);
}

TEST(SparseLuReuse, SnapshotRestoresCanonicalOrderAfterBreakdown) {
  const SparsePattern pattern = densePattern(2);
  const Vector b{3.0, 5.0};

  // Run A: prime, benign solve.
  SparseLu clean;
  {
    SparseMatrix m(pattern);
    setValues(m, kA0);
    clean.refactorReusingPivots(m);
    clean.snapshotPivotOrder();
    clean.restorePivotSnapshot();
    setValues(m, kA0);
    clean.refactorReusingPivots(m);
  }
  const Vector xClean = clean.solve(b);

  // Run B: prime, breakdown solve, restore, then the SAME benign solve.
  SparseLu bumped;
  SparseMatrix m(pattern);
  setValues(m, kA0);
  bumped.refactorReusingPivots(m);
  bumped.snapshotPivotOrder();
  setValues(m, {{1.0, 2.0}, {1e-9, 1.0}});
  bumped.refactorReusingPivots(m);  // growth breakdown -> re-pivot
  ASSERT_EQ(bumped.pivotFallbackCount(), 1u);
  bumped.restorePivotSnapshot();  // solve boundary: canonical order is back
  setValues(m, kA0);
  bumped.refactorReusingPivots(m);
  const Vector xBumped = bumped.solve(b);

  // The interleaved breakdown must not leak into the next solve: bitwise
  // equality, not tolerance.
  ASSERT_EQ(xClean.size(), xBumped.size());
  for (std::size_t i = 0; i < xClean.size(); ++i)
    EXPECT_EQ(xClean[i], xBumped[i]) << "component " << i;
  // And no extra full factors beyond priming + the one breakdown.
  EXPECT_EQ(bumped.fullFactorCount(), 2u);
}

TEST(SparseLuReuse, RepeatedRunsAreBitIdentical) {
  const SparsePattern pattern = densePattern(3);
  const Vector b{1.0, -2.0, 0.5};

  const auto runScenario = [&]() {
    SparseLu lu;
    SparseMatrix m(pattern);
    setValues(m, {{2.0, 1.0, 0.5}, {4.0, 1.0, 1.0}, {1.0, 3.0, 2.0}});
    lu.refactorReusingPivots(m);
    lu.snapshotPivotOrder();
    Vector last;
    for (int solve = 0; solve < 4; ++solve) {
      lu.restorePivotSnapshot();
      // Solve 2 drives the reused order near-singular (monitored fallback);
      // the others reuse cleanly.
      const double d = solve == 2 ? 1e-10 : 4.0 + 0.1 * solve;
      setValues(m, {{2.0, 1.0, 0.5}, {d, 1.0, 1.0}, {1.0, 3.0, 2.0}});
      lu.refactorReusingPivots(m);
      last = lu.solve(b);
    }
    return std::pair<Vector, std::uint64_t>(last, lu.pivotFallbackCount());
  };

  const auto [xa, fallbackA] = runScenario();
  const auto [xb, fallbackB] = runScenario();
  EXPECT_GE(fallbackA, 1u);
  EXPECT_EQ(fallbackA, fallbackB);
  ASSERT_EQ(xa.size(), xb.size());
  for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]);
}

TEST(SparseLuReuse, SolverModeDispatchesRefactor) {
  const SparsePattern pattern = densePattern(2);
  SparseMatrix m(pattern);
  SparseLu lu;
  lu.setSolverMode(SolverMode::reusePivot);
  EXPECT_EQ(lu.solverMode(), SolverMode::reusePivot);

  setValues(m, kA0);
  lu.refactor(m);  // dispatches to the reuse path
  lu.snapshotPivotOrder();
  for (int solve = 0; solve < 3; ++solve) {
    lu.restorePivotSnapshot();
    setValues(m, kA0);
    lu.refactor(m);
  }
  EXPECT_EQ(lu.fullFactorCount(), 1u);

  // Fresh mode on the same object: reset + refactor re-pivots per solve.
  lu.setSolverMode(SolverMode::fresh);
  for (int solve = 0; solve < 2; ++solve) {
    lu.reset();
    setValues(m, kA0);
    lu.refactor(m);
  }
  EXPECT_EQ(lu.fullFactorCount(), 3u);
}

TEST(SparseLuReuse, SingularMatrixStillThrows) {
  const SparsePattern pattern = densePattern(2);
  SparseMatrix m(pattern);
  SparseLu lu;
  setValues(m, kA0);
  lu.refactorReusingPivots(m);
  lu.snapshotPivotOrder();

  setValues(m, {{1.0, 2.0}, {2.0, 4.0}});  // rank 1
  EXPECT_THROW(lu.refactorReusingPivots(m), ConvergenceError);
  // The breakdown path detected the stale order first, then the full
  // re-pivot found the matrix genuinely singular.
  EXPECT_EQ(lu.pivotFallbackCount(), 1u);
}

}  // namespace
}  // namespace vsstat::linalg
