// Complex dense LU: exact small systems, pivoting, failure modes, and
// consistency with the real solver on promoted real systems.
#include <gtest/gtest.h>

#include <complex>

#include "linalg/complex.hpp"
#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {
namespace {

using std::complex_literals::operator""i;

TEST(ComplexMatrix, ConstructionAndIndexing) {
  ComplexMatrix m(2, 3, Complex(1.0, -2.0));
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), Complex(1.0, -2.0));
  m(0, 0) = 3.0 + 4.0i;
  EXPECT_EQ(m(0, 0), Complex(3.0, 4.0));
}

TEST(ComplexMatrix, FromRealImagPromotesShapes) {
  Matrix re{{1.0, 2.0}, {3.0, 4.0}};
  Matrix im{{0.0, -1.0}, {5.0, 0.5}};
  const ComplexMatrix m = ComplexMatrix::fromRealImag(re, im);
  EXPECT_EQ(m(0, 1), Complex(2.0, -1.0));
  EXPECT_EQ(m(1, 0), Complex(3.0, 5.0));

  const ComplexMatrix realOnly = ComplexMatrix::fromRealImag(re, Matrix{});
  EXPECT_EQ(realOnly(1, 1), Complex(4.0, 0.0));
}

TEST(ComplexMatrix, FromRealImagRejectsShapeMismatch) {
  Matrix re(2, 2);
  Matrix im(3, 2);
  EXPECT_THROW(ComplexMatrix::fromRealImag(re, im), InvalidArgumentError);
}

TEST(ComplexMatrix, MatrixVectorProduct) {
  ComplexMatrix a(2, 2);
  a(0, 0) = 1.0 + 1.0i;
  a(0, 1) = 2.0;
  a(1, 0) = 0.0;
  a(1, 1) = -1.0i;
  const ComplexVector x{1.0 + 0.0i, 1.0i};
  const ComplexVector y = a * x;
  EXPECT_NEAR(std::abs(y[0] - Complex(1.0, 3.0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(y[1] - Complex(1.0, 0.0)), 0.0, 1e-14);
}

TEST(ComplexLu, SolvesKnownTwoByTwo) {
  // (1+j) x + 2 y = 3 + j ;  x - j y = 1  has solution x = 1, y = (1+j)/... —
  // instead verify by construction: pick x, form b = A x, solve back.
  ComplexMatrix a(2, 2);
  a(0, 0) = 1.0 + 1.0i;
  a(0, 1) = 2.0;
  a(1, 0) = 1.0;
  a(1, 1) = -1.0i;
  const ComplexVector xTrue{0.5 - 0.25i, -1.0 + 2.0i};
  const ComplexVector b = a * xTrue;
  const ComplexVector x = complexLuSolve(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(std::abs(x[0] - xTrue[0]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(x[1] - xTrue[1]), 0.0, 1e-13);
}

TEST(ComplexLu, RequiresRowPivoting) {
  // Zero on the leading diagonal forces a swap; without pivoting this
  // factorization would divide by zero.
  ComplexMatrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0i;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;
  const ComplexVector xTrue{1.0 + 1.0i, -2.0i};
  const ComplexVector x = complexLuSolve(a, a * xTrue);
  EXPECT_NEAR(std::abs(x[0] - xTrue[0]), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(x[1] - xTrue[1]), 0.0, 1e-13);
}

TEST(ComplexLu, LargerSystemRoundTrips) {
  // Deterministic pseudo-random 8x8 system; diagonally dominated so it is
  // well conditioned.
  const std::size_t n = 8;
  ComplexMatrix a(n, n);
  double seed = 0.37;
  const auto next = [&seed] {
    seed = std::fmod(seed * 997.0 + 0.123, 1.0);
    return seed - 0.5;
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = Complex(next(), next());
    a(r, r) += Complex(4.0, 4.0);
  }
  ComplexVector xTrue(n);
  for (std::size_t i = 0; i < n; ++i)
    xTrue[i] = Complex(next() * 3.0, next() * 3.0);

  const ComplexVector x = complexLuSolve(a, a * xTrue);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(x[i] - xTrue[i]), 0.0, 1e-11) << "index " << i;
}

TEST(ComplexLu, MatchesRealLuOnRealSystem) {
  Matrix a{{4.0, 1.0, 0.0}, {1.0, 3.0, -1.0}, {0.0, -1.0, 2.0}};
  const Vector b{1.0, 2.0, 3.0};
  const Vector xReal = luSolve(a, b);

  const ComplexMatrix ac = ComplexMatrix::fromRealImag(a, Matrix{});
  ComplexVector bc(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) bc[i] = b[i];
  const ComplexVector xc = complexLuSolve(ac, bc);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(xc[i].real(), xReal[i], 1e-12);
    EXPECT_NEAR(xc[i].imag(), 0.0, 1e-12);
  }
}

TEST(ComplexLu, ThrowsOnSingularMatrix) {
  ComplexMatrix a(2, 2);
  a(0, 0) = 1.0 + 1.0i;
  a(0, 1) = 2.0 + 2.0i;
  a(1, 0) = 0.5 + 0.5i;
  a(1, 1) = 1.0 + 1.0i;  // row 1 = row 0 / 2: rank deficient
  EXPECT_THROW(ComplexLuFactorization{a}, ConvergenceError);
}

TEST(ComplexLu, ThrowsOnNonSquare) {
  ComplexMatrix a(2, 3);
  EXPECT_THROW(ComplexLuFactorization{a}, InvalidArgumentError);
}

TEST(ComplexLu, SolveRejectsWrongSize) {
  ComplexMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const ComplexLuFactorization lu(a);
  EXPECT_THROW((void)lu.solve(ComplexVector(3)), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::linalg
