// Statistical corners: delta geometry, predicted-vs-simulated Idsat
// shifts, and circuit-level delay ordering across corners.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/benchmarks.hpp"
#include "core/corners.hpp"
#include "measure/delay.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::core {
namespace {

using models::DeviceType;

const StatisticalVsKit& kit() {
  static const StatisticalVsKit k = [] {
    CharacterizeOptions opt;
    opt.analyticGoldenVariance = true;
    return StatisticalVsKit::characterize(extract::GoldenKit::default40nm(),
                                          opt);
  }();
  return k;
}

TEST(Corners, ValidatesOptions) {
  CornerOptions bad;
  bad.nSigma = 0.0;
  EXPECT_THROW(StatisticalCorners(kit(), bad), InvalidArgumentError);
}

TEST(Corners, TtIsExactlyNominal) {
  const StatisticalCorners corners(kit());
  for (const auto type : {DeviceType::Nmos, DeviceType::Pmos}) {
    const models::VariationDelta& d = corners.delta(Corner::TT, type);
    EXPECT_EQ(d.dVt0, 0.0);
    EXPECT_EQ(d.dLeff, 0.0);
    EXPECT_EQ(d.dMu, 0.0);
    EXPECT_DOUBLE_EQ(corners.predictedIdsatRatio(Corner::TT, type), 1.0);
  }
}

TEST(Corners, FastSlowAreMirrored) {
  const StatisticalCorners corners(kit());
  const auto& ff = corners.delta(Corner::FF, DeviceType::Nmos);
  const auto& ss = corners.delta(Corner::SS, DeviceType::Nmos);
  EXPECT_DOUBLE_EQ(ff.dVt0, -ss.dVt0);
  EXPECT_DOUBLE_EQ(ff.dLeff, -ss.dLeff);
  EXPECT_DOUBLE_EQ(ff.dMu, -ss.dMu);

  // Mixed corners pick the polarity-matching side.
  EXPECT_DOUBLE_EQ(corners.delta(Corner::FS, DeviceType::Nmos).dVt0,
                   ff.dVt0);
  EXPECT_DOUBLE_EQ(corners.delta(Corner::FS, DeviceType::Pmos).dVt0,
                   corners.delta(Corner::SS, DeviceType::Pmos).dVt0);
  EXPECT_DOUBLE_EQ(corners.delta(Corner::SF, DeviceType::Nmos).dVt0,
                   ss.dVt0);
}

TEST(Corners, FastCornerLowersVt0AndRaisesMobility) {
  // Faster NMOS: lower threshold, higher mobility (the Idsat gradient
  // signs), at a sensible magnitude for 3 sigma on a 300/40 device.
  const StatisticalCorners corners(kit());
  const auto& ff = corners.delta(Corner::FF, DeviceType::Nmos);
  EXPECT_LT(ff.dVt0, 0.0);
  EXPECT_GT(ff.dMu, 0.0);
  EXPECT_GT(-ff.dVt0, 0.005);  // > 5 mV at 3 sigma
  EXPECT_LT(-ff.dVt0, 0.120);
}

TEST(Corners, SimulatedIdsatMatchesFirstOrderPrediction) {
  const StatisticalCorners corners(kit());
  const models::DeviceGeometry geom = corners.options().referenceGeometry;
  for (const auto type : {DeviceType::Nmos, DeviceType::Pmos}) {
    const models::VsModel nominal(kit().nominal(type));
    const double idNom = nominal.drainCurrent(geom, 0.9, 0.9);
    for (const Corner c : {Corner::FF, Corner::SS}) {
      const models::VsModel skewed(
          models::applyToVs(kit().nominal(type), corners.delta(c, type)));
      const models::DeviceGeometry g =
          models::applyGeometry(geom, corners.delta(c, type));
      const double ratio = skewed.drainCurrent(g, 0.9, 0.9) / idNom;
      const double predicted = corners.predictedIdsatRatio(c, type);
      // First-order prediction vs the full nonlinear model at 3 sigma.
      EXPECT_NEAR(ratio, predicted, 0.05)
          << toString(c) << " " << models::toString(type);
    }
  }
}

TEST(Corners, InverterDelayOrdersAcrossCorners) {
  const StatisticalCorners corners(kit());
  const auto delayAt = [&](Corner c) {
    auto provider = corners.makeProvider(c);
    circuits::GateFo3Bench bench = circuits::buildInvFo3(
        *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
    return measure::measureGateDelays(bench).average();
  };
  const double ff = delayAt(Corner::FF);
  const double tt = delayAt(Corner::TT);
  const double ss = delayAt(Corner::SS);
  EXPECT_LT(ff, tt);
  EXPECT_LT(tt, ss);
  // 3-sigma corners should move delay by a visible margin (> 5%).
  EXPECT_LT(ff, 0.95 * tt);
  EXPECT_GT(ss, 1.05 * tt);
}

TEST(Corners, MixedCornersSkewTheTransitionAsymmetrically) {
  // FS (fast N, slow P): falling output (NMOS pull-down) speeds up while
  // rising output (PMOS pull-up) slows down; SF mirrors it.
  const StatisticalCorners corners(kit());
  const auto delays = [&](Corner c) {
    auto provider = corners.makeProvider(c);
    circuits::GateFo3Bench bench = circuits::buildInvFo3(
        *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
    return measure::measureGateDelays(bench);
  };
  const auto tt = delays(Corner::TT);
  const auto fs = delays(Corner::FS);
  const auto sf = delays(Corner::SF);
  EXPECT_LT(fs.tphl, tt.tphl);
  EXPECT_GT(fs.tplh, tt.tplh);
  EXPECT_GT(sf.tphl, tt.tphl);
  EXPECT_LT(sf.tplh, tt.tplh);
}

TEST(Corners, SummaryMentionsEveryCorner) {
  const StatisticalCorners corners(kit());
  const std::string s = corners.summary();
  for (const Corner c : kAllCorners) {
    EXPECT_NE(s.find(toString(c)), std::string::npos) << toString(c);
  }
}

}  // namespace
}  // namespace vsstat::core
