#include "core/statistical_vs.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "measure/device_metrics.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace vsstat::core {
namespace {

using models::DeviceType;
using models::geometryNm;

/// Shared fixture: characterize once (analytic golden variance keeps it
/// fast and noise-free) and reuse across tests.
class StatisticalVsKitTest : public ::testing::Test {
 protected:
  static const StatisticalVsKit& kit() {
    static const StatisticalVsKit k = [] {
      CharacterizeOptions opt;
      opt.analyticGoldenVariance = true;
      return StatisticalVsKit::characterize(extract::GoldenKit::default40nm(),
                                            opt);
    }();
    return k;
  }
};

TEST_F(StatisticalVsKitTest, CardsHaveCorrectPolarity) {
  EXPECT_EQ(kit().nominal(DeviceType::Nmos).type, DeviceType::Nmos);
  EXPECT_EQ(kit().nominal(DeviceType::Pmos).type, DeviceType::Pmos);
  EXPECT_DOUBLE_EQ(kit().vdd(), 0.9);
}

TEST_F(StatisticalVsKitTest, AlphasLandInPaperBallpark) {
  // Paper Table II: a1 = 2.3/2.86 V nm, a2 = a3 ~ 3.7 nm, a4 ~ 900/780.
  const auto& n = kit().alphas(DeviceType::Nmos);
  EXPECT_GT(n.aVt0, 1.2);
  EXPECT_LT(n.aVt0, 3.5);
  EXPECT_GT(n.aLeff, 2.0);
  EXPECT_LT(n.aLeff, 5.5);
  EXPECT_DOUBLE_EQ(n.aLeff, n.aWeff);  // alpha2 == alpha3 tie
  EXPECT_GE(n.aMu, 0.0);
  const auto& p = kit().alphas(DeviceType::Pmos);
  EXPECT_GT(p.aVt0, n.aVt0 * 0.8);  // PMOS mismatch >= NMOS (RDF heavier)
}

TEST_F(StatisticalVsKitTest, SigmasFollowPelgrom) {
  const auto s1 = kit().sigmas(DeviceType::Nmos, geometryNm(600, 40));
  const auto s2 = kit().sigmas(DeviceType::Nmos, geometryNm(2400, 160));
  EXPECT_NEAR(s1.sVt0 / s2.sVt0, 4.0, 1e-9);
}

TEST_F(StatisticalVsKitTest, MakeInstanceVariesDevice) {
  stats::Rng rng(5);
  const auto geom = geometryNm(600, 40);
  stats::MomentAccumulator acc;
  for (int i = 0; i < 400; ++i) {
    const auto inst = kit().makeInstance(DeviceType::Nmos, geom, rng);
    acc.add(measure::idsat(*inst.model, inst.geometry, 0.9));
  }
  EXPECT_GT(acc.stddev() / acc.mean(), 0.015);
  EXPECT_LT(acc.stddev() / acc.mean(), 0.10);
}

TEST_F(StatisticalVsKitTest, ValidationSigmaMatchesGoldenKit) {
  // The paper's Table III acceptance: VS-model MC sigma tracks the golden
  // kit's sigma at validation geometries.  15% tolerance covers the
  // documented cross-model sensitivity gap plus MC noise.
  const extract::GoldenKit golden = extract::GoldenKit::default40nm();
  for (const auto& geomNmPair :
       {std::pair{1500.0, 40.0}, std::pair{600.0, 40.0}}) {
    const auto geom = geometryNm(geomNmPair.first, geomNmPair.second);
    const auto goldenVar =
        extract::analyticGoldenVariance(golden, DeviceType::Nmos, geom);

    stats::Rng rng(17);
    stats::MomentAccumulator idsat, ioff;
    for (int i = 0; i < 3000; ++i) {
      const auto inst = kit().makeInstance(DeviceType::Nmos, geom, rng);
      idsat.add(measure::idsat(*inst.model, inst.geometry, 0.9));
      ioff.add(measure::log10Ioff(*inst.model, inst.geometry, 0.9));
    }
    EXPECT_NEAR(idsat.stddev(), std::sqrt(goldenVar.varIdsat),
                0.15 * std::sqrt(goldenVar.varIdsat))
        << "W=" << geomNmPair.first;
    EXPECT_NEAR(ioff.stddev(), std::sqrt(goldenVar.varLog10Ioff),
                0.10 * std::sqrt(goldenVar.varLog10Ioff))
        << "W=" << geomNmPair.first;
  }
}

TEST_F(StatisticalVsKitTest, ProvidersAreConstructible) {
  EXPECT_NE(kit().makeProvider(stats::Rng(1)), nullptr);
  EXPECT_NE(kit().makeNominalProvider(), nullptr);
}

TEST_F(StatisticalVsKitTest, SummaryMentionsAllAlphas) {
  const std::string s = kit().summary();
  EXPECT_NE(s.find("a1(VT0)"), std::string::npos);
  EXPECT_NE(s.find("a5(Cinv)"), std::string::npos);
  EXPECT_NE(s.find("NMOS"), std::string::npos);
  EXPECT_NE(s.find("PMOS"), std::string::npos);
}

TEST(StatisticalVsKitCtor, RejectsSwappedPolarities) {
  EXPECT_THROW(StatisticalVsKit(models::defaultVsPmos(),
                                models::defaultVsNmos(),
                                models::PelgromAlphas{},
                                models::PelgromAlphas{}, 0.9),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::core
