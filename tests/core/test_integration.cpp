// End-to-end integration: the full paper flow feeding circuit Monte Carlo.
#include <gtest/gtest.h>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "stats/descriptive.hpp"
#include "stats/normality.hpp"

namespace vsstat::core {
namespace {

using circuits::CellSizing;
using circuits::StimulusSpec;
using models::DeviceType;

const StatisticalVsKit& sharedKit() {
  static const StatisticalVsKit k = [] {
    CharacterizeOptions opt;
    opt.analyticGoldenVariance = true;
    return StatisticalVsKit::characterize(extract::GoldenKit::default40nm(),
                                          opt);
  }();
  return k;
}

TEST(Integration, InverterDelayMonteCarloIsGaussianAtNominalVdd) {
  // Fig. 5 behaviour: at Vdd = 0.9 V the FO3 delay distribution is
  // Gaussian with a few-percent sigma.
  mc::McOptions opt;
  opt.samples = 120;
  opt.seed = 7;
  const mc::McResult r = mc::runCampaign(
      opt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = sharedKit().makeProvider(rng);
        auto bench =
            circuits::buildInvFo3(*provider, CellSizing{}, StimulusSpec{});
        out[0] = measure::measureGateDelays(bench, 0.4e-12).average();
      });
  ASSERT_GT(r.sampleCount(), 100u);
  const auto s = stats::summarize(r.metrics[0]);
  EXPECT_GT(s.mean, 1e-12);
  EXPECT_LT(s.mean, 30e-12);
  const double rel = s.stddev / s.mean;
  EXPECT_GT(rel, 0.005);
  EXPECT_LT(rel, 0.15);
}

TEST(Integration, SramSnmMonteCarloShowsVariation) {
  // Fig. 9 behaviour: READ SNM spreads visibly under mismatch.
  mc::McOptions opt;
  opt.samples = 60;
  opt.seed = 11;
  const mc::McResult r = mc::runCampaign(
      opt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = sharedKit().makeProvider(rng);
        auto bench = circuits::buildSramButterfly(
            *provider, 0.9, circuits::SramMode::Read, circuits::SramSizing{});
        out[0] = measure::measureSnm(bench, 41).cellSnm();
      });
  ASSERT_GT(r.sampleCount(), 50u);
  const auto s = stats::summarize(r.metrics[0]);
  EXPECT_GT(s.mean, 0.03);
  EXPECT_LT(s.mean, 0.35);
  EXPECT_GT(s.stddev, 0.002);
}

TEST(Integration, GoldenAndVsProvidersProduceComparableDelaySigma) {
  // The headline claim: the statistical VS kit reproduces the golden
  // kit's circuit-level variability.  Compare FO3 delay sigma/mean.
  const extract::GoldenKit golden = extract::GoldenKit::default40nm();

  const auto campaign = [&](bool useVs) {
    mc::McOptions opt;
    opt.samples = 100;
    opt.seed = 13;
    const mc::McResult r = mc::runCampaign(
        opt, 1, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
          std::unique_ptr<circuits::DeviceProvider> provider;
          if (useVs) {
            provider = sharedKit().makeProvider(rng);
          } else {
            provider = std::make_unique<mc::BsimStatisticalProvider>(
                golden.nmos, golden.pmos, golden.nmosMismatch,
                golden.pmosMismatch, rng);
          }
          auto bench =
              circuits::buildInvFo3(*provider, CellSizing{}, StimulusSpec{});
          out[0] = measure::measureGateDelays(bench, 0.4e-12).average();
        });
    return stats::summarize(r.metrics[0]);
  };

  const auto vs = campaign(true);
  const auto bsim = campaign(false);
  const double relVs = vs.stddev / vs.mean;
  const double relBsim = bsim.stddev / bsim.mean;
  EXPECT_NEAR(relVs, relBsim, 0.5 * relBsim);
  EXPECT_NEAR(vs.mean, bsim.mean, 0.30 * bsim.mean);
}

}  // namespace
}  // namespace vsstat::core
