#include "circuits/cells.hpp"

#include <gtest/gtest.h>

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::circuits {
namespace {

using models::BsimLite;
using models::VsModel;
using spice::Circuit;
using spice::NodeId;
using spice::SourceWaveform;

constexpr double kVdd = 0.9;

NominalProvider vsProvider() {
  return NominalProvider(VsModel(models::defaultVsNmos()),
                         VsModel(models::defaultVsPmos()));
}

TEST(InverterCell, InstantiatesTwoDevices) {
  Circuit c;
  auto p = vsProvider();
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const NodeId vdd = c.node("vdd");
  addInverter(c, p, "X1", in, out, vdd, CellSizing{});
  EXPECT_EQ(c.elements().size(), 2u);
  EXPECT_NO_THROW((void)c.mosfet("X1.MP"));
  EXPECT_NO_THROW((void)c.mosfet("X1.MN"));
}

TEST(InverterCell, SizingScalesGeometry) {
  Circuit c;
  auto p = vsProvider();
  const CellSizing base{600.0, 300.0, 40.0};
  addInverter(c, p, "X1", c.node("a"), c.node("b"), c.node("vdd"),
              base.scaled(2.0));
  EXPECT_NEAR(c.mosfet("X1.MP").geometry().widthNm(), 1200.0, 1e-9);
  EXPECT_NEAR(c.mosfet("X1.MN").geometry().widthNm(), 600.0, 1e-9);
  EXPECT_NEAR(c.mosfet("X1.MN").geometry().lengthNm(), 40.0, 1e-9);
}

TEST(Nand2Cell, TruthTable) {
  // Static DC truth table of the NAND2 (VS models).
  for (const auto& [a, b, expected] :
       std::vector<std::tuple<double, double, double>>{
           {0.0, 0.0, kVdd},
           {0.0, kVdd, kVdd},
           {kVdd, 0.0, kVdd},
           {kVdd, kVdd, 0.0}}) {
    Circuit c;
    auto p = vsProvider();
    const NodeId na = c.node("a");
    const NodeId nb = c.node("b");
    const NodeId out = c.node("out");
    const NodeId vdd = c.node("vdd");
    addNand2(c, p, "X1", na, nb, out, vdd, CellSizing{});
    c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
    c.addVoltageSource("VA", na, c.ground(), SourceWaveform::dc(a));
    c.addVoltageSource("VB", nb, c.ground(), SourceWaveform::dc(b));
    const auto op = spice::dcOperatingPoint(c);
    EXPECT_NEAR(op.v(out), expected, 0.02) << "a=" << a << " b=" << b;
  }
}

TEST(Nand2Cell, HasInternalStackNode) {
  Circuit c;
  auto p = vsProvider();
  addNand2(c, p, "X1", c.node("a"), c.node("b"), c.node("o"), c.node("vdd"),
           CellSizing{});
  EXPECT_EQ(c.elements().size(), 4u);
  // The mid node exists (series NMOS stack).
  EXPECT_EQ(c.nodeName(c.node("X1.mid")), "X1.mid");
}

TEST(NmosPass, ConductsWhenGateHigh) {
  Circuit c;
  auto p = vsProvider();
  const NodeId x = c.node("x");
  const NodeId y = c.node("y");
  const NodeId g = c.node("g");
  addNmosPass(c, p, "MP1", x, y, g, 300.0, 40.0);
  c.addVoltageSource("VX", x, c.ground(), SourceWaveform::dc(0.5));
  c.addVoltageSource("VG", g, c.ground(), SourceWaveform::dc(kVdd));
  c.addResistor("RL", y, c.ground(), 1e6);
  const auto op = spice::dcOperatingPoint(c);
  EXPECT_GT(op.v(y), 0.4);  // passes most of the 0.5 V
}

TEST(NmosPass, BlocksWhenGateLow) {
  Circuit c;
  auto p = vsProvider();
  const NodeId x = c.node("x");
  const NodeId y = c.node("y");
  const NodeId g = c.node("g");
  addNmosPass(c, p, "MP1", x, y, g, 300.0, 40.0);
  c.addVoltageSource("VX", x, c.ground(), SourceWaveform::dc(0.5));
  c.addVoltageSource("VG", g, c.ground(), SourceWaveform::dc(0.0));
  c.addResistor("RL", y, c.ground(), 1e6);
  const auto op = spice::dcOperatingPoint(c);
  EXPECT_LT(op.v(y), 0.1);  // only leakage
}


TEST(Nor2Cell, TruthTableAtDc) {
  Circuit c;
  auto p = vsProvider();
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId out = c.node("out");
  const NodeId vdd = c.node("vdd");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
  auto& va = c.addVoltageSource("VA", a, c.ground(), SourceWaveform::dc(0.0));
  auto& vb = c.addVoltageSource("VB", b, c.ground(), SourceWaveform::dc(0.0));
  addNor2(c, p, "X1", a, b, out, vdd, CellSizing{});

  const auto outAt = [&](double la, double lb) {
    va.setDcLevel(la);
    vb.setDcLevel(lb);
    return spice::dcOperatingPoint(c).v(out);
  };
  EXPECT_NEAR(outAt(0.0, 0.0), kVdd, 0.02);  // 00 -> 1
  EXPECT_NEAR(outAt(kVdd, 0.0), 0.0, 0.02);  // 10 -> 0
  EXPECT_NEAR(outAt(0.0, kVdd), 0.0, 0.02);  // 01 -> 0
  EXPECT_NEAR(outAt(kVdd, kVdd), 0.0, 0.02); // 11 -> 0
}

TEST(Nor2Cell, FourDevicesWithSeriesPmos) {
  Circuit c;
  auto p = vsProvider();
  addNor2(c, p, "X1", c.node("a"), c.node("b"), c.node("out"),
          c.node("vdd"), CellSizing{});
  int fets = 0;
  for (const auto& e : c.elements()) {
    if (dynamic_cast<const spice::MosfetElement*>(e.get()) != nullptr) ++fets;
  }
  EXPECT_EQ(fets, 4);
  // Internal series node exists.
  EXPECT_NO_THROW((void)c.mosfet("X1.MPA"));
  EXPECT_NO_THROW((void)c.mosfet("X1.MNB"));
}

TEST(Nand3Cell, TruthTableAtDc) {
  Circuit c;
  auto p = vsProvider();
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId cc = c.node("c");
  const NodeId out = c.node("out");
  const NodeId vdd = c.node("vdd");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
  auto& va = c.addVoltageSource("VA", a, c.ground(), SourceWaveform::dc(0.0));
  auto& vb = c.addVoltageSource("VB", b, c.ground(), SourceWaveform::dc(0.0));
  auto& vc = c.addVoltageSource("VC", cc, c.ground(), SourceWaveform::dc(0.0));
  addNand3(c, p, "X1", a, b, cc, out, vdd, CellSizing{});

  const auto outAt = [&](double la, double lb, double lc) {
    va.setDcLevel(la);
    vb.setDcLevel(lb);
    vc.setDcLevel(lc);
    return spice::dcOperatingPoint(c).v(out);
  };
  // Output low only when all three inputs are high.
  EXPECT_NEAR(outAt(kVdd, kVdd, kVdd), 0.0, 0.02);
  EXPECT_NEAR(outAt(0.0, kVdd, kVdd), kVdd, 0.02);
  EXPECT_NEAR(outAt(kVdd, 0.0, kVdd), kVdd, 0.02);
  EXPECT_NEAR(outAt(kVdd, kVdd, 0.0), kVdd, 0.02);
  EXPECT_NEAR(outAt(0.0, 0.0, 0.0), kVdd, 0.02);
}

TEST(Nand3Cell, SixDevices) {
  Circuit c;
  auto p = vsProvider();
  addNand3(c, p, "X1", c.node("a"), c.node("b"), c.node("cc"),
           c.node("out"), c.node("vdd"), CellSizing{});
  int fets = 0;
  for (const auto& e : c.elements()) {
    if (dynamic_cast<const spice::MosfetElement*>(e.get()) != nullptr) ++fets;
  }
  EXPECT_EQ(fets, 6);
}

TEST(Provider, NominalProviderChecksPolarity) {
  EXPECT_THROW(NominalProvider(VsModel(models::defaultVsPmos()),
                               VsModel(models::defaultVsNmos())),
               vsstat::InvalidArgumentError);
}

TEST(Provider, WorksAcrossModelFamilies) {
  // A BsimLite-backed provider builds the same topology.
  Circuit c;
  NominalProvider p(BsimLite(models::defaultBsimNmos()),
                    BsimLite(models::defaultBsimPmos()));
  addInverter(c, p, "X1", c.node("a"), c.node("b"), c.node("vdd"),
              CellSizing{});
  EXPECT_EQ(c.mosfet("X1.MP").model().name(), "BSIM-lite");
}

}  // namespace
}  // namespace vsstat::circuits
