#include "circuits/benchmarks.hpp"

#include <gtest/gtest.h>

#include "models/vs_model.hpp"
#include "measure/delay.hpp"
#include "util/error.hpp"
#include "spice/ac.hpp"
#include "spice/analysis.hpp"
#include "spice/elements.hpp"

namespace vsstat::circuits {
namespace {

using models::VsModel;
using spice::SourceWaveform;

constexpr double kVdd = 0.9;

NominalProvider vsProvider() {
  return NominalProvider(VsModel(models::defaultVsNmos()),
                         VsModel(models::defaultVsPmos()));
}

TEST(InvFo3, HasDriverPlusLoads) {
  auto p = vsProvider();
  GateFo3Bench b = buildInvFo3(p, CellSizing{}, StimulusSpec{});
  // driver (2 FETs) + 3 loads (2 each) + 2 sources = 10 elements.
  EXPECT_EQ(b.circuit.elements().size(), 10u);
  EXPECT_GT(b.tStop, 0.0);
}

TEST(InvFo3, StaticLevelsInvert) {
  auto p = vsProvider();
  GateFo3Bench b = buildInvFo3(p, CellSizing{}, StimulusSpec{});
  b.circuit.voltageSource(b.inSource).setDcLevel(0.0);
  EXPECT_NEAR(spice::dcOperatingPoint(b.circuit).v(b.out), kVdd, 0.01);
  b.circuit.voltageSource(b.inSource).setDcLevel(kVdd);
  EXPECT_NEAR(spice::dcOperatingPoint(b.circuit).v(b.out), 0.0, 0.01);
}

TEST(Nand2Fo3, InvertsSwitchingInput) {
  auto p = vsProvider();
  GateFo3Bench b = buildNand2Fo3(p, CellSizing{}, StimulusSpec{});
  // B tied high: out = !A.
  b.circuit.voltageSource(b.inSource).setDcLevel(0.0);
  EXPECT_NEAR(spice::dcOperatingPoint(b.circuit).v(b.out), kVdd, 0.01);
  b.circuit.voltageSource(b.inSource).setDcLevel(kVdd);
  EXPECT_NEAR(spice::dcOperatingPoint(b.circuit).v(b.out), 0.0, 0.01);
}

TEST(Nand2Fo3, WorksAtScaledSupplies) {
  // The Fig. 7 sweep runs the same fixture at 0.9/0.7/0.55 V.
  for (double vdd : {0.9, 0.7, 0.55}) {
    auto p = vsProvider();
    StimulusSpec s;
    s.vdd = vdd;
    GateFo3Bench b = buildNand2Fo3(p, CellSizing{}, s);
    b.circuit.voltageSource(b.inSource).setDcLevel(0.0);
    EXPECT_NEAR(spice::dcOperatingPoint(b.circuit).v(b.out), vdd, 0.02)
        << "vdd = " << vdd;
  }
}

TEST(Dff, CapturesDataOnRisingEdge) {
  auto p = vsProvider();
  DffBench b = buildDff(p, kVdd, CellSizing{600.0, 300.0, 40.0});

  // D = 1 well before the clock edge at 60 ps.
  b.circuit.voltageSource(b.dSource).setWaveform(SourceWaveform::pwl(
      {{0.0, 0.0}, {10e-12, 0.0}, {18e-12, kVdd}, {200e-12, kVdd}}));
  b.circuit.voltageSource(b.clkSource).setWaveform(SourceWaveform::pwl(
      {{0.0, 0.0}, {60e-12, 0.0}, {68e-12, kVdd}, {200e-12, kVdd}}));

  spice::TransientOptions opt;
  opt.tStop = 200e-12;
  opt.dt = 0.3e-12;
  const spice::Waveform w = spice::transient(b.circuit, opt);
  EXPECT_GT(w.finalValue(b.q), 0.9 * kVdd);  // captured the 1
}

TEST(Dff, HoldsValueWhenDataChangesLate) {
  auto p = vsProvider();
  DffBench b = buildDff(p, kVdd, CellSizing{600.0, 300.0, 40.0});

  // D rises only 25 ps AFTER the rising clock edge: Q must stay 0 well
  // after the edge (the old data was 0).
  b.circuit.voltageSource(b.dSource).setWaveform(SourceWaveform::pwl(
      {{0.0, 0.0}, {85e-12, 0.0}, {93e-12, kVdd}, {200e-12, kVdd}}));
  b.circuit.voltageSource(b.clkSource).setWaveform(SourceWaveform::pwl(
      {{0.0, 0.0}, {60e-12, 0.0}, {68e-12, kVdd}, {200e-12, kVdd}}));

  spice::TransientOptions opt;
  opt.tStop = 160e-12;
  opt.dt = 0.3e-12;
  const spice::Waveform w = spice::transient(b.circuit, opt);
  EXPECT_LT(w.valueAt(b.q, 150e-12), 0.25 * kVdd);
}

TEST(Dff, SixteenTransistors) {
  auto p = vsProvider();
  DffBench b = buildDff(p, kVdd, CellSizing{600.0, 300.0, 40.0});
  int fets = 0;
  for (const auto& e : b.circuit.elements()) {
    if (dynamic_cast<const spice::MosfetElement*>(e.get()) != nullptr) ++fets;
  }
  EXPECT_EQ(fets, 16);
}

TEST(SramButterfly, HalfCellsAreInverting) {
  auto p = vsProvider();
  SramButterflyBench b =
      buildSramButterfly(p, kVdd, SramMode::Hold, SramSizing{});
  const auto low = spice::dcSweep(b.circuit, b.sweep1, {0.0});
  const auto high = spice::dcSweep(b.circuit, b.sweep1, {kVdd});
  EXPECT_GT(low.front().v(b.out1), 0.85 * kVdd);
  EXPECT_LT(high.front().v(b.out1), 0.15 * kVdd);
}

TEST(SramButterfly, ReadModeDegradesLowLevel) {
  // With WL on and BL at Vdd, the access transistor pulls the '0' node up:
  // the READ butterfly's low level is visibly above the HOLD one.
  auto p1 = vsProvider();
  SramButterflyBench hold =
      buildSramButterfly(p1, kVdd, SramMode::Hold, SramSizing{});
  auto p2 = vsProvider();
  SramButterflyBench read =
      buildSramButterfly(p2, kVdd, SramMode::Read, SramSizing{});
  const double holdLow =
      spice::dcSweep(hold.circuit, hold.sweep1, {kVdd}).front().v(hold.out1);
  const double readLow =
      spice::dcSweep(read.circuit, read.sweep1, {kVdd}).front().v(read.out1);
  EXPECT_GT(readLow, holdLow + 0.02);
}

TEST(SramButterfly, SixDevicesSampledInCellOrder) {
  auto p = vsProvider();
  SramButterflyBench b =
      buildSramButterfly(p, kVdd, SramMode::Read, SramSizing{});
  int fets = 0;
  for (const auto& e : b.circuit.elements()) {
    if (dynamic_cast<const spice::MosfetElement*>(e.get()) != nullptr) ++fets;
  }
  EXPECT_EQ(fets, 6);
}

TEST(SramCell, HoldsBothStatesWhenSeeded) {
  auto p1 = vsProvider();
  SramCellBench cell = buildSramCell(p1, kVdd, /*wordlineOn=*/false,
                                     SramSizing{});
  const spice::OperatingPoint opHigh =
      spice::dcOperatingPoint(cell.circuit, cell.stateGuess(true), {});
  EXPECT_GT(opHigh.v(cell.q), 0.85 * kVdd);
  EXPECT_LT(opHigh.v(cell.qb), 0.15 * kVdd);

  const spice::OperatingPoint opLow =
      spice::dcOperatingPoint(cell.circuit, cell.stateGuess(false), {});
  EXPECT_LT(opLow.v(cell.q), 0.15 * kVdd);
  EXPECT_GT(opLow.v(cell.qb), 0.85 * kVdd);
}

TEST(SramCell, ReadAccessLiftsTheLowNode) {
  // With the wordline on and both bitlines at Vdd, the access transistor
  // fights the pull-down on the '0' side: the low node rises relative to
  // hold (the read-disturb mechanism behind the READ SNM loss).
  auto p1 = vsProvider();
  SramCellBench hold =
      buildSramCell(p1, kVdd, /*wordlineOn=*/false, SramSizing{});
  auto p2 = vsProvider();
  SramCellBench read =
      buildSramCell(p2, kVdd, /*wordlineOn=*/true, SramSizing{});

  const double holdLow =
      spice::dcOperatingPoint(hold.circuit, hold.stateGuess(), {}).v(hold.qb);
  const double readLow =
      spice::dcOperatingPoint(read.circuit, read.stateGuess(), {}).v(read.qb);
  EXPECT_GT(readLow, holdLow + 0.02);
}

TEST(SramCell, SupplyNoiseTransferIsFiniteAndStateDependent) {
  // Small-signal supply gain at the stored-'1' node: near unity at low
  // frequency (the '1' is held through the PMOS), well-behaved over a wide
  // sweep.  This is the Table IV "SRAM AC" campaign's per-sample kernel.
  auto p = vsProvider();
  SramCellBench cell = buildSramCell(p, kVdd, /*wordlineOn=*/false,
                                     SramSizing{});
  const spice::OperatingPoint op =
      spice::dcOperatingPoint(cell.circuit, cell.stateGuess(), {});
  const spice::SmallSignalSystem system(cell.circuit, op);
  const auto excitation =
      system.voltageExcitation(cell.circuit, cell.vddSource);

  const auto gainAt = [&](double f, spice::NodeId node) {
    const auto x = system.solve(f, excitation);
    return std::abs(x[static_cast<std::size_t>(node - 1)]);
  };
  EXPECT_NEAR(gainAt(1e6, cell.q), 1.0, 0.05);   // '1' node follows Vdd
  EXPECT_LT(gainAt(1e6, cell.qb), 0.2);          // '0' node is held down
  for (double f : {1e7, 1e9, 1e11}) {
    const double g = gainAt(f, cell.q);
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, 2.0) << "supply gain peaking at f=" << f;
  }
}

TEST(SramCell, SixDevicesMatchButterflyOrder) {
  auto p = vsProvider();
  SramCellBench cell = buildSramCell(p, kVdd, false, SramSizing{});
  std::vector<std::string> fets;
  for (const auto& e : cell.circuit.elements()) {
    if (dynamic_cast<const spice::MosfetElement*>(e.get()) != nullptr)
      fets.push_back(e->name());
  }
  ASSERT_EQ(fets.size(), 6u);
  EXPECT_EQ(fets[0], "MPU1");
  EXPECT_EQ(fets[1], "MPD1");
  EXPECT_EQ(fets[2], "MPG1");
  EXPECT_EQ(fets[3], "MPU2");
  EXPECT_EQ(fets[4], "MPD2");
  EXPECT_EQ(fets[5], "MPG2");
}


TEST(RingOscillator, RejectsEvenOrTooFewStages) {
  auto p = vsProvider();
  EXPECT_THROW((void)buildRingOscillator(p, 4, CellSizing{}, kVdd),
               vsstat::InvalidArgumentError);
  auto p2 = vsProvider();
  EXPECT_THROW((void)buildRingOscillator(p2, 1, CellSizing{}, kVdd),
               vsstat::InvalidArgumentError);
}

TEST(RingOscillator, ThreeStageRingOscillatesRailToRail) {
  auto p = vsProvider();
  RingOscillatorBench ro = buildRingOscillator(p, 3, CellSizing{}, kVdd);
  const measure::OscillationResult r = measure::measureOscillation(ro);
  EXPECT_GT(r.frequency, 1e9);          // it oscillates
  EXPECT_LT(r.frequency, 1e12);         // at a sane rate
  EXPECT_GT(r.swing, 0.8 * kVdd);       // near rail-to-rail
  EXPECT_EQ(r.cyclesMeasured, 4);
  EXPECT_NEAR(r.period * r.frequency, 1.0, 1e-12);
}

TEST(RingOscillator, MoreStagesMeansLowerFrequency) {
  // f = 1/(2 N tp): five stages must run at roughly 3/5 of the
  // three-stage frequency (equal stage delay).
  auto p3 = vsProvider();
  RingOscillatorBench ro3 = buildRingOscillator(p3, 3, CellSizing{}, kVdd);
  auto p5 = vsProvider();
  RingOscillatorBench ro5 = buildRingOscillator(p5, 5, CellSizing{}, kVdd);
  const double f3 = measure::measureOscillation(ro3).frequency;
  const double f5 = measure::measureOscillation(ro5).frequency;
  EXPECT_LT(f5, f3);
  EXPECT_NEAR(f5 / f3, 3.0 / 5.0, 0.12);
}

TEST(HTreeClock, LeafCountAndNearLosslessDelivery) {
  auto p = vsProvider();
  HTreeClockBench b = buildHTreeClock(p, 4, kVdd);
  EXPECT_EQ(b.leaves.size(), 16u);  // 2^levels leaves, breadth-first
  b.circuit.voltageSource(b.rootSource).setDcLevel(kVdd);
  const spice::OperatingPoint op = spice::dcOperatingPoint(b.circuit);
  // Leakage loads only: every leaf sits within a few percent of the root,
  // and deeper-but-symmetric leaves see identical topology per branch.
  for (spice::NodeId leaf : b.leaves) {
    EXPECT_GT(op.v(leaf), 0.9 * kVdd);
    EXPECT_LE(op.v(leaf), kVdd + 1e-9);
  }
}

TEST(HTreeClock, RejectsDegenerateLevels) {
  auto p = vsProvider();
  EXPECT_THROW((void)buildHTreeClock(p, 0, kVdd), InvalidArgumentError);
}

TEST(SramColumn, HoldsStateWithSharedBitlines) {
  auto p = vsProvider();
  SramColumnBench b = buildSramColumn(p, 4, kVdd, SramSizing{});
  ASSERT_EQ(b.q.size(), 4u);
  const spice::OperatingPoint op =
      spice::dcOperatingPoint(b.circuit, b.stateGuess(), {});
  for (std::size_t i = 0; i < b.q.size(); ++i) {
    const bool selected = static_cast<int>(i) == b.selected;
    EXPECT_GT(op.v(b.q[i]), 0.8 * kVdd) << "cell " << i;
    // Unselected cells hold a hard 0; the selected cell's low node is
    // read-disturbed up through its ON access device.
    if (selected) {
      EXPECT_GT(op.v(b.qb[i]), 0.01 * kVdd) << "cell " << i;
    } else {
      EXPECT_LT(op.v(b.qb[i]), 0.1 * kVdd) << "cell " << i;
    }
  }
}

TEST(SramColumn, DeviceOrderMatchesCellConvention) {
  // 6 FETs per cell in PU1,PD1,PG1,PU2,PD2,PG2 order + 5 sources.
  auto p = vsProvider();
  SramColumnBench b = buildSramColumn(p, 3, kVdd, SramSizing{});
  std::size_t fets = 0;
  for (const auto& e : b.circuit.elements())
    if (dynamic_cast<const spice::MosfetElement*>(e.get()) != nullptr) ++fets;
  EXPECT_EQ(fets, 18u);
}

TEST(RingOscillator, FrequencyDropsWithSupply) {
  auto p1 = vsProvider();
  RingOscillatorBench hi = buildRingOscillator(p1, 3, CellSizing{}, 0.9);
  auto p2 = vsProvider();
  RingOscillatorBench lo = buildRingOscillator(p2, 3, CellSizing{}, 0.7);
  EXPECT_GT(measure::measureOscillation(hi).frequency,
            1.2 * measure::measureOscillation(lo).frequency);
}

}  // namespace
}  // namespace vsstat::circuits
