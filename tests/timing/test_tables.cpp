// NLDM-style characterization: physical trends of the tables, exactness
// of interpolation, and input validation.
#include <gtest/gtest.h>

#include "circuits/provider.hpp"
#include "models/vs_model.hpp"
#include "timing/tables.hpp"
#include "util/error.hpp"

namespace vsstat::timing {
namespace {

using models::VsModel;

const CellTiming& cell() {
  // Characterize once (9 transients); shared by the table tests.
  static const CellTiming c = [] {
    circuits::NominalProvider provider(VsModel(models::defaultVsNmos()),
                                       VsModel(models::defaultVsPmos()));
    return characterizeInverter(provider, circuits::CellSizing{});
  }();
  return c;
}

TEST(TimingTables, DelayGrowsWithLoad) {
  const TimingTable& t = cell().fall;
  for (std::size_t si = 0; si < t.inputSlews.size(); ++si) {
    for (std::size_t li = 1; li < t.loadsFarads.size(); ++li) {
      EXPECT_GT(t.delay(si, li), t.delay(si, li - 1))
          << "slew row " << si << ", load col " << li;
    }
  }
}

TEST(TimingTables, OutputSlewGrowsWithLoad) {
  const TimingTable& t = cell().rise;
  for (std::size_t si = 0; si < t.inputSlews.size(); ++si) {
    for (std::size_t li = 1; li < t.loadsFarads.size(); ++li) {
      EXPECT_GT(t.outputSlew(si, li), t.outputSlew(si, li - 1));
    }
  }
}

TEST(TimingTables, DelayGrowsWithInputSlew) {
  // Slower input edges delay the switching point.
  const TimingTable& t = cell().fall;
  const std::size_t lastLoad = t.loadsFarads.size() - 1;
  for (std::size_t si = 1; si < t.inputSlews.size(); ++si) {
    EXPECT_GT(t.delay(si, lastLoad), t.delay(si - 1, lastLoad));
  }
}

TEST(TimingTables, InterpolationIsExactAtGridPoints) {
  const TimingTable& t = cell().fall;
  for (std::size_t si = 0; si < t.inputSlews.size(); ++si) {
    for (std::size_t li = 0; li < t.loadsFarads.size(); ++li) {
      EXPECT_NEAR(t.delayAt(t.inputSlews[si], t.loadsFarads[li]),
                  t.delay(si, li), 1e-18);
    }
  }
}

TEST(TimingTables, InterpolationIsBetweenNeighbours) {
  const TimingTable& t = cell().fall;
  const double slew = 0.5 * (t.inputSlews[0] + t.inputSlews[1]);
  const double load = 0.5 * (t.loadsFarads[0] + t.loadsFarads[1]);
  const double v = t.delayAt(slew, load);
  const double lo = std::min({t.delay(0, 0), t.delay(0, 1), t.delay(1, 0),
                              t.delay(1, 1)});
  const double hi = std::max({t.delay(0, 0), t.delay(0, 1), t.delay(1, 0),
                              t.delay(1, 1)});
  EXPECT_GE(v, lo);
  EXPECT_LE(v, hi);
}

TEST(TimingTables, InterpolationClampsOutsideTheGrid) {
  const TimingTable& t = cell().fall;
  EXPECT_DOUBLE_EQ(t.delayAt(0.0, t.loadsFarads[0]),
                   t.delayAt(t.inputSlews[0], t.loadsFarads[0]));
  EXPECT_DOUBLE_EQ(t.delayAt(1e-9, 1e-12),
                   t.delay(t.inputSlews.size() - 1,
                           t.loadsFarads.size() - 1));
}

TEST(TimingTables, MeasureInverterPointMatchesTable) {
  circuits::NominalProvider provider(VsModel(models::defaultVsNmos()),
                                     VsModel(models::defaultVsPmos()));
  const circuits::DeviceInstance p = provider.make(
      models::DeviceType::Pmos, "MP", models::geometryNm(600, 40));
  const circuits::DeviceInstance n = provider.make(
      models::DeviceType::Nmos, "MN", models::geometryNm(300, 40));
  const DelayPoint point = measureInverterPoint(
      *p.model, p.geometry, *n.model, n.geometry, 0.9, 15e-12, 2e-15);
  // Same fixture, same conditions as the cached cell() grid midpoint.
  EXPECT_NEAR(point.fallDelay, cell().fall.delay(1, 1), 1e-15);
  EXPECT_NEAR(point.riseDelay, cell().rise.delay(1, 1), 1e-15);
  EXPECT_GT(point.fallSlew, 0.0);
  EXPECT_GT(point.riseSlew, 0.0);
}

TEST(TimingTables, ValidatesOptions) {
  circuits::NominalProvider provider(VsModel(models::defaultVsNmos()),
                                     VsModel(models::defaultVsPmos()));
  CharacterizationOptions bad;
  bad.inputSlews = {1e-12};  // fewer than 2
  EXPECT_THROW(
      (void)characterizeInverter(provider, circuits::CellSizing{}, bad),
      InvalidArgumentError);
  bad = CharacterizationOptions{};
  bad.loadsFarads = {2e-15, 1e-15};  // not ascending
  EXPECT_THROW(
      (void)characterizeInverter(provider, circuits::CellSizing{}, bad),
      InvalidArgumentError);
  EXPECT_THROW((void)measureInverterPoint(
                   VsModel(models::defaultVsPmos()),
                   models::geometryNm(600, 40),
                   VsModel(models::defaultVsNmos()),
                   models::geometryNm(300, 40), 0.9, -1e-12, 2e-15),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::timing
