// Statistical stage characterization and its consistency with the corner
// machinery it is built from.
#include <gtest/gtest.h>

#include <cmath>

#include "core/corners.hpp"
#include "models/vs_model.hpp"
#include "timing/statistical_cell.hpp"
#include "timing/tables.hpp"
#include "util/error.hpp"

namespace vsstat::timing {
namespace {

const core::StatisticalVsKit& kit() {
  static const core::StatisticalVsKit k = [] {
    core::CharacterizeOptions opt;
    opt.analyticGoldenVariance = true;
    return core::StatisticalVsKit::characterize(
        extract::GoldenKit::default40nm(), opt);
  }();
  return k;
}

const core::StatisticalCorners& corners() {
  static const core::StatisticalCorners c(kit());
  return c;
}

const CanonicalDelay& stage() {
  static const CanonicalDelay d = [] {
    StageModelOptions opt;
    opt.mismatchSamples = 24;
    return characterizeStageDelay(kit(), corners(), circuits::CellSizing{},
                                  opt);
  }();
  return d;
}

TEST(StatisticalCell, FasterDevicesShortenTheDelay) {
  // Both global axes point toward faster devices, so both delay
  // coefficients must be negative, and the local sigma positive.
  ASSERT_EQ(stage().global.size(), 2u);
  EXPECT_LT(stage().global[0], 0.0);
  EXPECT_LT(stage().global[1], 0.0);
  EXPECT_GT(stage().local, 0.0);
  EXPECT_GT(stage().mean, 1e-12);
  EXPECT_LT(stage().mean, 100e-12);
}

TEST(StatisticalCell, LinearModelPredictsTheFastCornerDelay) {
  // Evaluate the stage fixture at the FF corner (+3 on both axes): the
  // canonical linear prediction mean + 3 gN + 3 gP must land close.
  const circuits::CellSizing sizing;
  const models::DeviceGeometry pGeom =
      models::geometryNm(sizing.wPmosNm, sizing.lengthNm);
  const models::DeviceGeometry nGeom =
      models::geometryNm(sizing.wNmosNm, sizing.lengthNm);
  const auto& dN = corners().delta(core::Corner::FF, models::DeviceType::Nmos);
  const auto& dP = corners().delta(core::Corner::FF, models::DeviceType::Pmos);

  const models::VsModel pmos(
      models::applyToVs(kit().nominal(models::DeviceType::Pmos), dP));
  const models::VsModel nmos(
      models::applyToVs(kit().nominal(models::DeviceType::Nmos), dN));
  StageModelOptions opt;
  const double ffDelay =
      measureInverterPoint(pmos, models::applyGeometry(pGeom, dP), nmos,
                           models::applyGeometry(nGeom, dN), kit().vdd(),
                           opt.inputSlew, opt.loadFarads, opt.dt)
          .averageDelay();

  const double predicted =
      stage().mean + 3.0 * (stage().global[0] + stage().global[1]);
  // First-order model at a 3-sigma excursion: ~5% window.
  EXPECT_NEAR(ffDelay / predicted, 1.0, 0.05);
}

TEST(StatisticalCell, ValidatesOptions) {
  StageModelOptions bad;
  bad.mismatchSamples = 2;
  EXPECT_THROW((void)characterizeStageDelay(kit(), corners(),
                                            circuits::CellSizing{}, bad),
               InvalidArgumentError);

  core::CornerOptions co;
  co.nSigma = 2.0;
  const core::StatisticalCorners twoSigma(kit(), co);
  EXPECT_THROW((void)characterizeStageDelay(kit(), twoSigma,
                                            circuits::CellSizing{}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::timing
