// Canonical SSTA calculus: series composition, correlation, Clark's max
// against closed forms and Monte Carlo, exceedance probability.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stats/rng.hpp"
#include "timing/ssta.hpp"
#include "util/error.hpp"

namespace vsstat::timing {
namespace {

CanonicalDelay make(double mean, std::vector<double> global, double local) {
  CanonicalDelay d;
  d.mean = mean;
  d.global = std::move(global);
  d.local = local;
  return d;
}

TEST(Ssta, VarianceCombinesGlobalAndLocal) {
  const CanonicalDelay d = make(10.0, {3.0, 4.0}, 12.0);
  EXPECT_DOUBLE_EQ(d.variance(), 9.0 + 16.0 + 144.0);
  EXPECT_DOUBLE_EQ(d.sigma(), 13.0);
  EXPECT_DOUBLE_EQ(d.quantileSigma(3.0), 10.0 + 39.0);
}

TEST(Ssta, AddSeriesAddsMeansAndGlobalsRssesLocals) {
  const CanonicalDelay a = make(5.0, {1.0, 2.0}, 3.0);
  const CanonicalDelay b = make(7.0, {0.5, -1.0}, 4.0);
  const CanonicalDelay s = addSeries(a, b);
  EXPECT_DOUBLE_EQ(s.mean, 12.0);
  EXPECT_DOUBLE_EQ(s.global[0], 1.5);
  EXPECT_DOUBLE_EQ(s.global[1], 1.0);
  EXPECT_DOUBLE_EQ(s.local, 5.0);

  EXPECT_THROW((void)addSeries(a, make(0, {1.0}, 0)), InvalidArgumentError);
}

TEST(Ssta, CorrelationFollowsSharedSources) {
  // Fully global, identical coefficients: correlation 1.
  const CanonicalDelay g = make(0.0, {2.0}, 0.0);
  EXPECT_NEAR(correlation(g, g), 1.0, 1e-12);
  // Fully local: correlation 0.
  const CanonicalDelay l1 = make(0.0, {0.0}, 1.0);
  const CanonicalDelay l2 = make(0.0, {0.0}, 2.0);
  EXPECT_DOUBLE_EQ(correlation(l1, l2), 0.0);
  // Opposite global signs anti-correlate.
  EXPECT_NEAR(correlation(make(0, {1.0}, 0), make(0, {-1.0}, 0)), -1.0,
              1e-12);
}

TEST(Ssta, MaxOfIndependentEqualGaussiansMatchesClosedForm) {
  // For X, Y ~ N(m, s^2) independent: E[max] = m + s/sqrt(pi),
  // Var[max] = s^2 (1 - 1/pi).
  const double m = 100.0;
  const double s = 7.0;
  const CanonicalDelay a = make(m, {0.0}, s);
  const CanonicalDelay b = make(m, {0.0}, s);
  const CanonicalDelay mx = statisticalMax(a, b);
  EXPECT_NEAR(mx.mean, m + s / std::sqrt(std::numbers::pi), 1e-9);
  EXPECT_NEAR(mx.variance(), s * s * (1.0 - 1.0 / std::numbers::pi), 1e-9);
}

TEST(Ssta, MaxOfPerfectlyCorrelatedIsTheLargerMean) {
  const CanonicalDelay a = make(10.0, {2.0}, 0.0);
  const CanonicalDelay b = make(9.0, {2.0}, 0.0);
  const CanonicalDelay mx = statisticalMax(a, b);
  EXPECT_DOUBLE_EQ(mx.mean, 10.0);
  EXPECT_DOUBLE_EQ(mx.global[0], 2.0);
}

TEST(Ssta, MaxDominatedByOneInputReturnsIt) {
  // b is far below a: max(a, b) ~ a.
  const CanonicalDelay a = make(100.0, {1.0}, 1.0);
  const CanonicalDelay b = make(50.0, {0.5}, 1.0);
  const CanonicalDelay mx = statisticalMax(a, b);
  EXPECT_NEAR(mx.mean, a.mean, 1e-6);
  EXPECT_NEAR(mx.sigma(), a.sigma(), 1e-4);
  EXPECT_NEAR(mx.global[0], a.global[0], 1e-6);
}

TEST(Ssta, MaxMatchesMonteCarloUnderSharedSources) {
  // Two arrivals sharing one global source plus independent locals.
  const CanonicalDelay a = make(20.0, {2.0}, 1.5);
  const CanonicalDelay b = make(21.0, {1.0}, 2.5);
  const CanonicalDelay mx = statisticalMax(a, b);

  stats::Rng rng(99);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    const double va = a.mean + a.global[0] * x + a.local * rng.normal();
    const double vb = b.mean + b.global[0] * x + b.local * rng.normal();
    const double m = std::max(va, vb);
    sum += m;
    sumSq += m * m;
  }
  const double mcMean = sum / n;
  const double mcVar = sumSq / n - mcMean * mcMean;
  EXPECT_NEAR(mx.mean, mcMean, 0.01);
  EXPECT_NEAR(mx.variance(), mcVar, 0.05 * mcVar);
}

TEST(Ssta, MaxVarianceMatchedWhenGlobalsOvershoot) {
  // Anti-correlated inputs: the tightness-weighted global mix can exceed
  // Clark's matched variance; the implementation must rescale, never
  // produce a negative local variance.
  const CanonicalDelay a = make(10.0, {3.0}, 0.1);
  const CanonicalDelay b = make(10.0, {-3.0}, 0.1);
  const CanonicalDelay mx = statisticalMax(a, b);
  EXPECT_GE(mx.local, 0.0);
  EXPECT_GT(mx.mean, 10.0);  // max of anti-correlated spreads upward
  // Moment consistency against MC.
  stats::Rng rng(7);
  double sum = 0.0, sumSq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    const double va = 10.0 + 3.0 * x + 0.1 * rng.normal();
    const double vb = 10.0 - 3.0 * x + 0.1 * rng.normal();
    const double m = std::max(va, vb);
    sum += m;
    sumSq += m * m;
  }
  const double mcMean = sum / n;
  EXPECT_NEAR(mx.mean, mcMean, 0.02);
  EXPECT_NEAR(mx.variance(), sumSq / n - mcMean * mcMean,
              0.05 * mx.variance() + 0.01);
}

TEST(Ssta, ExceedanceProbabilityMatchesAnalyticCases) {
  // Independent equal-sigma: P[a > b] = Phi((ma - mb)/(s*sqrt(2))).
  const CanonicalDelay a = make(1.0, {0.0}, 1.0);
  const CanonicalDelay b = make(0.0, {0.0}, 1.0);
  EXPECT_NEAR(exceedanceProbability(a, b), 0.7602, 5e-4);
  EXPECT_NEAR(exceedanceProbability(b, a), 1.0 - 0.7602, 5e-4);
  // Equal canonical forms are still DISTINCT arrivals: the local terms
  // are independent unit Gaussians, so each wins half the time.
  EXPECT_DOUBLE_EQ(exceedanceProbability(a, a), 0.5);
  // Fully shared (purely global) identical arrivals are the degenerate
  // tie: strict excess never happens.
  const CanonicalDelay g = make(2.0, {1.5}, 0.0);
  EXPECT_DOUBLE_EQ(exceedanceProbability(g, g), 0.0);
}

TEST(Ssta, ChainCompositionMatchesAnalyticMoments) {
  // K identical stages sharing globals: mean K*d0, global K*g (coherent),
  // local sqrt(K)*l (incoherent).
  const CanonicalDelay stage = make(8.0, {0.4, -0.2}, 0.3);
  CanonicalDelay path = stage;
  for (int k = 1; k < 6; ++k) path = addSeries(path, stage);
  EXPECT_NEAR(path.mean, 48.0, 1e-12);
  EXPECT_NEAR(path.global[0], 2.4, 1e-12);
  EXPECT_NEAR(path.global[1], -1.2, 1e-12);
  EXPECT_NEAR(path.local, 0.3 * std::sqrt(6.0), 1e-12);
}

}  // namespace
}  // namespace vsstat::timing
