// Netlist parser: value suffixes, every element kind, waveforms, model
// cards with overrides, directives, and malformed-input diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "spice/netlist.hpp"
#include "util/error.hpp"

namespace vsstat::spice {
namespace {

TEST(SpiceValue, AllMagnitudeSuffixes) {
  EXPECT_DOUBLE_EQ(parseSpiceValue("1"), 1.0);
  EXPECT_DOUBLE_EQ(parseSpiceValue("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(parseSpiceValue("10meg"), 1e7);
  EXPECT_DOUBLE_EQ(parseSpiceValue("3g"), 3e9);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1t"), 1e12);
  EXPECT_DOUBLE_EQ(parseSpiceValue("5m"), 5e-3);  // lone m is milli
  EXPECT_DOUBLE_EQ(parseSpiceValue("3.3u"), 3.3e-6);
  EXPECT_DOUBLE_EQ(parseSpiceValue("40n"), 40e-9);
  EXPECT_DOUBLE_EQ(parseSpiceValue("10p"), 1e-11);
  EXPECT_DOUBLE_EQ(parseSpiceValue("2f"), 2e-15);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1.5e-12"), 1.5e-12);
  EXPECT_DOUBLE_EQ(parseSpiceValue("-0.9"), -0.9);
  // Unit words after the suffix are ignored.
  EXPECT_DOUBLE_EQ(parseSpiceValue("10pF"), 1e-11);
  EXPECT_DOUBLE_EQ(parseSpiceValue("1kOhm"), 1000.0);
}

TEST(SpiceValue, RejectsGarbage) {
  EXPECT_THROW((void)parseSpiceValue(""), InvalidArgumentError);
  EXPECT_THROW((void)parseSpiceValue("abc"), InvalidArgumentError);
  EXPECT_THROW((void)parseSpiceValue("1x"), InvalidArgumentError);
}

TEST(Netlist, ResistiveDividerSolves) {
  const ParsedNetlist net = parseNetlist(R"(
* simple divider
.title divider example
V1 in 0 10
R1 in mid 1k
R2 mid gnd 3k
.end
)");
  EXPECT_EQ(net.title, "divider example");
  Circuit& c = const_cast<Circuit&>(net.circuit);
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_NEAR(op.v(c.node("mid")), 7.5, 1e-9);
}

TEST(Netlist, ContinuationLinesAndCommentsFold) {
  const ParsedNetlist net = parseNetlist(
      "V1 a 0\n"
      "+ 5\n"
      "* a comment between\n"
      "R1 a\n"
      "+ 0 2k\n");
  Circuit& c = const_cast<Circuit&>(net.circuit);
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_NEAR(op.v(c.node("a")), 5.0, 1e-9);
  EXPECT_NEAR(sourceCurrent(c, "v1", op), -5.0 / 2000.0, 1e-12);
}

TEST(Netlist, PulseAndPwlWaveformsParse) {
  ParsedNetlist net = parseNetlist(R"(
V1 in 0 PULSE(0 0.9 10p 12p 12p 80p)
V2 b 0 PWL(0 0 1n 1 2n 0.5)
R1 in 0 1k
R2 b 0 1k
)");
  const SourceWaveform& pulse = net.circuit.voltageSource("v1").waveform();
  EXPECT_DOUBLE_EQ(pulse.valueAt(0.0), 0.0);
  EXPECT_NEAR(pulse.valueAt(30e-12), 0.9, 1e-9);  // inside the pulse
  const SourceWaveform& pwl = net.circuit.voltageSource("v2").waveform();
  EXPECT_NEAR(pwl.valueAt(0.5e-9), 0.5, 1e-12);
  EXPECT_NEAR(pwl.valueAt(3e-9), 0.5, 1e-12);  // holds last value
}

TEST(Netlist, CurrentSourceAndTranDirective) {
  const ParsedNetlist net = parseNetlist(R"(
I1 0 n 1m
R1 n 0 2k
.tran 1p 100p
)");
  ASSERT_TRUE(net.tran.has_value());
  EXPECT_DOUBLE_EQ(net.tran->first, 1e-12);
  EXPECT_DOUBLE_EQ(net.tran->second, 100e-12);
  Circuit& c = const_cast<Circuit&>(net.circuit);
  EXPECT_NEAR(dcOperatingPoint(c).v(c.node("n")), 2.0, 1e-9);
}

TEST(Netlist, VsInverterNetlistInverts) {
  // A complete CMOS inverter from text, with a VT0 override on the NMOS
  // card; .model lines may come after the devices that use them.
  ParsedNetlist net = parseNetlist(R"(
.title vs inverter
VDD vdd 0 0.9
VIN in 0 0
MP out in vdd pch W=600n L=40n
MN out in 0 nch W=300n L=40n
.model nch vs_nmos vt0=0.40
.model pch vs_pmos
.end
)");
  Circuit& c = net.circuit;
  c.voltageSource("vin").setDcLevel(0.0);
  EXPECT_NEAR(dcOperatingPoint(c).v(c.node("out")), 0.9, 0.01);
  c.voltageSource("vin").setDcLevel(0.9);
  EXPECT_NEAR(dcOperatingPoint(c).v(c.node("out")), 0.0, 0.01);

  // The override landed on the instance card.
  const auto& mn = c.mosfet("mn");
  const auto& vs = dynamic_cast<const models::VsModel&>(mn.model());
  EXPECT_DOUBLE_EQ(vs.params().vt0, 0.40);
}

TEST(Netlist, BsimAndAlphaFamiliesInstantiate) {
  ParsedNetlist net = parseNetlist(R"(
VD d 0 0.9
VG g 0 0.9
M1 d g 0 nb W=300n L=40n
M2 d g 0 na W=300n L=40n
.model nb bsim_nmos
.model na alpha_nmos
)");
  EXPECT_EQ(net.circuit.mosfet("m1").model().name(), "BSIM-lite");
  EXPECT_EQ(net.circuit.mosfet("m2").model().name(), "AlphaPower");
}

TEST(Netlist, DiagnosticsCarryLineNumbers) {
  const auto expectError = [](const std::string& text,
                              const std::string& fragment) {
    try {
      (void)parseNetlist(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };

  expectError("X1 a b 1k\n", "unknown element");
  expectError("R1 a b\n", "R needs");
  expectError(".bogus\n", "unknown directive");
  expectError("R1 a b 1q\n", "bad suffix");
  expectError("M1 d g 0 nox W=1u L=40n\n", "undefined model");
  expectError(".model m1 nosuch\n", "unknown model family");
  expectError(".model m1 vs_nmos\n.model m1 vs_nmos\n", "duplicate model");
  expectError(".model m1 vs_nmos zz=1\n", "unknown VS model parameter");
  expectError(".model m1 bsim_nmos vt0=1\n", "only supported for vs_");
  expectError("V1 a 0 PULSE(0 1 2)\n", "PULSE needs");
  expectError("V1 a 0 PWL(0 1 2)\n", "PWL needs");
  expectError("M1 d g 0 nch W=300n\n.model nch vs_nmos\n",
              "positive W= and L=");
  expectError("+ continuation first\n", "continuation without");

  // Line numbers point at the offending source line.
  expectError("* line 1\nR1 a b 1k\nC1 x y\n", "line 3");
}

TEST(Netlist, RejectsEmptyAndMissingFile) {
  EXPECT_THROW((void)parseNetlist(""), InvalidArgumentError);
  EXPECT_THROW((void)parseNetlistFile("/nonexistent/path.sp"),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::spice
