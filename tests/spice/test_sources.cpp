#include "spice/source.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vsstat::spice {
namespace {

TEST(DcSource, ConstantEverywhere) {
  const SourceWaveform s = SourceWaveform::dc(0.9);
  EXPECT_DOUBLE_EQ(s.valueAt(0.0), 0.9);
  EXPECT_DOUBLE_EQ(s.valueAt(1e-9), 0.9);
  EXPECT_DOUBLE_EQ(s.dcValue(), 0.9);
}

TEST(PulseSource, PiecewiseShape) {
  // v1=0, v2=1, delay=1ns, rise=1ns, width=2ns, fall=1ns.
  const SourceWaveform s =
      SourceWaveform::pulse(0.0, 1.0, 1e-9, 1e-9, 1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(s.valueAt(0.0), 0.0);          // before delay
  EXPECT_DOUBLE_EQ(s.valueAt(1.5e-9), 0.5);        // mid-rise
  EXPECT_DOUBLE_EQ(s.valueAt(2.0e-9), 1.0);        // top start
  EXPECT_DOUBLE_EQ(s.valueAt(3.9e-9), 1.0);        // still high
  EXPECT_DOUBLE_EQ(s.valueAt(4.5e-9), 0.5);        // mid-fall
  EXPECT_DOUBLE_EQ(s.valueAt(6.0e-9), 0.0);        // back low
}

TEST(PulseSource, PeriodicRepeats) {
  const SourceWaveform s =
      SourceWaveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1e-9, 10e-9);
  EXPECT_NEAR(s.valueAt(0.5e-9), s.valueAt(10.5e-9), 1e-9);
  EXPECT_NEAR(s.valueAt(1.5e-9), s.valueAt(21.5e-9), 1e-9);
}

TEST(PulseSource, RejectsZeroEdges) {
  EXPECT_THROW(SourceWaveform::pulse(0.0, 1.0, 0.0, 0.0, 1e-9, 1e-9),
               InvalidArgumentError);
}

TEST(PwlSource, InterpolatesLinearly) {
  const SourceWaveform s = SourceWaveform::pwl({{0.0, 0.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(s.valueAt(-1.0), 0.0);  // clamps before
  EXPECT_DOUBLE_EQ(s.valueAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.valueAt(2.0), 4.0);
  EXPECT_DOUBLE_EQ(s.valueAt(9.0), 4.0);   // clamps after
}

TEST(PwlSource, RejectsUnsortedPoints) {
  EXPECT_THROW(SourceWaveform::pwl({{1.0, 0.0}, {0.5, 1.0}}),
               InvalidArgumentError);
  EXPECT_THROW(SourceWaveform::pwl({}), InvalidArgumentError);
}

TEST(SetDcLevel, ConvertsAnyWaveformToDc) {
  SourceWaveform s = SourceWaveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1e-9);
  s.setDcLevel(0.45);
  EXPECT_DOUBLE_EQ(s.valueAt(0.0), 0.45);
  EXPECT_DOUBLE_EQ(s.valueAt(5e-9), 0.45);
}

}  // namespace
}  // namespace vsstat::spice
