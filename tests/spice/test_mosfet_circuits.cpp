// Nonlinear engine validation on MOSFET circuits (both compact models).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"

namespace vsstat::spice {
namespace {

using models::BsimLite;
using models::defaultBsimNmos;
using models::defaultBsimPmos;
using models::defaultVsNmos;
using models::defaultVsPmos;
using models::geometryNm;
using models::VsModel;

constexpr double kVdd = 0.9;

/// Builds a VS inverter; returns (in, out).
std::pair<NodeId, NodeId> buildInverter(Circuit& c, bool useVs) {
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(0.0));
  if (useVs) {
    c.addMosfet("MP", out, in, vdd, std::make_unique<VsModel>(defaultVsPmos()),
                geometryNm(600, 40));
    c.addMosfet("MN", out, in, c.ground(),
                std::make_unique<VsModel>(defaultVsNmos()), geometryNm(300, 40));
  } else {
    c.addMosfet("MP", out, in, vdd,
                std::make_unique<BsimLite>(defaultBsimPmos()),
                geometryNm(600, 40));
    c.addMosfet("MN", out, in, c.ground(),
                std::make_unique<BsimLite>(defaultBsimNmos()),
                geometryNm(300, 40));
  }
  return {in, out};
}

class InverterBothModels : public ::testing::TestWithParam<bool> {};

TEST_P(InverterBothModels, RailToRailLogicLevels) {
  Circuit c;
  const auto [in, out] = buildInverter(c, GetParam());
  c.voltageSource("VIN").setDcLevel(0.0);
  EXPECT_NEAR(dcOperatingPoint(c).v(out), kVdd, 5e-3);
  c.voltageSource("VIN").setDcLevel(kVdd);
  EXPECT_NEAR(dcOperatingPoint(c).v(out), 0.0, 5e-3);
}

TEST_P(InverterBothModels, VtcIsMonotonicallyDecreasing) {
  Circuit c;
  const auto [in, out] = buildInverter(c, GetParam());
  std::vector<double> levels;
  for (int i = 0; i <= 30; ++i) levels.push_back(kVdd * i / 30.0);
  const auto ops = dcSweep(c, "VIN", levels);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_LE(ops[i].v(out), ops[i - 1].v(out) + 1e-9) << "step " << i;
  }
  // Switching threshold is interior.
  EXPECT_GT(ops[10].v(out), 0.5 * kVdd);
  EXPECT_LT(ops[20].v(out), 0.5 * kVdd);
}

TEST_P(InverterBothModels, TransientInversionWithCapLoad) {
  Circuit c;
  const auto [in, out] = buildInverter(c, GetParam());
  c.addCapacitor("CL", out, c.ground(), 2e-15);
  c.voltageSource("VIN").setWaveform(
      SourceWaveform::pulse(0.0, kVdd, 10e-12, 10e-12, 10e-12, 60e-12));
  TransientOptions opt;
  opt.tStop = 140e-12;
  opt.dt = 0.2e-12;
  const Waveform w = transient(c, opt);
  // Output starts high, falls after the input edge, rises back.
  EXPECT_NEAR(w.value(out, 0), kVdd, 5e-3);
  const auto fall = w.crossing(out, 0.5 * kVdd, false, 10e-12);
  ASSERT_TRUE(fall.has_value());
  const auto rise = w.crossing(out, 0.5 * kVdd, true, *fall);
  ASSERT_TRUE(rise.has_value());
  EXPECT_NEAR(w.finalValue(out), kVdd, 0.02);
}

INSTANTIATE_TEST_SUITE_P(VsAndBsim, InverterBothModels, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "VS" : "BsimLite";
                         });

TEST(MosfetDc, DiodeConnectedSettlesNearThreshold) {
  // Current forced through a diode-connected NMOS: gate voltage rises a
  // few hundred mV above VT0 depending on the current level.
  Circuit c;
  const NodeId d = c.node("d");
  c.addCurrentSource("IB", c.ground(), d, SourceWaveform::dc(10e-6));
  c.addMosfet("MN", d, d, c.ground(), std::make_unique<VsModel>(defaultVsNmos()),
              geometryNm(600, 40));
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_GT(op.v(d), 0.2);
  EXPECT_LT(op.v(d), 0.8);
}

TEST(MosfetDc, PassTransistorDegradesHighLevel) {
  // NMOS pass with gate at Vdd passes Vdd minus an effective threshold.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId out = c.node("out");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
  c.addMosfet("MPASS", vdd, vdd, out,
              std::make_unique<VsModel>(defaultVsNmos()), geometryNm(300, 40));
  c.addResistor("RL", out, c.ground(), 2e5);  // ~microamp load
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_LT(op.v(out), kVdd - 0.1);  // degraded high
  EXPECT_GT(op.v(out), 0.3);
}

TEST(MosfetTransient, GateLeakageFreeChargeConservation) {
  // A MOSFET gate in series with a capacitor: DC steady state passes no
  // current, so the capacitor holds its charge.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId g = c.node("g");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
  c.addCapacitor("CG", vdd, g, 1e-15);
  c.addMosfet("MN", vdd, g, c.ground(),
              std::make_unique<VsModel>(defaultVsNmos()), geometryNm(300, 40));
  TransientOptions opt;
  opt.tStop = 50e-12;
  opt.dt = 0.5e-12;
  const Waveform w = transient(c, opt);
  // Node g settles and stays put (no DC gate current path).
  EXPECT_NEAR(w.finalValue(g), w.valueAt(g, 25e-12), 1e-3);
}

TEST(MosfetDc, RingOfInvertersBistable) {
  // Cross-coupled inverter pair (an SRAM-like latch) has a stable state
  // with complementary outputs when initialized asymmetrically.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId q = c.node("q");
  const NodeId qb = c.node("qb");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(kVdd));
  const auto addInv = [&](const std::string& p, NodeId in, NodeId out) {
    c.addMosfet(p + "P", out, in, vdd,
                std::make_unique<VsModel>(defaultVsPmos()), geometryNm(300, 40));
    c.addMosfet(p + "N", out, in, c.ground(),
                std::make_unique<VsModel>(defaultVsNmos()), geometryNm(150, 40));
  };
  addInv("I1", q, qb);
  addInv("I2", qb, q);
  // Newton accepts any DC solution including the metastable one; start
  // from an asymmetric initial guess so it lands on a stable state.
  OperatingPoint guess;
  guess.nodeVoltages.assign(c.nodeCount(), 0.0);
  guess.nodeVoltages[static_cast<std::size_t>(vdd)] = kVdd;
  guess.nodeVoltages[static_cast<std::size_t>(q)] = kVdd;
  guess.branchCurrents.assign(static_cast<std::size_t>(c.branchTotal()), 0.0);
  const OperatingPoint op = dcOperatingPoint(c, guess, DcOptions{});
  EXPECT_GT(op.v(q), 0.8 * kVdd);
  EXPECT_LT(op.v(qb), 0.2 * kVdd);
}

}  // namespace
}  // namespace vsstat::spice
