#include "spice/waveform.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace vsstat::spice {
namespace {

Waveform ramp() {
  // node 1 ramps 0 -> 1 V over 10 ns; node 2 falls 1 -> 0.
  Waveform w(3);
  for (int i = 0; i <= 10; ++i) {
    const double t = i * 1e-9;
    w.addSample(t, {0.0, 0.1 * i, 1.0 - 0.1 * i});
  }
  return w;
}

TEST(Waveform, StoresSamples) {
  const Waveform w = ramp();
  EXPECT_EQ(w.sampleCount(), 11u);
  EXPECT_DOUBLE_EQ(w.value(1, 5), 0.5);
  EXPECT_DOUBLE_EQ(w.finalValue(2), 0.0);
}

TEST(Waveform, InterpolatesBetweenSamples) {
  const Waveform w = ramp();
  EXPECT_NEAR(w.valueAt(1, 2.5e-9), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(w.valueAt(1, -1.0), 0.0);    // clamp low
  EXPECT_DOUBLE_EQ(w.valueAt(1, 1.0), 1.0);     // clamp high
}

TEST(Waveform, FindsRisingCrossing) {
  const Waveform w = ramp();
  const auto t = w.crossing(1, 0.45, /*rising=*/true);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 4.5e-9, 1e-15);
}

TEST(Waveform, FindsFallingCrossing) {
  const Waveform w = ramp();
  const auto t = w.crossing(2, 0.45, /*rising=*/false);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.5e-9, 1e-15);
}

TEST(Waveform, CrossingRespectsAfter) {
  Waveform w(2);
  // node 1: two rising crossings of 0.5 (at t=1 and t=3).
  w.addSample(0.0, {0.0, 0.0});
  w.addSample(1.0, {0.0, 1.0});
  w.addSample(2.0, {0.0, 0.0});
  w.addSample(3.0, {0.0, 1.0});
  const auto second = w.crossing(1, 0.5, true, 1.5);
  ASSERT_TRUE(second.has_value());
  EXPECT_NEAR(*second, 2.5, 1e-12);
}

TEST(Waveform, NoCrossingReturnsNullopt) {
  const Waveform w = ramp();
  EXPECT_FALSE(w.crossing(1, 2.0, true).has_value());
  EXPECT_FALSE(w.crossing(1, 0.5, false).has_value());
}

TEST(Waveform, RejectsTimeReversal) {
  Waveform w(1);
  w.addSample(1.0, {0.0});
  EXPECT_THROW(w.addSample(0.5, {0.0}), InvalidArgumentError);
}

TEST(Waveform, RejectsArityMismatch) {
  Waveform w(2);
  EXPECT_THROW(w.addSample(0.0, {1.0}), InvalidArgumentError);
}

TEST(Waveform, SeriesExtractsSingleNode) {
  const Waveform w = ramp();
  const auto s = w.series(1);
  EXPECT_EQ(s.size(), 11u);
  EXPECT_DOUBLE_EQ(s[3], 0.3);
}

}  // namespace
}  // namespace vsstat::spice
