// Parameterized AC properties: the RC lowpass response against its
// closed form across five decades, and the netlist -> AC integration
// path (text deck in, Bode data out).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "spice/ac.hpp"
#include "spice/analysis.hpp"
#include "spice/netlist.hpp"

namespace vsstat::spice {
namespace {

constexpr double kR = 1e3;
constexpr double kC = 1e-9;
const double kFc = 1.0 / (2.0 * std::numbers::pi * kR * kC);

class RcLowpassResponse : public ::testing::TestWithParam<double> {};

TEST_P(RcLowpassResponse, MatchesClosedFormMagnitudeAndPhase) {
  const double ratio = GetParam();  // f / fc
  const double f = ratio * kFc;

  Circuit c;
  const NodeId out = c.node("out");
  const NodeId in = c.node("in");
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(0.0));
  c.addResistor("R1", in, out, kR);
  c.addCapacitor("C1", out, c.ground(), kC);

  const AcSweep sweep = acAnalysis(c, "VIN", {f});
  const double mag = std::abs(sweep.points[0].v(out));
  const double phase = sweep.points[0].phaseDeg(out);

  const double expectedMag = 1.0 / std::sqrt(1.0 + ratio * ratio);
  const double expectedPhase =
      -std::atan(ratio) * 180.0 / std::numbers::pi;
  EXPECT_NEAR(mag, expectedMag, 1e-9 + 1e-6 * expectedMag) << "f = " << f;
  EXPECT_NEAR(phase, expectedPhase, 1e-4) << "f = " << f;
}

INSTANTIATE_TEST_SUITE_P(FiveDecades, RcLowpassResponse,
                         ::testing::Values(0.01, 0.1, 0.3, 1.0, 3.0, 10.0,
                                           100.0));

TEST(NetlistToAc, TextDeckDrivesBodeAnalysis) {
  // End-to-end: parse an RC deck, run the AC sweep, find the pole.
  ParsedNetlist net = parseNetlist(R"(
.title rc bode
VIN in 0 DC 0
R1 in out 1k
C1 out 0 1n
)");
  const AcSweep sweep = acAnalysis(net.circuit, "vin",
                                   logFrequencyGrid(1e3, 1e8, 20));
  const double bw = bandwidth3dB(sweep, net.circuit.node("out"));
  EXPECT_NEAR(bw / kFc, 1.0, 0.02);
}

TEST(NetlistToAc, MosfetDeckHasFiniteSmallSignalGain) {
  // Common-source stage from text: the AC machinery must linearize the
  // parsed MOSFET exactly as the programmatic path does.
  ParsedNetlist net = parseNetlist(R"(
VDD vdd 0 0.9
VIN g 0 0.55
RD vdd d 10k
M1 d g 0 nch W=300n L=40n
.model nch vs_nmos
)");
  const AcSweep sweep = acAnalysis(net.circuit, "vin", {1.0});
  const double gain = std::abs(sweep.points[0].v(net.circuit.node("d")));
  EXPECT_GT(gain, 1.0);
  EXPECT_LT(gain, 100.0);
}

}  // namespace
}  // namespace vsstat::spice
