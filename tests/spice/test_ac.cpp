// Small-signal AC analysis: closed-form RC responses, linearity, the
// extracted C matrix, and consistency of MOSFET amplifier gain with DC
// finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "models/vs_model.hpp"
#include "spice/ac.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::spice {
namespace {

using models::defaultVsNmos;
using models::geometryNm;
using models::VsModel;

/// V -> R -> C lowpass; returns the output node.
NodeId buildLowpass(Circuit& c, double r, double cap) {
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(0.0));
  c.addResistor("R1", in, out, r);
  c.addCapacitor("C1", out, c.ground(), cap);
  return out;
}

TEST(AcAnalysis, RcLowpassMatchesAnalyticResponse) {
  Circuit c;
  const NodeId out = buildLowpass(c, 1e3, 1e-9);  // fc = 159.155 kHz
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-9);

  const AcSweep sweep =
      acAnalysis(c, "VIN", {fc / 100.0, fc, 100.0 * fc});
  ASSERT_EQ(sweep.points.size(), 3u);

  // Well below the pole: unity gain, ~zero phase.
  EXPECT_NEAR(std::abs(sweep.points[0].v(out)), 1.0, 1e-3);
  EXPECT_NEAR(sweep.points[0].phaseDeg(out), 0.0, 1.0);

  // At the pole: 1/sqrt(2) magnitude and -45 degrees.
  EXPECT_NEAR(std::abs(sweep.points[1].v(out)), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(sweep.points[1].phaseDeg(out), -45.0, 1e-6);

  // Two decades above: -40 dB and approaching -90 degrees.
  EXPECT_NEAR(sweep.points[2].magnitudeDb(out), -40.0, 0.1);
  EXPECT_NEAR(sweep.points[2].phaseDeg(out), -90.0, 1.0);
}

TEST(AcAnalysis, RcHighpassBlocksDcPassesHighBand) {
  // V -> C -> out -> R -> gnd: highpass with fc = 1/(2 pi R C).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(0.0));
  c.addCapacitor("C1", in, out, 1e-9);
  c.addResistor("R1", out, c.ground(), 1e3);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-9);

  const AcSweep sweep = acAnalysis(c, "VIN", {fc / 100.0, fc, 100.0 * fc});
  EXPECT_LT(std::abs(sweep.points[0].v(out)), 0.015);
  EXPECT_NEAR(std::abs(sweep.points[1].v(out)), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::abs(sweep.points[2].v(out)), 1.0, 1e-3);
  // Phase leads below the corner.
  EXPECT_NEAR(sweep.points[1].phaseDeg(out), 45.0, 1e-6);
}

TEST(AcAnalysis, ResistiveDividerIsFlat) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(1.0));
  c.addResistor("R1", in, mid, 1000.0);
  c.addResistor("R2", mid, c.ground(), 3000.0);

  const AcSweep sweep = acAnalysis(c, "VIN", {1.0, 1e6, 1e12});
  for (const AcPoint& p : sweep.points) {
    EXPECT_NEAR(std::abs(p.v(mid)), 0.75, 1e-9) << p.frequencyHz;
    EXPECT_NEAR(p.phaseDeg(mid), 0.0, 1e-9);
  }
}

TEST(AcAnalysis, ExcitationMagnitudeScalesLinearly) {
  Circuit c1;
  const NodeId out1 = buildLowpass(c1, 1e3, 1e-9);
  Circuit c2;
  const NodeId out2 = buildLowpass(c2, 1e3, 1e-9);

  AcOptions doubled;
  doubled.excitationMagnitude = 2.0;
  const AcSweep unit = acAnalysis(c1, "VIN", {1e5});
  const AcSweep twice = acAnalysis(c2, "VIN", {1e5}, doubled);
  EXPECT_NEAR(std::abs(twice.points[0].v(out2)),
              2.0 * std::abs(unit.points[0].v(out1)), 1e-12);
}

TEST(AcAnalysis, CapacitanceMatrixOfSingleCapacitorIsExact) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.addVoltageSource("V1", a, c.ground(), SourceWaveform::dc(0.5));
  c.addResistor("Rb", b, c.ground(), 1e6);  // DC path for node b
  c.addCapacitor("C1", a, b, 3e-12);

  const OperatingPoint op = dcOperatingPoint(c);
  const SmallSignalSystem system(c, op);
  const linalg::Matrix& cm = system.capacitance();

  const auto row = [&](NodeId n) { return static_cast<std::size_t>(n - 1); };
  EXPECT_NEAR(cm(row(a), row(a)), 3e-12, 1e-20);
  EXPECT_NEAR(cm(row(a), row(b)), -3e-12, 1e-20);
  EXPECT_NEAR(cm(row(b), row(a)), -3e-12, 1e-20);
  EXPECT_NEAR(cm(row(b), row(b)), 3e-12, 1e-20);
}

TEST(AcAnalysis, CommonSourceGainMatchesDcFiniteDifference) {
  // NMOS common-source stage: gate biased into saturation, 10k drain load.
  // The low-frequency AC gain must equal the slope of the DC transfer
  // curve at the bias point.
  const auto build = [](double vin) {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId g = c.node("g");
    const NodeId d = c.node("d");
    c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(0.9));
    c.addVoltageSource("VIN", g, c.ground(), SourceWaveform::dc(vin));
    c.addResistor("RD", vdd, d, 1e4);
    c.addMosfet("MN", d, g, c.ground(),
                std::make_unique<VsModel>(defaultVsNmos()),
                geometryNm(300, 40));
    return c;
  };

  constexpr double kBias = 0.55;
  constexpr double kStep = 1e-4;
  Circuit cLo = build(kBias - kStep);
  Circuit cHi = build(kBias + kStep);
  const double voutLo = dcOperatingPoint(cLo).v(cLo.node("d"));
  const double voutHi = dcOperatingPoint(cHi).v(cHi.node("d"));
  const double dcGain = (voutHi - voutLo) / (2.0 * kStep);
  ASSERT_LT(dcGain, -1.0);  // stage must actually amplify (inverting)

  Circuit c = build(kBias);
  const AcSweep sweep = acAnalysis(c, "VIN", {1.0});
  const double acGain = std::abs(sweep.points[0].v(c.node("d")));
  // The AC Jacobian uses 1 mV forward differences inside the element, the
  // reference a 0.1 mV central difference; a ~2% agreement window covers
  // that discretization gap.
  EXPECT_NEAR(acGain, std::abs(dcGain), 0.02 * std::abs(dcGain));
  // Inverting amplifier: output ~180 degrees from input at low frequency.
  EXPECT_NEAR(std::abs(sweep.points[0].phaseDeg(c.node("d"))), 180.0, 1.0);
}

TEST(AcAnalysis, CommonSourceGainRollsOffWithLoadCapacitor) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId g = c.node("g");
  const NodeId d = c.node("d");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(0.9));
  c.addVoltageSource("VIN", g, c.ground(), SourceWaveform::dc(0.55));
  c.addResistor("RD", vdd, d, 1e4);
  c.addCapacitor("CL", d, c.ground(), 1e-12);
  c.addMosfet("MN", d, g, c.ground(),
              std::make_unique<VsModel>(defaultVsNmos()), geometryNm(300, 40));

  const AcSweep sweep =
      acAnalysis(c, "VIN", logFrequencyGrid(1e3, 1e12, 4));
  const std::vector<double> mags = sweep.magnitude(d);
  // Gain is flat at low frequency, then strictly decreasing past the pole.
  EXPECT_NEAR(mags[1] / mags[0], 1.0, 1e-3);
  EXPECT_LT(mags.back(), 0.02 * mags.front());
  // 3 dB bandwidth close to 1/(2 pi RD CL) = 15.9 MHz (the transistor's
  // own output conductance and capacitance shift it slightly).
  const double bw = bandwidth3dB(sweep, d);
  EXPECT_GT(bw, 0.5 * 15.9e6);
  EXPECT_LT(bw, 2.5 * 15.9e6);
}

TEST(LogFrequencyGrid, EndpointsAndMonotonicity) {
  const std::vector<double> f = logFrequencyGrid(10.0, 1e6, 10);
  EXPECT_NEAR(f.front(), 10.0, 1e-9);
  EXPECT_NEAR(f.back(), 1e6, 1e-6);
  EXPECT_EQ(f.size(), 51u);  // 5 decades * 10 + 1
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
}

TEST(LogFrequencyGrid, RejectsBadRanges) {
  EXPECT_THROW((void)logFrequencyGrid(0.0, 1e3, 10), InvalidArgumentError);
  EXPECT_THROW((void)logFrequencyGrid(1e3, 1e2, 10), InvalidArgumentError);
  EXPECT_THROW((void)logFrequencyGrid(1.0, 1e3, 0), InvalidArgumentError);
}

TEST(Bandwidth3dB, ThrowsWhenSweepNeverCrosses) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(1.0));
  c.addResistor("R1", in, mid, 1000.0);
  c.addResistor("R2", mid, c.ground(), 3000.0);
  const AcSweep sweep = acAnalysis(c, "VIN", {1.0, 10.0, 100.0});
  EXPECT_THROW((void)bandwidth3dB(sweep, mid), InvalidArgumentError);
}

TEST(AcAnalysis, RejectsEmptyAndNegativeFrequencies) {
  Circuit c;
  buildLowpass(c, 1e3, 1e-9);
  EXPECT_THROW((void)acAnalysis(c, "VIN", {}), InvalidArgumentError);
  EXPECT_THROW((void)acAnalysis(c, "VIN", {-1.0}), InvalidArgumentError);
}


TEST(AcAnalysis, UnknownSourceNameThrows) {
  Circuit c;
  buildLowpass(c, 1e3, 1e-9);
  EXPECT_THROW((void)acAnalysis(c, "NOPE", {1.0}), InvalidArgumentError);
}

TEST(SmallSignalSystemErrors, RejectsMismatchedOperatingPoint) {
  Circuit c;
  buildLowpass(c, 1e3, 1e-9);
  OperatingPoint wrong;  // empty node vector
  EXPECT_THROW(SmallSignalSystem(c, wrong), InvalidArgumentError);
}

TEST(SmallSignalSystemErrors, RejectsWrongExcitationSize) {
  Circuit c;
  buildLowpass(c, 1e3, 1e-9);
  const OperatingPoint op = dcOperatingPoint(c);
  const SmallSignalSystem system(c, op);
  EXPECT_THROW((void)system.solve(1.0, linalg::ComplexVector(1)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::spice
