// Engine validation against closed-form linear circuit solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::spice {
namespace {

TEST(LinearDc, VoltageDivider) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.addVoltageSource("V1", in, c.ground(), SourceWaveform::dc(10.0));
  c.addResistor("R1", in, mid, 1000.0);
  c.addResistor("R2", mid, c.ground(), 3000.0);
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_NEAR(op.v(mid), 7.5, 1e-9);
  EXPECT_NEAR(sourceCurrent(c, "V1", op), -10.0 / 4000.0, 1e-12);
}

TEST(LinearDc, CurrentSourceIntoResistor) {
  Circuit c;
  const NodeId n = c.node("n");
  c.addCurrentSource("I1", c.ground(), n, SourceWaveform::dc(1e-3));
  c.addResistor("R1", n, c.ground(), 2000.0);
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_NEAR(op.v(n), 2.0, 1e-9);
}

TEST(LinearDc, TwoSourcesSuperpose) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.addVoltageSource("VA", a, c.ground(), SourceWaveform::dc(5.0));
  c.addVoltageSource("VB", b, c.ground(), SourceWaveform::dc(1.0));
  const NodeId m = c.node("m");
  c.addResistor("R1", a, m, 1000.0);
  c.addResistor("R2", b, m, 1000.0);
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_NEAR(op.v(m), 3.0, 1e-9);
}

TEST(LinearDc, FloatingNodeRecoveredByGmin) {
  // A node connected only through a capacitor has no DC path; gmin
  // stepping must still produce a solution (node pulled to 0).
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId f = c.node("float");
  c.addVoltageSource("V1", a, c.ground(), SourceWaveform::dc(1.0));
  c.addCapacitor("C1", a, f, 1e-15);
  c.addResistor("R1", a, c.ground(), 1000.0);
  const OperatingPoint op = dcOperatingPoint(c);
  EXPECT_NEAR(op.v(a), 1.0, 1e-9);
}

TEST(LinearTransient, RcChargingMatchesAnalytic) {
  // V -> R -> C: v_c(t) = V (1 - exp(-t/RC)), RC = 1 ns.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.addVoltageSource("V1", in, c.ground(), SourceWaveform::dc(1.0));
  c.addResistor("R1", in, out, 1000.0);
  c.addCapacitor("C1", out, c.ground(), 1e-12);

  // Start from a discharged capacitor: step the source with a fast edge.
  c.voltageSource("V1").setWaveform(
      SourceWaveform::pulse(0.0, 1.0, 0.0, 1e-14, 1e-14, 1.0));

  TransientOptions opt;
  opt.tStop = 5e-9;
  opt.dt = 5e-12;
  const Waveform w = transient(c, opt);

  const double rc = 1e-9;
  for (double t : {0.5e-9, 1e-9, 2e-9, 4e-9}) {
    const double expected = 1.0 - std::exp(-t / rc);
    EXPECT_NEAR(w.valueAt(out, t), expected, 0.01) << "t = " << t;
  }
  EXPECT_NEAR(w.finalValue(out), 1.0 - std::exp(-5.0), 5e-3);
}

TEST(LinearTransient, RcDischargeTimeConstant) {
  // 63.2% crossing time equals RC.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.addVoltageSource("V1", in, c.ground(),
                     SourceWaveform::pulse(0.0, 1.0, 0.0, 1e-14, 1e-14, 1.0));
  c.addResistor("R1", in, out, 2000.0);
  c.addCapacitor("C1", out, c.ground(), 0.5e-12);  // RC = 1 ns
  TransientOptions opt;
  opt.tStop = 4e-9;
  opt.dt = 4e-12;
  const Waveform w = transient(c, opt);
  const auto t63 = w.crossing(out, 1.0 - std::exp(-1.0), true);
  ASSERT_TRUE(t63.has_value());
  EXPECT_NEAR(*t63, 1e-9, 0.03e-9);
}

TEST(LinearTransient, CapacitorDividerConservesCharge) {
  // Two series caps divide a step by the capacitance ratio.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.addVoltageSource("V1", in, c.ground(),
                     SourceWaveform::pulse(0.0, 1.0, 1e-12, 1e-13, 1e-13, 1.0));
  c.addCapacitor("C1", in, mid, 3e-15);
  c.addCapacitor("C2", mid, c.ground(), 1e-15);
  // Large bleed resistor defines DC without disturbing the fast edge.
  c.addResistor("Rb", mid, c.ground(), 1e12);
  TransientOptions opt;
  opt.tStop = 20e-12;
  opt.dt = 0.05e-12;
  const Waveform w = transient(c, opt);
  EXPECT_NEAR(w.finalValue(mid), 0.75, 0.01);
}

TEST(LinearSweep, DcSweepTracksSourceLevels) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId mid = c.node("mid");
  c.addVoltageSource("V1", in, c.ground(), SourceWaveform::dc(0.0));
  c.addResistor("R1", in, mid, 1000.0);
  c.addResistor("R2", mid, c.ground(), 1000.0);
  const auto ops = dcSweep(c, "V1", {0.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(ops.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(ops[i].v(mid), 0.5 * static_cast<double>(i), 1e-9);
  }
  // Original waveform restored after sweep.
  EXPECT_DOUBLE_EQ(c.voltageSource("V1").waveform().dcValue(), 0.0);
}

TEST(Elements, RejectsBadValues) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.addResistor("R", a, c.ground(), 0.0), InvalidArgumentError);
  EXPECT_THROW(c.addCapacitor("C", a, c.ground(), -1e-15),
               InvalidArgumentError);
}

TEST(Circuit, RejectsDuplicateElementNames) {
  Circuit c;
  const NodeId a = c.node("a");
  c.addResistor("R1", a, c.ground(), 100.0);
  EXPECT_THROW(c.addResistor("R1", a, c.ground(), 100.0),
               InvalidArgumentError);
}

TEST(Circuit, NodeLookupIsStable) {
  Circuit c;
  const NodeId a = c.node("x");
  EXPECT_EQ(c.node("x"), a);
  EXPECT_EQ(c.node("gnd"), c.ground());
  EXPECT_EQ(c.node("0"), c.ground());
  EXPECT_EQ(c.nodeName(a), "x");
}

}  // namespace
}  // namespace vsstat::spice
