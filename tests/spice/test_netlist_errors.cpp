// Classified netlist parse errors (spice::NetlistParseError): every
// malformed deck must be rejected with the 1-based source line of the
// offending statement and an unprefixed diagnostic -- the campaign
// server's deck_error frames are only as good as these.  Also covers the
// provider-routed parse overload: routing vs_* instances through a
// NominalProvider built from the deck's own cards must reproduce the
// plain parse.
#include <gtest/gtest.h>

#include <utility>

#include "circuits/provider.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"
#include "spice/analysis.hpp"
#include "spice/netlist.hpp"

namespace vsstat::spice {
namespace {

/// Parses expecting a NetlistParseError; returns it for inspection.
NetlistParseError parseExpectingError(const std::string& deck) {
  try {
    (void)parseNetlist(deck);
  } catch (const NetlistParseError& e) {
    return e;
  }
  ADD_FAILURE() << "deck parsed without error:\n" << deck;
  return NetlistParseError(0, "unreachable");
}

TEST(NetlistErrors, EmptyNetlistReportsWholeNetlist) {
  const NetlistParseError e = parseExpectingError("");
  EXPECT_EQ(e.line(), 0);
  EXPECT_EQ(e.message(), "empty netlist");
  EXPECT_STREQ(e.what(), "netlist: empty netlist");
}

TEST(NetlistErrors, BadValueCarriesLineNumber) {
  const NetlistParseError e = parseExpectingError(
      "* comment line\n"
      "V1 a 0 1.0\n"
      "R1 a 0 bogus\n");
  EXPECT_EQ(e.line(), 3);
  EXPECT_NE(e.message().find("bogus"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("netlist line 3:"), std::string::npos);
}

TEST(NetlistErrors, UnknownModelFamily) {
  const NetlistParseError e = parseExpectingError(
      "V1 a 0 1.0\n"
      ".model broken not_a_family\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_NE(e.message().find("not_a_family"), std::string::npos);
}

TEST(NetlistErrors, MosfetReferencingUndeclaredModel) {
  const NetlistParseError e = parseExpectingError(
      "VDD vdd 0 0.9\n"
      "M1 out in vdd missing W=100n L=40n\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_NE(e.message().find("missing"), std::string::npos);
}

TEST(NetlistErrors, UnknownDirective) {
  const NetlistParseError e = parseExpectingError(
      "V1 a 0 1.0\n"
      ".frobnicate 1 2\n");
  EXPECT_EQ(e.line(), 2);
}

TEST(NetlistErrors, DuplicateElementNameIsLineClassified) {
  // Duplicate names are rejected by the Circuit, not the tokenizer; the
  // parser re-classifies them with the offending line anyway.
  const NetlistParseError e = parseExpectingError(
      "V1 a 0 1.0\n"
      "R1 a 0 1k\n"
      "R1 a 0 2k\n");
  EXPECT_EQ(e.line(), 3);
}

TEST(NetlistErrors, ContinuationLinesReportTheStatementHead) {
  // The PULSE card spreads over a continuation; the malformed token sits
  // on the continued statement, whose head starts at line 2.
  const NetlistParseError e = parseExpectingError(
      "* title comment\n"
      "VIN in 0 PULSE(0 0.9 10p\n"
      "+ 12p 12p nonsense)\n");
  EXPECT_EQ(e.line(), 2);
}

TEST(NetlistErrors, TranCardArity) {
  const NetlistParseError e = parseExpectingError(
      "V1 a 0 1.0\n"
      ".tran 1p\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_NE(e.message().find(".tran"), std::string::npos);
}

TEST(NetlistErrors, DerivesFromInvalidArgumentError) {
  // Pre-existing catch sites use InvalidArgumentError; the classified
  // error must keep flowing through them.
  EXPECT_THROW((void)parseNetlist("R1 a 0 oops\n"), InvalidArgumentError);
}

constexpr const char* kVsDeck =
    "VDD vdd 0 0.9\n"
    "VIN in 0 0.45\n"
    "MP out in vdd pch W=600n L=40n\n"
    "MN out in 0 nch W=300n L=40n\n"
    ".model nch vs_nmos\n"
    ".model pch vs_pmos vt0=0.38\n"
    ".end\n";

TEST(NetlistProviderParse, CountsVsDevicesAndExposesCards) {
  const ParsedNetlist parsed = parseNetlist(kVsDeck);
  EXPECT_EQ(parsed.vsMosfets, 2u);
  ASSERT_TRUE(parsed.vsNmos.has_value());
  ASSERT_TRUE(parsed.vsPmos.has_value());
  EXPECT_DOUBLE_EQ(parsed.vsPmos->vt0, 0.38);
}

TEST(NetlistProviderParse, NominalProviderReproducesPlainParse) {
  const ParsedNetlist plain = parseNetlist(kVsDeck);
  circuits::NominalProvider provider(models::VsModel(*plain.vsNmos),
                                     models::VsModel(*plain.vsPmos));
  ParsedNetlist routed = parseNetlist(kVsDeck, provider);
  EXPECT_EQ(routed.vsMosfets, 2u);

  const OperatingPoint opPlain = dcOperatingPoint(plain.circuit);
  const OperatingPoint opRouted = dcOperatingPoint(routed.circuit);
  ASSERT_EQ(opPlain.nodeVoltages.size(), opRouted.nodeVoltages.size());
  for (std::size_t i = 0; i < opPlain.nodeVoltages.size(); ++i)
    EXPECT_DOUBLE_EQ(opPlain.nodeVoltages[i], opRouted.nodeVoltages[i]);
}

}  // namespace
}  // namespace vsstat::spice
