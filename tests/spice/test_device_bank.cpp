// The device bank's core contract (spice/device_bank.hpp): a banked
// assembly -- gather, one batch evaluation per model group, direct-slot
// scatter -- must reproduce the scalar per-element Newton path BIT-for-bit
// on every analysis: DC operating points, sweeps, and transients; on
// homogeneous and mixed-model circuits; and across in-place and
// cross-family rebinds (which force a lane refresh resp. a bank rebuild).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "circuits/provider.hpp"
#include "measure/snm.hpp"
#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "spice/session.hpp"

namespace vsstat::spice {
namespace {

models::VsParams nmosCard() { return models::defaultVsNmos(); }
models::VsParams pmosCard() { return models::defaultVsPmos(); }

/// Inverter driving a capacitive load, with a pulse input: exercises DC
/// (homotopies off the zero guess) and transient (charge stamps).
Circuit makeInverter() {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(0.9));
  c.addVoltageSource("VIN", in, c.ground(),
                     SourceWaveform::pulse(0.0, 0.9, 20e-12, 10e-12, 10e-12,
                                           80e-12, 200e-12));
  c.addMosfet("MP", out, in, vdd,
              std::make_unique<models::VsModel>(pmosCard()),
              models::geometryNm(600, 40));
  c.addMosfet("MN", out, in, c.ground(),
              std::make_unique<models::VsModel>(nmosCard()),
              models::geometryNm(300, 40));
  c.addCapacitor("CL", out, c.ground(), 2e-15);
  return c;
}

/// Mixed model families in one circuit: a VS inverter loaded by a BsimLite
/// pass transistor and an AlphaPower pull-down.  Groups one VsLoadBank and
/// two generic banks in a single banked assembly.
Circuit makeMixedFamilies() {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  const NodeId tail = c.node("tail");
  c.addVoltageSource("VDD", vdd, c.ground(), SourceWaveform::dc(0.9));
  c.addVoltageSource("VIN", in, c.ground(), SourceWaveform::dc(0.35));
  c.addMosfet("MP", out, in, vdd,
              std::make_unique<models::VsModel>(pmosCard()),
              models::geometryNm(600, 40));
  c.addMosfet("MN", out, in, c.ground(),
              std::make_unique<models::VsModel>(nmosCard()),
              models::geometryNm(300, 40));
  c.addMosfet("MPASS", tail, vdd, out,
              std::make_unique<models::BsimLite>(models::defaultBsimNmos()),
              models::geometryNm(200, 40));
  c.addMosfet("MA", tail, in, c.ground(),
              std::make_unique<models::AlphaPowerModel>(
                  models::defaultAlphaNmos()),
              models::geometryNm(150, 40));
  c.addResistor("RL", tail, c.ground(), 5e5);
  return c;
}

void expectSameOp(const OperatingPoint& a, const OperatingPoint& b) {
  ASSERT_EQ(a.nodeVoltages.size(), b.nodeVoltages.size());
  for (std::size_t i = 0; i < a.nodeVoltages.size(); ++i)
    EXPECT_EQ(a.nodeVoltages[i], b.nodeVoltages[i]) << "node " << i;
  ASSERT_EQ(a.branchCurrents.size(), b.branchCurrents.size());
  for (std::size_t i = 0; i < a.branchCurrents.size(); ++i)
    EXPECT_EQ(a.branchCurrents[i], b.branchCurrents[i]) << "branch " << i;
}

void expectSameWave(const Waveform& a, const Waveform& b) {
  ASSERT_EQ(a.sampleCount(), b.sampleCount());
  ASSERT_EQ(a.nodeCount(), b.nodeCount());
  for (std::size_t i = 0; i < a.sampleCount(); ++i) {
    EXPECT_EQ(a.time(i), b.time(i)) << "sample " << i;
    for (std::size_t n = 0; n < a.nodeCount(); ++n)
      EXPECT_EQ(a.value(static_cast<NodeId>(n), i),
                b.value(static_cast<NodeId>(n), i))
          << "sample " << i << " node " << n;
  }
}

TEST(DeviceBank, DcOperatingPointBitIdenticalToScalar) {
  Circuit banked = makeInverter();
  Circuit scalar = makeInverter();
  SimSession bankedSession(banked, SessionOptions{.useDeviceBank = true});
  SimSession scalarSession(scalar, SessionOptions{.useDeviceBank = false});
  ASSERT_EQ(bankedSession.deviceBankLaneCount(), 2u);
  ASSERT_EQ(scalarSession.deviceBankLaneCount(), 0u);

  expectSameOp(bankedSession.dcOperatingPoint(),
               scalarSession.dcOperatingPoint());
}

TEST(DeviceBank, TransientBitIdenticalToScalar) {
  Circuit banked = makeInverter();
  Circuit scalar = makeInverter();
  SimSession bankedSession(banked, SessionOptions{.useDeviceBank = true});
  SimSession scalarSession(scalar, SessionOptions{.useDeviceBank = false});

  TransientOptions opt;
  opt.tStop = 200e-12;
  opt.dt = 1e-12;
  expectSameWave(bankedSession.transient(opt), scalarSession.transient(opt));
}

TEST(DeviceBank, MixedModelFamiliesBitIdenticalToScalar) {
  Circuit banked = makeMixedFamilies();
  Circuit scalar = makeMixedFamilies();
  SimSession bankedSession(banked, SessionOptions{.useDeviceBank = true});
  SimSession scalarSession(scalar, SessionOptions{.useDeviceBank = false});
  // VS group (MP, MN) + BsimLite group + AlphaPower group.
  ASSERT_EQ(bankedSession.deviceBankLaneCount(), 4u);

  expectSameOp(bankedSession.dcOperatingPoint(),
               scalarSession.dcOperatingPoint());

  // Sweep the input: warm-started trajectories must stay locked too.
  std::vector<double> levels;
  for (int i = 0; i <= 30; ++i) levels.push_back(0.9 * i / 30.0);
  const auto bankedSweep = bankedSession.dcSweep("VIN", levels);
  const auto scalarSweep = scalarSession.dcSweep("VIN", levels);
  ASSERT_EQ(bankedSweep.size(), scalarSweep.size());
  for (std::size_t i = 0; i < bankedSweep.size(); ++i)
    expectSameOp(bankedSweep[i], scalarSweep[i]);
}

TEST(DeviceBank, InPlaceRebindRefreshesLanes) {
  Circuit banked = makeInverter();
  Circuit scalar = makeInverter();
  SimSession bankedSession(banked, SessionOptions{.useDeviceBank = true});
  SimSession scalarSession(scalar, SessionOptions{.useDeviceBank = false});
  (void)bankedSession.dcOperatingPoint();  // lanes derived from the old card

  // Same-type rebind overwrites the card in place; the bank must re-derive
  // its cached per-lane state before the next solve.
  models::VsParams shifted = nmosCard();
  shifted.vt0 += 0.07;
  const models::VsModel card(shifted);
  banked.mosfet("MN").rebind(card, models::geometryNm(320, 42));
  scalar.mosfet("MN").rebind(card, models::geometryNm(320, 42));

  expectSameOp(bankedSession.dcOperatingPoint(),
               scalarSession.dcOperatingPoint());
}

TEST(DeviceBank, CrossFamilyRebindRebuildsBank) {
  Circuit banked = makeInverter();
  Circuit scalar = makeInverter();
  SimSession bankedSession(banked, SessionOptions{.useDeviceBank = true});
  SimSession scalarSession(scalar, SessionOptions{.useDeviceBank = false});
  (void)bankedSession.dcOperatingPoint();

  // Cross-family rebind clones a BsimLite card into the VS lane: the VS
  // bank reports the incompatible type and the set regroups.
  const models::BsimLite golden(models::defaultBsimNmos());
  banked.mosfet("MN").rebind(golden, models::geometryNm(300, 40));
  scalar.mosfet("MN").rebind(golden, models::geometryNm(300, 40));

  expectSameOp(bankedSession.dcOperatingPoint(),
               scalarSession.dcOperatingPoint());
}

TEST(DeviceBank, SramSnmFixtureBitIdenticalToScalar) {
  // The paper's Fig. 9 inner loop on the real 6T READ fixture: butterfly
  // sweeps + SNM through banked and scalar sessions.
  const models::VsModel nmos(nmosCard());
  const models::VsModel pmos(pmosCard());
  circuits::NominalProvider p1(nmos, pmos);
  circuits::NominalProvider p2(nmos, pmos);
  circuits::SramButterflyBench banked = circuits::buildSramButterfly(
      p1, 0.9, circuits::SramMode::Read, circuits::SramSizing{});
  circuits::SramButterflyBench scalar = circuits::buildSramButterfly(
      p2, 0.9, circuits::SramMode::Read, circuits::SramSizing{});
  SimSession bankedSession(banked.circuit,
                           SessionOptions{.useDeviceBank = true});
  SimSession scalarSession(scalar.circuit,
                           SessionOptions{.useDeviceBank = false});
  ASSERT_EQ(bankedSession.deviceBankLaneCount(), 6u);

  const measure::SnmResult a = measure::measureSnm(banked, bankedSession, 45);
  const measure::SnmResult b = measure::measureSnm(scalar, scalarSession, 45);
  EXPECT_EQ(a.lobe1, b.lobe1);
  EXPECT_EQ(a.lobe2, b.lobe2);
}

TEST(DeviceBank, FreeFunctionsMatchScalarSessions) {
  // The free-analysis entry points default to banked assemblers; they must
  // agree with an explicitly scalar session on the same topology.
  Circuit freePath = makeInverter();
  Circuit scalar = makeInverter();
  SimSession scalarSession(scalar, SessionOptions{.useDeviceBank = false});

  expectSameOp(dcOperatingPoint(freePath), scalarSession.dcOperatingPoint());

  TransientOptions opt;
  opt.tStop = 100e-12;
  opt.dt = 1e-12;
  expectSameWave(transient(freePath, opt), scalarSession.transient(opt));
}

}  // namespace
}  // namespace vsstat::spice
