// Campaign-level tolerance contract of SolverMode::reusePivot -- the same
// three-level scheme NumericsMode::fast ships under (test_fast_campaign):
//
//   (a) determinism: reuse-pivot campaigns are bit-identical across thread
//       counts -- the canonical pivot order is primed from the as-built
//       fixture, never from a sample, so results cannot depend on which
//       worker session served which sample;
//   (b) tolerance: with identical seeds, each sample's metric tracks the
//       fresh-mode campaign within solver tolerance (the Newton trajectory
//       differs -- same convergence criteria, different factorization
//       rounding -- so deltas are solver-epsilon-sized, orders below the
//       mismatch sigma), and the aggregate mean shift stays within
//       3 sigma / sqrt(n);
//   (c) composition: the SolverMode axis composes with NumericsMode::fast,
//       with the same guarantees against the fast/fresh configuration.
//
// A telemetry test additionally proves the mode is engaged: a reuse-pivot
// session performs ~zero full pivoting passes after priming where a fresh
// session performs one per solve.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "models/vs_params.hpp"

namespace vsstat::sim {
namespace {

using circuits::GateFo3Bench;
using circuits::SramButterflyBench;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider(stats::Rng rng) {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
      someAlphas(), rng);
}

constexpr int kSnmPoints = 31;

spice::SessionOptions sessionOptions(linalg::SolverMode solver,
                                     models::NumericsMode numerics) {
  spice::SessionOptions o;
  o.useDeviceBank = true;
  o.numerics = numerics;
  o.solver = solver;
  return o;
}

mc::McResult snmCampaign(int samples, unsigned threads,
                         linalg::SolverMode solver,
                         models::NumericsMode numerics) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 515151;
  opt.threads = threads;
  return mc::runCampaign<SramButterflyBench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, 0.9,
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, CampaignSession<SramButterflyBench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
                .cellSnm();
      },
      sessionOptions(solver, numerics));
}

mc::McResult invCampaign(int samples, unsigned threads,
                         linalg::SolverMode solver,
                         models::NumericsMode numerics) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 616161;
  opt.threads = threads;
  return mc::runCampaign<GateFo3Bench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildInvFo3(provider, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, CampaignSession<GateFo3Bench>& session, stats::Rng&,
         std::vector<double>& out) {
        out[0] = measure::measureGateDelays(session.fixture(), session.spice())
                     .average();
      },
      sessionOptions(solver, numerics));
}

void expectBitIdentical(const mc::McResult& lhs, const mc::McResult& rhs) {
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size());
  EXPECT_EQ(lhs.failures, rhs.failures);
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m)
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << "metric " << m;
}

/// Per-sample relative deltas + aggregate N-sigma statistical-equivalence
/// check between a reuse-pivot and a fresh run with identical seeds.
void expectWithinCampaignTolerance(const mc::McResult& reuse,
                                   const mc::McResult& fresh, double relTol) {
  ASSERT_EQ(reuse.failures, fresh.failures);
  ASSERT_EQ(reuse.metrics.size(), fresh.metrics.size());
  for (std::size_t m = 0; m < fresh.metrics.size(); ++m) {
    const std::vector<double>& ru = reuse.metrics[m];
    const std::vector<double>& fr = fresh.metrics[m];
    ASSERT_EQ(ru.size(), fr.size());
    const std::size_t n = fr.size();
    ASSERT_GT(n, 1u);

    double mean = 0.0;
    for (double v : fr) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double v : fr) var += (v - mean) * (v - mean);
    const double sigma = std::sqrt(var / static_cast<double>(n - 1));

    double meanDelta = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_LE(std::fabs(ru[k] - fr[k]), relTol * (std::fabs(fr[k]) + 1e-18))
          << "metric " << m << " sample " << k;
      meanDelta += ru[k] - fr[k];
    }
    meanDelta /= static_cast<double>(n);
    // 3-sigma band on the mean shift; the per-sample bound keeps the
    // actual shift many orders below this.
    EXPECT_LE(std::fabs(meanDelta),
              3.0 * sigma / std::sqrt(static_cast<double>(n)))
        << "metric " << m;
  }
}

TEST(ReusePivotCampaign, SnmReuseTracksFreshWithinTolerance) {
  const mc::McResult fresh = snmCampaign(16, 1, linalg::SolverMode::fresh,
                                         models::NumericsMode::reference);
  const mc::McResult reuse = snmCampaign(16, 1, linalg::SolverMode::reusePivot,
                                         models::NumericsMode::reference);
  expectWithinCampaignTolerance(reuse, fresh, 1e-8);
}

TEST(ReusePivotCampaign, InvDelayReuseTracksFreshWithinTolerance) {
  const mc::McResult fresh = invCampaign(6, 1, linalg::SolverMode::fresh,
                                         models::NumericsMode::reference);
  const mc::McResult reuse = invCampaign(6, 1, linalg::SolverMode::reusePivot,
                                         models::NumericsMode::reference);
  expectWithinCampaignTolerance(reuse, fresh, 1e-8);
}

TEST(ReusePivotCampaign, FastCompositionTracksFastFreshWithinTolerance) {
  // The two session-mode axes compose: fast+reusePivot vs fast+fresh
  // isolates the SolverMode change under fast numerics.
  const mc::McResult fresh = snmCampaign(12, 1, linalg::SolverMode::fresh,
                                         models::NumericsMode::fast);
  const mc::McResult reuse = snmCampaign(12, 1, linalg::SolverMode::reusePivot,
                                         models::NumericsMode::fast);
  expectWithinCampaignTolerance(reuse, fresh, 1e-8);
}

TEST(ReusePivotCampaign, BitIdenticalAcrossThreadCounts) {
  // The determinism half of the contract: scheduling must not matter even
  // though every worker session reuses pivots across the samples it serves.
  const mc::McResult t1 = snmCampaign(12, 1, linalg::SolverMode::reusePivot,
                                      models::NumericsMode::reference);
  const mc::McResult t4 = snmCampaign(12, 4, linalg::SolverMode::reusePivot,
                                      models::NumericsMode::reference);
  expectBitIdentical(t1, t4);

  const mc::McResult i1 = invCampaign(4, 1, linalg::SolverMode::reusePivot,
                                      models::NumericsMode::reference);
  const mc::McResult i4 = invCampaign(4, 4, linalg::SolverMode::reusePivot,
                                      models::NumericsMode::reference);
  expectBitIdentical(i1, i4);
}

TEST(ReusePivotCampaign, FastCompositionBitIdenticalAcrossThreadCounts) {
  const mc::McResult t1 = snmCampaign(10, 1, linalg::SolverMode::reusePivot,
                                      models::NumericsMode::fast);
  const mc::McResult t4 = snmCampaign(10, 4, linalg::SolverMode::reusePivot,
                                      models::NumericsMode::fast);
  expectBitIdentical(t1, t4);
}

TEST(ReusePivotCampaign, PowerGridReuseTracksFreshAndStaysDeterministic) {
  // The post-layout-scale fixture (circuits::buildPowerGridIrDrop) is the
  // workload class pivot reuse targets; a small grid keeps the test quick
  // while still exercising the many-unknown factorization path.
  const auto gridCampaign = [](int samples, unsigned threads,
                               linalg::SolverMode solver) {
    mc::McOptions opt;
    opt.samples = samples;
    opt.seed = 717171;
    opt.threads = threads;
    return mc::runCampaign<circuits::PowerGridBench>(
        opt, 1,
        [](circuits::DeviceProvider& provider) {
          return circuits::buildPowerGridIrDrop(provider, 4, 4, 0.9);
        },
        [] { return makeProvider(stats::Rng(0)); },
        [](std::size_t, CampaignSession<circuits::PowerGridBench>& session,
           stats::Rng&, std::vector<double>& out) {
          static thread_local std::vector<double> levels;
          static thread_local std::vector<double> farVolts;
          if (levels.size() != 11u) {
            levels.clear();
            for (int i = 0; i <= 10; ++i) levels.push_back(0.09 * i);
          }
          circuits::PowerGridBench& fx = session.fixture();
          session.spice().dcSweepNode(fx.feedSource, levels, fx.farNode,
                                      farVolts);
          out[0] = 0.9 - farVolts.back();
        },
        sessionOptions(solver, models::NumericsMode::reference));
  };

  const mc::McResult fresh = gridCampaign(6, 1, linalg::SolverMode::fresh);
  const mc::McResult reuse =
      gridCampaign(6, 1, linalg::SolverMode::reusePivot);
  expectWithinCampaignTolerance(reuse, fresh, 1e-8);

  const mc::McResult t4 = gridCampaign(6, 4, linalg::SolverMode::reusePivot);
  expectBitIdentical(reuse, t4);
}

TEST(ReusePivotCampaign, TelemetryShowsPivotReuseEngaged) {
  const auto build = [](circuits::DeviceProvider& provider) {
    return circuits::buildSramButterfly(provider, 0.9,
                                        circuits::SramMode::Read,
                                        circuits::SramSizing{});
  };

  const auto sweepOnce = [](CampaignSession<SramButterflyBench>& session) {
    session.bindSample(stats::Rng(7));
    (void)measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
        .cellSnm();
  };

  CampaignSession<SramButterflyBench> fresh(
      build, makeProvider(stats::Rng(0)),
      sessionOptions(linalg::SolverMode::fresh,
                     models::NumericsMode::reference));
  sweepOnce(fresh);
  const spice::SimSession::SolverTelemetry freshTel =
      fresh.spice().solverTelemetry();
  EXPECT_FALSE(freshTel.pivotSnapshotPrimed);
  // Fresh mode re-pivots once per sweep-level solve: ~2 * kSnmPoints.
  EXPECT_GE(freshTel.fullFactors, static_cast<std::uint64_t>(kSnmPoints));

  CampaignSession<SramButterflyBench> reuse(
      build, makeProvider(stats::Rng(0)),
      sessionOptions(linalg::SolverMode::reusePivot,
                     models::NumericsMode::reference));
  sweepOnce(reuse);
  const spice::SimSession::SolverTelemetry reuseTel =
      reuse.spice().solverTelemetry();
  EXPECT_TRUE(reuseTel.pivotSnapshotPrimed);
  // Priming plus (rare) breakdown fallbacks -- nothing per-solve.
  EXPECT_LE(reuseTel.fullFactors, 4u);
  EXPECT_GE(reuseTel.fastRefactors, freshTel.fastRefactors);
}

}  // namespace
}  // namespace vsstat::sim
