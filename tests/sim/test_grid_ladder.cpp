// Campaign contracts on the grid-scale fixture ladder (power-grid mesh,
// H-tree clock, SRAM column):
//
//   (a) worker-count bit-identity: every ladder rung produces the same
//       metric bits -- same FNV-1a over the metric doubles -- under 1, 2,
//       and 4 workers, in ALL FOUR NumericsMode x SolverMode combinations.
//       This is the acceptance determinism check of the sparse LU: the
//       fill-reducing ordering and the Gilbert-Peierls factor are pure
//       functions of the pattern, so scheduling cannot leak into results;
//   (b) fault-injection rescue at grid scale: an injected singular row on
//       the 32x32 mesh (~1k unknowns) walks the same rescue ladder as the
//       paper-scale cells -- transient faults rescued, persistent faults
//       classified and dropped -- and the injected campaign is itself
//       bit-identical across worker counts.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "models/vs_params.hpp"
#include "spice/fault_injection.hpp"

namespace vsstat::sim {
namespace {

using spice::FaultInjector;
using spice::FaultKind;
using spice::FaultSite;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider() {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
      someAlphas(), stats::Rng(0));
}

/// FNV-1a over every metric double's bit pattern plus the failure count --
/// the same identity the bench rows carry as "metrics_fnv1a".
std::uint64_t metricsFnv1a(const mc::McResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& metric : r.metrics) {
    for (const double d : metric) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      mix(bits);
    }
  }
  mix(static_cast<std::uint64_t>(r.failures));
  return h;
}

void expectBitIdentical(const mc::McResult& lhs, const mc::McResult& rhs,
                        const char* what) {
  EXPECT_EQ(metricsFnv1a(lhs), metricsFnv1a(rhs)) << what;
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size()) << what;
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m)
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << what << " metric " << m;
  EXPECT_EQ(lhs.failures, rhs.failures) << what;
  EXPECT_EQ(lhs.rescued, rhs.rescued) << what;
}

/// The four session-mode combinations of the bit-identity acceptance check.
const spice::SessionOptions kModeCombos[] = {
    {.numerics = models::NumericsMode::reference,
     .solver = linalg::SolverMode::fresh},
    {.numerics = models::NumericsMode::fast,
     .solver = linalg::SolverMode::fresh},
    {.numerics = models::NumericsMode::reference,
     .solver = linalg::SolverMode::reusePivot},
    {.numerics = models::NumericsMode::fast,
     .solver = linalg::SolverMode::reusePivot},
};

const char* comboName(const spice::SessionOptions& o) {
  const bool fast = o.numerics == models::NumericsMode::fast;
  const bool reuse = o.solver == linalg::SolverMode::reusePivot;
  return fast ? (reuse ? "fast+reuse" : "fast+fresh")
              : (reuse ? "ref+reuse" : "ref+fresh");
}

constexpr int kSamples = 6;
constexpr int kSweepLevels = 5;

/// Far-corner IR-drop campaign on an edge x edge mesh rung.
mc::McResult meshCampaign(int edge, unsigned threads,
                          spice::SessionOptions options,
                          std::shared_ptr<const FaultInjector> injector =
                              nullptr) {
  mc::McOptions opt;
  opt.samples = kSamples;
  opt.seed = 7171;
  opt.threads = threads;
  options.faultInjector = std::move(injector);
  return mc::runCampaign<circuits::PowerGridBench>(
      opt, 1,
      [edge](circuits::DeviceProvider& provider) {
        return circuits::buildPowerGridIrDrop(provider, edge, edge, 0.9);
      },
      makeProvider,
      [](std::size_t, CampaignSession<circuits::PowerGridBench>& session,
         stats::Rng&, std::vector<double>& out) {
        circuits::PowerGridBench& fx = session.fixture();
        std::vector<double> levels;
        for (int i = 0; i < kSweepLevels; ++i)
          levels.push_back(fx.supply * i / (kSweepLevels - 1));
        std::vector<double> farVolts;
        session.spice().dcSweepNode(fx.feedSource, levels, fx.farNode,
                                    farVolts);
        out[0] = fx.supply - farVolts.back();
      },
      options);
}

/// Far-leaf delivery campaign on an H-tree rung.
mc::McResult hTreeCampaign(unsigned threads, spice::SessionOptions options) {
  mc::McOptions opt;
  opt.samples = kSamples;
  opt.seed = 7272;
  opt.threads = threads;
  return mc::runCampaign<circuits::HTreeClockBench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildHTreeClock(provider, 5, 0.9);
      },
      makeProvider,
      [](std::size_t, CampaignSession<circuits::HTreeClockBench>& session,
         stats::Rng&, std::vector<double>& out) {
        circuits::HTreeClockBench& fx = session.fixture();
        std::vector<double> levels;
        for (int i = 0; i < kSweepLevels; ++i)
          levels.push_back(fx.supply * i / (kSweepLevels - 1));
        std::vector<double> leafVolts;
        session.spice().dcSweepNode(fx.rootSource, levels, fx.leaves.back(),
                                    leafVolts);
        out[0] = fx.supply - leafVolts.back();
      },
      options);
}

/// Retained-state campaign on an SRAM-column rung (shared-bitline hubs).
mc::McResult sramColumnCampaign(unsigned threads,
                                spice::SessionOptions options) {
  mc::McOptions opt;
  opt.samples = kSamples;
  opt.seed = 7373;
  opt.threads = threads;
  return mc::runCampaign<circuits::SramColumnBench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildSramColumn(provider, 4, 0.9,
                                         circuits::SramSizing{});
      },
      makeProvider,
      [](std::size_t, CampaignSession<circuits::SramColumnBench>& session,
         stats::Rng&, std::vector<double>& out) {
        circuits::SramColumnBench& fx = session.fixture();
        const spice::OperatingPoint op =
            session.spice().dcOperatingPoint(fx.stateGuess(), {});
        // Retained-state margin of the selected (read-disturbed) cell.
        out[0] = op.v(fx.q[static_cast<std::size_t>(fx.selected)]) -
                 op.v(fx.qb[static_cast<std::size_t>(fx.selected)]);
      },
      options);
}

TEST(GridLadder, MeshRungBitIdenticalAcrossWorkersInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    const mc::McResult t1 = meshCampaign(10, 1, combo);
    const mc::McResult t2 = meshCampaign(10, 2, combo);
    const mc::McResult t4 = meshCampaign(10, 4, combo);
    EXPECT_EQ(t1.failures, 0) << comboName(combo);
    expectBitIdentical(t1, t2, comboName(combo));
    expectBitIdentical(t1, t4, comboName(combo));
  }
}

TEST(GridLadder, HTreeRungBitIdenticalAcrossWorkersInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    const mc::McResult t1 = hTreeCampaign(1, combo);
    const mc::McResult t4 = hTreeCampaign(4, combo);
    EXPECT_EQ(t1.failures, 0) << comboName(combo);
    expectBitIdentical(t1, t4, comboName(combo));
  }
}

TEST(GridLadder, SramColumnRungBitIdenticalAcrossWorkersInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    const mc::McResult t1 = sramColumnCampaign(1, combo);
    const mc::McResult t4 = sramColumnCampaign(4, combo);
    EXPECT_EQ(t1.failures, 0) << comboName(combo);
    expectBitIdentical(t1, t4, comboName(combo));
    // The retained state is a real margin, not a degenerate solve.
    for (const double margin : t1.metrics[0]) EXPECT_GT(margin, 0.5);
  }
}

TEST(GridLadder, Mesh32SingularRowFaultWalksTheRescueLadder) {
  // Transient singular row at sample 1: the fresh-pivot rung re-solves and
  // recovers it.  Persistent singular row at sample 3: the ladder exhausts
  // and the sample drops under FailureClass::singular.
  const auto injector = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::singularJacobian, 1, /*persistent=*/false},
      {FaultKind::singularJacobian, 3, /*persistent=*/true}});
  const mc::McResult r = meshCampaign(32, 1, {}, injector);
  EXPECT_EQ(r.rescued, 1);
  EXPECT_EQ(r.failures, 1);
  EXPECT_EQ(r.failuresOf(FailureClass::singular), 1);
  ASSERT_TRUE(r.firstFailure.valid);
  EXPECT_EQ(r.firstFailure.sampleIndex, 3u);
  EXPECT_EQ(r.sampleCount(), static_cast<std::size_t>(kSamples - 1));

  // Clean samples are untouched by the armed injector: sample 3 is gone
  // from the injected run's (sample-ordered) metrics, sample 1 re-solved
  // under hardened rescue effort (tolerance only), everything else is
  // bit-identical to the uninjected campaign.
  const mc::McResult clean = meshCampaign(32, 1, {});
  EXPECT_EQ(clean.failures, 0);
  ASSERT_EQ(clean.metrics[0].size(), static_cast<std::size_t>(kSamples));
  ASSERT_EQ(r.metrics[0].size(), static_cast<std::size_t>(kSamples - 1));
  EXPECT_EQ(r.metrics[0][0], clean.metrics[0][0]);
  EXPECT_EQ(r.metrics[0][2], clean.metrics[0][2]);
  EXPECT_EQ(r.metrics[0][3], clean.metrics[0][4]);
  EXPECT_EQ(r.metrics[0][4], clean.metrics[0][5]);
  EXPECT_NEAR(r.metrics[0][1], clean.metrics[0][1],
              1e-8 * std::fabs(clean.metrics[0][1]));
  expectBitIdentical(r, meshCampaign(32, 2, {}, injector), "mesh32 injected");
  expectBitIdentical(r, meshCampaign(32, 4, {}, injector), "mesh32 injected");
}

}  // namespace
}  // namespace vsstat::sim
