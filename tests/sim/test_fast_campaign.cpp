// Campaign-level tolerance contract of NumericsMode::fast: a fast-mode
// session campaign must (a) stay deterministic -- bit-identical across
// thread counts, like every other campaign path -- and (b) track the
// reference campaign's metrics sample-for-sample within solver tolerance
// and, in aggregate, well within statistical noise.
//
// The per-sample check is the strong form of the issue's "within N sigma"
// criterion: with identical seeds the two campaigns evaluate identical
// device draws, so each sample's metric may differ only through the kernel
// rounding (model-level ~1e-14 relative) amplified by the Newton solves
// and the measurement interpolations -- orders below the mismatch sigma.
// The aggregate check then pins mean shift against N*sigma/sqrt(n) so the
// test fails loudly if the per-sample bound is ever loosened past the
// point of statistical equivalence.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "models/vs_params.hpp"

namespace vsstat::sim {
namespace {

using circuits::GateFo3Bench;
using circuits::SramButterflyBench;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider(stats::Rng rng) {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
      someAlphas(), rng);
}

constexpr int kSnmPoints = 31;

mc::McResult snmCampaign(int samples, unsigned threads,
                         models::NumericsMode numerics) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 424242;
  opt.threads = threads;
  return mc::runCampaign<SramButterflyBench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, 0.9,
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, CampaignSession<SramButterflyBench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
                .cellSnm();
      },
      spice::SessionOptions{.useDeviceBank = true, .numerics = numerics});
}

mc::McResult invCampaign(int samples, unsigned threads,
                         models::NumericsMode numerics) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 909;
  opt.threads = threads;
  return mc::runCampaign<GateFo3Bench>(
      opt, 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildInvFo3(provider, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, CampaignSession<GateFo3Bench>& session, stats::Rng&,
         std::vector<double>& out) {
        out[0] = measure::measureGateDelays(session.fixture(), session.spice())
                     .average();
      },
      spice::SessionOptions{.useDeviceBank = true, .numerics = numerics});
}

void expectBitIdentical(const mc::McResult& lhs, const mc::McResult& rhs) {
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size());
  EXPECT_EQ(lhs.failures, rhs.failures);
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m)
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << "metric " << m;
}

/// Per-sample relative deltas + aggregate N-sigma statistical-equivalence
/// check between a fast and a reference run with identical seeds.
void expectWithinCampaignTolerance(const mc::McResult& fast,
                                   const mc::McResult& ref, double relTol) {
  ASSERT_EQ(fast.failures, ref.failures);
  ASSERT_EQ(fast.metrics.size(), ref.metrics.size());
  for (std::size_t m = 0; m < ref.metrics.size(); ++m) {
    const std::vector<double>& fr = fast.metrics[m];
    const std::vector<double>& rr = ref.metrics[m];
    ASSERT_EQ(fr.size(), rr.size());
    const std::size_t n = rr.size();
    ASSERT_GT(n, 1u);

    double mean = 0.0;
    for (double v : rr) mean += v;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (double v : rr) var += (v - mean) * (v - mean);
    const double sigma = std::sqrt(var / static_cast<double>(n - 1));

    double meanDelta = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_LE(std::fabs(fr[k] - rr[k]),
                relTol * (std::fabs(rr[k]) + 1e-18))
          << "metric " << m << " sample " << k;
      meanDelta += fr[k] - rr[k];
    }
    meanDelta /= static_cast<double>(n);
    // 3-sigma band on the mean shift; the per-sample bound keeps the
    // actual shift many orders below this.
    EXPECT_LE(std::fabs(meanDelta),
              3.0 * sigma / std::sqrt(static_cast<double>(n)))
        << "metric " << m;
  }
}

TEST(FastCampaign, SnmFastTracksReferenceWithinTolerance) {
  const mc::McResult ref =
      snmCampaign(16, 1, models::NumericsMode::reference);
  const mc::McResult fast = snmCampaign(16, 1, models::NumericsMode::fast);
  expectWithinCampaignTolerance(fast, ref, 1e-8);
}

TEST(FastCampaign, InvDelayFastTracksReferenceWithinTolerance) {
  const mc::McResult ref = invCampaign(6, 1, models::NumericsMode::reference);
  const mc::McResult fast = invCampaign(6, 1, models::NumericsMode::fast);
  expectWithinCampaignTolerance(fast, ref, 1e-8);
}

TEST(FastCampaign, FastModeBitIdenticalAcrossThreadCounts) {
  // Determinism survives the numerics swap: fast campaigns at 1 and 4
  // workers must agree bit-for-bit (per-worker sessions, decorrelated
  // per-sample RNG, and kernel results independent of scheduling).
  const mc::McResult t1 = snmCampaign(12, 1, models::NumericsMode::fast);
  const mc::McResult t4 = snmCampaign(12, 4, models::NumericsMode::fast);
  expectBitIdentical(t1, t4);

  const mc::McResult i1 = invCampaign(4, 1, models::NumericsMode::fast);
  const mc::McResult i4 = invCampaign(4, 4, models::NumericsMode::fast);
  expectBitIdentical(i1, i4);
}

TEST(FastCampaign, FastRequiresTheDeviceBank) {
  spice::Circuit circuit;
  spice::SessionOptions options;
  options.useDeviceBank = false;
  options.numerics = models::NumericsMode::fast;
  EXPECT_THROW(spice::SimSession(circuit, options),
               vsstat::InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::sim
