// End-to-end contract of the fault-injection seam + rescue ladder +
// failure taxonomy (spice/fault_injection.hpp, sim/rescue.hpp,
// mc/runner.hpp):
//
//   (a) an injected-fault campaign completes with every failure classified,
//       transient faults rescued, and persistent faults dropped under the
//       right FailureClass with first-failure diagnostics;
//   (b) determinism: injected-fault campaigns are bit-identical across
//       thread counts -- faults are keyed by sample index and every rescue
//       attempt replays the sample's RNG, so scheduling cannot matter;
//   (c) rung semantics: a reusePivot pivot breakdown is healed by the
//       fresh-pivot rung, a fast-numerics NaN lane by the reference rung
//       (whose rescued metric matches a reference campaign within 1e-8),
//       and session modes are restored after every sample;
//   (d) clean samples pay nothing: with rescue armed but no faults firing,
//       metrics are bit-identical to a no-injector campaign.
#include "spice/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/snm.hpp"
#include "models/vs_params.hpp"
#include "sim/rescue.hpp"
#include "sim/session.hpp"
#include "util/error.hpp"

namespace vsstat::sim {
namespace {

using circuits::SramButterflyBench;
using spice::FaultInjector;
using spice::FaultKind;
using spice::FaultSite;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider() {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
      someAlphas(), stats::Rng(0));
}

constexpr int kSnmPoints = 21;
constexpr int kSamples = 12;

SramButterflyBench buildCell(circuits::DeviceProvider& provider) {
  return circuits::buildSramButterfly(provider, 0.9, circuits::SramMode::Read,
                                      circuits::SramSizing{});
}

/// SNM campaign with an optional fault schedule.  The metric fn honors the
/// metricThrow advisory exactly as real measurement code would.
mc::McResult snmCampaign(unsigned threads,
                         std::shared_ptr<const FaultInjector> injector,
                         spice::SessionOptions base = {}) {
  mc::McOptions opt;
  opt.samples = kSamples;
  opt.seed = 424242;
  opt.threads = threads;
  base.faultInjector = injector;
  return mc::runCampaign<SramButterflyBench>(
      opt, 1, buildCell, makeProvider,
      [injector](std::size_t i, CampaignSession<SramButterflyBench>& session,
                 stats::Rng&, std::vector<double>& out) {
        if (injector != nullptr &&
            injector->metricThrowAt(i, session.spice().sampleAttempt())) {
          throw MetricDomainError("injected: degenerate butterfly curve");
        }
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
                .cellSnm();
      },
      base);
}

void expectSameResults(const mc::McResult& lhs, const mc::McResult& rhs) {
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size());
  EXPECT_EQ(lhs.failures, rhs.failures);
  EXPECT_EQ(lhs.failuresByClass, rhs.failuresByClass);
  EXPECT_EQ(lhs.rescued, rhs.rescued);
  EXPECT_EQ(lhs.firstFailure.valid, rhs.firstFailure.valid);
  if (lhs.firstFailure.valid && rhs.firstFailure.valid) {
    EXPECT_EQ(lhs.firstFailure.sampleIndex, rhs.firstFailure.sampleIndex);
    EXPECT_EQ(lhs.firstFailure.failureClass, rhs.firstFailure.failureClass);
  }
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m)
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << "metric " << m;  // bit-equal
}

TEST(FaultInjection, TransientSingularJacobianIsRescued) {
  const auto injector = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::singularJacobian, 5, /*persistent=*/false}});
  const mc::McResult r = snmCampaign(1, injector);
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.rescued, 1);
  EXPECT_FALSE(r.firstFailure.valid);
  EXPECT_EQ(r.sampleCount(), static_cast<std::size_t>(kSamples));

  // Clean samples never enter the ladder: every metric except the rescued
  // sample's is bit-identical to the uninjected campaign (the rescued one
  // re-solved under hardened effort, so only tolerance holds there).
  const mc::McResult clean = snmCampaign(1, nullptr);
  ASSERT_EQ(clean.sampleCount(), r.sampleCount());
  for (std::size_t i = 0; i < r.metrics[0].size(); ++i) {
    if (i == 5u) {
      EXPECT_NEAR(r.metrics[0][i], clean.metrics[0][i],
                  1e-8 * std::fabs(clean.metrics[0][i]));
    } else {
      EXPECT_EQ(r.metrics[0][i], clean.metrics[0][i]) << "sample " << i;
    }
  }
}

TEST(FaultInjection, PersistentSingularJacobianExhaustsTheLadder) {
  const auto injector = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::singularJacobian, 2, /*persistent=*/true}});
  const mc::McResult r = snmCampaign(1, injector);
  EXPECT_EQ(r.failures, 1);
  EXPECT_EQ(r.rescued, 0);
  EXPECT_EQ(r.failuresOf(FailureClass::singular), 1);
  ASSERT_TRUE(r.firstFailure.valid);
  EXPECT_EQ(r.firstFailure.sampleIndex, 2u);
  EXPECT_EQ(r.firstFailure.failureClass, FailureClass::singular);
  EXPECT_EQ(r.sampleCount(), static_cast<std::size_t>(kSamples - 1));
}

TEST(FaultInjection, MetricThrowFollowsTheSameTaxonomy) {
  // Transient metric throw: the advisory stops firing on attempt 1, so the
  // hardened rung recovers the sample.  Persistent: classified metricDomain.
  const auto transient =
      std::make_shared<FaultInjector>(std::vector<FaultSite>{
          {FaultKind::metricThrow, 7, /*persistent=*/false}});
  const mc::McResult rescued = snmCampaign(1, transient);
  EXPECT_EQ(rescued.failures, 0);
  EXPECT_EQ(rescued.rescued, 1);

  const auto persistent =
      std::make_shared<FaultInjector>(std::vector<FaultSite>{
          {FaultKind::metricThrow, 7, /*persistent=*/true}});
  const mc::McResult dropped = snmCampaign(1, persistent);
  EXPECT_EQ(dropped.failures, 1);
  EXPECT_EQ(dropped.failuresOf(FailureClass::metricDomain), 1);
  ASSERT_TRUE(dropped.firstFailure.valid);
  EXPECT_EQ(dropped.firstFailure.sampleIndex, 7u);
  EXPECT_NE(dropped.firstFailure.message.find("degenerate butterfly"),
            std::string::npos);
}

TEST(FaultInjection, InjectedCampaignsAreBitIdenticalAcrossThreadCounts) {
  // The acceptance determinism check: a mixed fault schedule (one rescue,
  // one hard drop, one metric throw) must not make results depend on
  // scheduling in any way -- metrics, taxonomy, or first-failure identity.
  const auto injector = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::singularJacobian, 3, /*persistent=*/false},
      {FaultKind::singularJacobian, 8, /*persistent=*/true},
      {FaultKind::metricThrow, 10, /*persistent=*/false}});
  const mc::McResult t1 = snmCampaign(1, injector);
  const mc::McResult t2 = snmCampaign(2, injector);
  const mc::McResult t4 = snmCampaign(4, injector);
  EXPECT_EQ(t1.failures, 1);
  EXPECT_EQ(t1.rescued, 2);
  EXPECT_EQ(t1.failuresOf(FailureClass::singular), 1);
  expectSameResults(t1, t2);
  expectSameResults(t1, t4);
}

TEST(FaultInjection, FastNanLaneFallsBackToReferenceNumericsWithin1e8) {
  // A persistent NaN lane only poisons FAST bank evaluation, so the ladder
  // walks harden (still fast, fails) -> reference (heals).  The reference
  // rung runs at identity effort, so the rescued sample's metric is the
  // reference campaign's bits; every other sample stays on fast bits.
  spice::SessionOptions fast;
  fast.numerics = models::NumericsMode::fast;
  const auto injector = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::nanBankLane, 4, /*persistent=*/true}});
  const mc::McResult r = snmCampaign(1, injector, fast);
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.rescued, 1);

  const mc::McResult reference = snmCampaign(1, nullptr);
  ASSERT_EQ(r.sampleCount(), reference.sampleCount());
  for (std::size_t i = 0; i < r.metrics[0].size(); ++i) {
    EXPECT_NEAR(r.metrics[0][i], reference.metrics[0][i],
                1e-8 * std::fabs(reference.metrics[0][i]))
        << "sample " << i;
  }
  EXPECT_EQ(r.metrics[0][4], reference.metrics[0][4]);  // healed = ref bits

  // Determinism holds for the fast-mode injected campaign too.
  expectSameResults(r, snmCampaign(4, injector, fast));
}

TEST(FaultInjection, DisabledRescueDropsButStillClassifies) {
  mc::McOptions opt;
  opt.samples = kSamples;
  opt.seed = 424242;
  const auto injector = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::singularJacobian, 5, /*persistent=*/false}});
  spice::SessionOptions base;
  base.faultInjector = injector;
  RescuePolicy noRescue;
  noRescue.enabled = false;
  const mc::McResult r = mc::runCampaign<SramButterflyBench>(
      opt, 1, buildCell, makeProvider,
      [](std::size_t, CampaignSession<SramButterflyBench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
                .cellSnm();
      },
      base, noRescue);
  EXPECT_EQ(r.failures, 1);
  EXPECT_EQ(r.rescued, 0);
  EXPECT_EQ(r.failuresOf(FailureClass::singular), 1);
}

TEST(FaultInjection, PowerGridPivotBreakdownIsHealedByTheFreshPivotRung) {
  // The reusePivot workload class: a pivot-order breakdown that persists
  // under hardened effort (it is a property of the reused order, not of
  // Newton damping) must be healed by the fresh-pivot rung, and the
  // session must leave the sample back in reusePivot mode.
  spice::SessionOptions options;
  options.solver = linalg::SolverMode::reusePivot;
  CampaignSession<circuits::PowerGridBench> session(
      [](circuits::DeviceProvider& provider) {
        return circuits::buildPowerGridIrDrop(provider, 4, 4, 0.9);
      },
      makeProvider(), options);

  std::vector<double> out(1, 0.0);
  std::vector<double> farVolts;
  const std::vector<double> levels{0.0, 0.45, 0.9};
  mc::SampleContext ctx;
  int attemptsSeen = 0;
  runSampleWithRescue(
      /*index=*/0, session, stats::Rng(99), out, ctx,
      [&](std::size_t, CampaignSession<circuits::PowerGridBench>& s,
          stats::Rng&, std::vector<double>& metrics) {
        ++attemptsSeen;
        if (s.spice().solverMode() == linalg::SolverMode::reusePivot) {
          throw SingularMatrixError("grid_ir: reused pivot order broke down",
                                    0);
        }
        circuits::PowerGridBench& fx = s.fixture();
        s.spice().dcSweepNode(fx.feedSource, levels, fx.farNode, farVolts);
        metrics[0] = 0.9 - farVolts.back();
      });

  // Attempt 0 (reuse) and the hardened rung (still reuse) fail; the
  // fresh-pivot rung at attempt 2 succeeds.
  EXPECT_EQ(ctx.rescueAttempts, 2);
  EXPECT_EQ(attemptsSeen, 3);
  EXPECT_GT(out[0], 0.0);
  // Baseline modes and effort restored for the next sample.
  EXPECT_EQ(session.spice().solverMode(), linalg::SolverMode::reusePivot);
  EXPECT_EQ(session.spice().solveEffort().iterationMultiplier, 1);
  EXPECT_EQ(session.spice().sampleAttempt(), 0);
}

TEST(FaultInjection, SolveReportTelemetrySurfacesTheLastSolve) {
  // A plain session (no campaign, no injector) records per-solve
  // diagnostics: a clean DC point reports ok with a tiny residual.
  auto provider = makeProvider();
  circuits::RecordingProvider recorder(*provider);
  SramButterflyBench cell = buildCell(recorder);
  spice::SimSession session(cell.circuit);
  (void)session.dcOperatingPoint();
  const spice::SolveReport report = session.solverTelemetry().lastSolve;
  EXPECT_EQ(report.outcome, spice::SolveOutcome::ok);
  EXPECT_GT(report.iterations, 0);
  EXPECT_EQ(report.homotopyRung, spice::kRungPlainNewton);
  EXPECT_FALSE(report.sawSingular);
  EXPECT_FALSE(report.sawNonFinite);
  EXPECT_LT(report.finalResidual, 1e-6);
}

}  // namespace
}  // namespace vsstat::sim
