// Multi-tenant session-pool cache (sim::SessionPoolCache): keyed pools
// with LRU eviction behind the campaign server.  Covers the cache
// mechanics (hit/miss accounting, LRU order, eviction keeping in-flight
// pools alive) and the determinism contract that matters for multi-tenant
// serving: campaigns leased from a CACHED, REUSED pool must be
// bit-identical to campaigns on dedicated pools, at any worker count.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/delay.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"
#include "sim/rescue.hpp"

namespace vsstat::sim {
namespace {

using circuits::GateFo3Bench;
using Cache = SessionPoolCache<GateFo3Bench>;
using Pool = SessionPool<GateFo3Bench>;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::shared_ptr<Pool> makeInvPool() {
  return std::make_shared<Pool>(
      [](circuits::DeviceProvider& p) {
        return circuits::buildInvFo3(p, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      [] {
        return std::make_unique<mc::VsStatisticalProvider>(
            models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
            someAlphas(), stats::Rng(0));
      });
}

TEST(SessionPoolCache, HitMissAccounting) {
  Cache cache(4);
  EXPECT_FALSE(cache.contains("a"));

  const std::shared_ptr<Pool> first = cache.acquire("a", makeInvPool);
  EXPECT_TRUE(cache.contains("a"));
  const std::shared_ptr<Pool> second = cache.acquire("a", makeInvPool);
  EXPECT_EQ(first.get(), second.get()) << "repeat key must share one pool";

  const Cache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(SessionPoolCache, EvictsLeastRecentlyUsed) {
  Cache cache(2);
  (void)cache.acquire("a", makeInvPool);
  (void)cache.acquire("b", makeInvPool);
  // Touch "a" so "b" becomes the LRU entry.
  (void)cache.acquire("a", makeInvPool);
  (void)cache.acquire("c", makeInvPool);

  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SessionPoolCache, EvictionKeepsInFlightPoolAlive) {
  Cache cache(1);
  const std::shared_ptr<Pool> held = cache.acquire("a", makeInvPool);
  {
    // Build a session on the held pool, then evict its cache entry.
    Pool::Lease lease = held->acquire();
    (void)cache.acquire("b", makeInvPool);
    EXPECT_FALSE(cache.contains("a"));
    // The lease (and the pool behind it) must remain fully usable.
    EXPECT_GE(lease->deviceCount(), 1u);
  }
  EXPECT_EQ(held->sessionCount(), 1u);
}

TEST(SessionPoolCache, CapacityMustBePositive) {
  EXPECT_THROW(Cache cache(0), InvalidArgumentError);
}

// --- determinism across cached/shared pools --------------------------------

constexpr double kInvDt = 0.5e-12;

/// Runs the INV Fo3 delay campaign against an explicit shared pool, the
/// way the campaign server does (per-sample leases, no blocked dispatch).
mc::McResult campaignOnPool(Pool& pool, int samples, unsigned threads) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 321;
  opt.threads = threads;
  const sim::RescuePolicy rescue;
  const auto measureDelay = [](std::size_t,
                               CampaignSession<GateFo3Bench>& session,
                               stats::Rng&, std::vector<double>& out) {
    out[0] = measure::measureGateDelays(session.fixture(), session.spice(),
                                        kInvDt)
                 .average();
  };
  return mc::runCampaign(
      opt, 1,
      mc::SampleFnEx([&](std::size_t index, stats::Rng& rng,
                         std::vector<double>& out, mc::SampleContext& ctx) {
        Pool::Lease lease = pool.acquire();
        sim::runSampleWithRescue(index, *lease, rng, out, ctx, measureDelay,
                                 rescue);
      }),
      mc::BlockResourceFn{});
}

TEST(SessionPoolCache, CachedPoolCampaignsBitIdenticalAcrossWorkers) {
  Cache cache(2);
  const std::shared_ptr<Pool> pool = cache.acquire("inv", makeInvPool);

  // Cold pool, 1 worker -- the reference.
  const mc::McResult reference = campaignOnPool(*pool, 10, 1);
  ASSERT_GT(reference.sampleCount(), 0u);

  // Re-acquired (warm) pool at 2 and 4 workers: same bits.  The pool's
  // sessions are now primed from the first campaign, which must not matter.
  for (const unsigned threads : {2u, 4u}) {
    const std::shared_ptr<Pool> warm = cache.acquire("inv", makeInvPool);
    ASSERT_EQ(warm.get(), pool.get());
    const mc::McResult repeat = campaignOnPool(*warm, 10, threads);
    ASSERT_EQ(repeat.metrics[0].size(), reference.metrics[0].size());
    EXPECT_EQ(repeat.metrics[0], reference.metrics[0])
        << threads << " workers";
  }
}

}  // namespace
}  // namespace vsstat::sim
