// The campaign engine's core contract (sim/session.hpp): a Monte Carlo
// campaign through build-once / rebind-per-sample sessions must produce
// BIT-identical metrics to the legacy rebuild-per-sample path, for any
// thread count -- on both a transient workload (INV Fo3 delay) and a
// DC-sweep workload (SRAM SNM).  Also covers the element/provider rebind
// plumbing and the session pool.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "models/bsim_lite.hpp"
#include "models/bsim_params.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"

namespace vsstat::sim {
namespace {

using circuits::GateFo3Bench;
using circuits::SramButterflyBench;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider(stats::Rng rng) {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
      someAlphas(), rng);
}

void expectBitIdentical(const mc::McResult& lhs, const mc::McResult& rhs) {
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size());
  EXPECT_EQ(lhs.failures, rhs.failures);
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m) {
    ASSERT_EQ(lhs.metrics[m].size(), rhs.metrics[m].size()) << "metric " << m;
    // operator== on vector<double> compares element bits (no tolerance).
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << "metric " << m;
  }
}

// --- INV Fo3 delay: transient workload -------------------------------------

constexpr double kInvDt = 0.5e-12;

mc::McResult invRebuildCampaign(int samples, unsigned threads) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 77;
  opt.threads = threads;
  return mc::runCampaign(
      opt, 1, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = makeProvider(rng);
        GateFo3Bench bench = circuits::buildInvFo3(
            *provider, circuits::CellSizing{}, circuits::StimulusSpec{});
        out[0] = measure::measureGateDelays(bench, kInvDt).average();
      });
}

mc::McResult invSessionCampaign(int samples, unsigned threads) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 77;
  opt.threads = threads;
  return mc::runCampaign<GateFo3Bench>(
      opt, 1,
      [](circuits::DeviceProvider& p) {
        return circuits::buildInvFo3(p, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, CampaignSession<GateFo3Bench>& session, stats::Rng&,
         std::vector<double>& out) {
        out[0] = measure::measureGateDelays(session.fixture(), session.spice(),
                                            kInvDt)
                     .average();
      });
}

TEST(CampaignSession, InvFo3RebindBitIdenticalToRebuild) {
  const mc::McResult rebuild = invRebuildCampaign(12, 1);
  const mc::McResult session1 = invSessionCampaign(12, 1);
  const mc::McResult session4 = invSessionCampaign(12, 4);
  ASSERT_GT(rebuild.sampleCount(), 0u);
  expectBitIdentical(rebuild, session1);
  expectBitIdentical(rebuild, session4);
}

// --- SRAM SNM: DC-sweep workload -------------------------------------------

constexpr int kSnmPoints = 31;

mc::McResult snmRebuildCampaign(int samples, unsigned threads) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 901;
  opt.threads = threads;
  return mc::runCampaign(
      opt, 1, [](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = makeProvider(rng);
        SramButterflyBench bench = circuits::buildSramButterfly(
            *provider, 0.9, circuits::SramMode::Read, circuits::SramSizing{});
        out[0] = measure::measureSnm(bench, kSnmPoints).cellSnm();
      });
}

mc::McResult snmSessionCampaign(int samples, unsigned threads) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = 901;
  opt.threads = threads;
  return mc::runCampaign<SramButterflyBench>(
      opt, 1,
      [](circuits::DeviceProvider& p) {
        return circuits::buildSramButterfly(p, 0.9, circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      [] { return makeProvider(stats::Rng(0)); },
      [](std::size_t, CampaignSession<SramButterflyBench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
                .cellSnm();
      });
}

TEST(CampaignSession, SramSnmRebindBitIdenticalToRebuild) {
  const mc::McResult rebuild = snmRebuildCampaign(10, 1);
  const mc::McResult session1 = snmSessionCampaign(10, 1);
  const mc::McResult session4 = snmSessionCampaign(10, 4);
  ASSERT_GT(rebuild.sampleCount(), 0u);
  expectBitIdentical(rebuild, session1);
  expectBitIdentical(rebuild, session4);
}

// --- Device bank: banked sessions vs the scalar element loop -----------------

/// Session campaign with the device bank explicitly on/off.  The default
/// (banked) path batch-evaluates each model group per Newton assembly; the
/// scalar path is the PR-2 per-element loop.  Their campaign metrics must
/// be BIT-identical for any thread count on both workload shapes.
template <class Fixture, class Fn>
mc::McResult campaignWithBank(int samples, unsigned threads,
                              std::uint64_t seed,
                              const typename sim::CampaignSession<
                                  Fixture>::Builder& build,
                              bool useDeviceBank, const Fn& fn) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = seed;
  opt.threads = threads;
  return mc::runCampaign<Fixture>(
      opt, 1, build, [] { return makeProvider(stats::Rng(0)); }, fn,
      spice::SessionOptions{.useDeviceBank = useDeviceBank});
}

TEST(DeviceBankCampaign, InvFo3BankedBitIdenticalToScalarSession) {
  const auto build = [](circuits::DeviceProvider& p) {
    return circuits::buildInvFo3(p, circuits::CellSizing{},
                                 circuits::StimulusSpec{});
  };
  const auto fn = [](std::size_t, CampaignSession<GateFo3Bench>& session,
                     stats::Rng&, std::vector<double>& out) {
    out[0] = measure::measureGateDelays(session.fixture(), session.spice(),
                                        kInvDt)
                 .average();
  };
  const mc::McResult scalar =
      campaignWithBank<GateFo3Bench>(10, 1, 4242, build, false, fn);
  const mc::McResult banked1 =
      campaignWithBank<GateFo3Bench>(10, 1, 4242, build, true, fn);
  const mc::McResult banked4 =
      campaignWithBank<GateFo3Bench>(10, 4, 4242, build, true, fn);
  ASSERT_GT(scalar.sampleCount(), 0u);
  expectBitIdentical(scalar, banked1);
  expectBitIdentical(scalar, banked4);
}

TEST(DeviceBankCampaign, SramSnmBankedBitIdenticalToScalarSession) {
  const auto build = [](circuits::DeviceProvider& p) {
    return circuits::buildSramButterfly(p, 0.9, circuits::SramMode::Read,
                                        circuits::SramSizing{});
  };
  const auto fn = [](std::size_t, CampaignSession<SramButterflyBench>& session,
                     stats::Rng&, std::vector<double>& out) {
    out[0] =
        measure::measureSnm(session.fixture(), session.spice(), kSnmPoints)
            .cellSnm();
  };
  const mc::McResult scalar =
      campaignWithBank<SramButterflyBench>(8, 1, 905, build, false, fn);
  const mc::McResult banked1 =
      campaignWithBank<SramButterflyBench>(8, 1, 905, build, true, fn);
  const mc::McResult banked4 =
      campaignWithBank<SramButterflyBench>(8, 4, 905, build, true, fn);
  ASSERT_GT(scalar.sampleCount(), 0u);
  expectBitIdentical(scalar, banked1);
  expectBitIdentical(scalar, banked4);
}

TEST(DeviceBankCampaign, SessionsReportBankedLanes) {
  auto session = CampaignSession<SramButterflyBench>(
      [](circuits::DeviceProvider& p) {
        return circuits::buildSramButterfly(p, 0.9, circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      makeProvider(stats::Rng(1)));
  EXPECT_EQ(session.spice().deviceBankLaneCount(), 6u);  // banked by default

  auto scalar = CampaignSession<SramButterflyBench>(
      [](circuits::DeviceProvider& p) {
        return circuits::buildSramButterfly(p, 0.9, circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      makeProvider(stats::Rng(1)),
      spice::SessionOptions{.useDeviceBank = false});
  EXPECT_EQ(scalar.spice().deviceBankLaneCount(), 0u);
}

// --- Rebind plumbing ---------------------------------------------------------

TEST(CampaignSession, RecordsBuildOrderAndRebindsInPlace) {
  auto provider = makeProvider(stats::Rng(3));
  CampaignSession<SramButterflyBench> session(
      [](circuits::DeviceProvider& p) {
        return circuits::buildSramButterfly(p, 0.9, circuits::SramMode::Hold,
                                            circuits::SramSizing{});
      },
      std::move(provider));
  // Documented order: PU1, PD1, PG1, PU2, PD2, PG2.
  EXPECT_EQ(session.deviceCount(), 6u);

  // Rebinding with the same sample stream must reproduce the rebuild cards:
  // compare a terminal current against a freshly built fixture.
  const stats::Rng sample(12345);
  session.bindSample(sample);
  const double sessionId = session.fixture()
                               .circuit.mosfet("MPD1")
                               .terminalDrainCurrent(0.9, 0.9, 0.0);

  auto freshProvider = makeProvider(sample);
  SramButterflyBench rebuilt = circuits::buildSramButterfly(
      *freshProvider, 0.9, circuits::SramMode::Hold, circuits::SramSizing{});
  const double rebuiltId =
      rebuilt.circuit.mosfet("MPD1").terminalDrainCurrent(0.9, 0.9, 0.0);
  EXPECT_EQ(sessionId, rebuiltId);

  // A second bind with a different stream must actually change the card.
  session.bindSample(stats::Rng(999));
  const double rebound = session.fixture()
                             .circuit.mosfet("MPD1")
                             .terminalDrainCurrent(0.9, 0.9, 0.0);
  EXPECT_NE(rebound, sessionId);
}

TEST(MosfetRebind, SameTypeCopiesInPlaceDifferentTypeClones) {
  const models::VsModel vsA(models::defaultVsNmos());
  models::VsParams tweaked = models::defaultVsNmos();
  tweaked.vt0 += 0.05;
  const models::VsModel vsB(tweaked);

  spice::Circuit c;
  auto& m = c.addMosfet("M1", c.node("d"), c.node("g"), c.ground(),
                        vsA.clone(), models::geometryNm(300, 40));
  const models::MosfetModel* before = &m.model();
  m.rebind(vsB, models::geometryNm(300, 40));
  EXPECT_EQ(&m.model(), before);  // same object, parameters overwritten
  EXPECT_EQ(m.terminalDrainCurrent(0.9, 0.9, 0.0),
            spice::MosfetElement("tmp", 1, 2, 0, vsB.clone(),
                                 models::geometryNm(300, 40))
                .terminalDrainCurrent(0.9, 0.9, 0.0));

  // Cross-family rebind falls back to cloning (and must not change type).
  const models::BsimLite golden(models::defaultBsimNmos());
  m.rebind(golden, models::geometryNm(300, 40));
  EXPECT_NE(&m.model(), before);
  EXPECT_EQ(m.model().name(), "BSIM-lite");
}

TEST(SessionPool, ReusesSessionsAcrossLeases) {
  SessionPool<SramButterflyBench> pool(
      [](circuits::DeviceProvider& p) {
        return circuits::buildSramButterfly(p, 0.9, circuits::SramMode::Hold,
                                            circuits::SramSizing{});
      },
      [] { return makeProvider(stats::Rng(0)); });

  CampaignSession<SramButterflyBench>* first = nullptr;
  {
    auto lease = pool.acquire();
    first = &*lease;
  }
  {
    auto lease = pool.acquire();
    EXPECT_EQ(&*lease, first);  // returned to the free list and reused
  }
  EXPECT_EQ(pool.sessionCount(), 1u);

  // Two concurrent leases force a second session.
  auto a = pool.acquire();
  auto b = pool.acquire();
  EXPECT_NE(&*a, &*b);
  EXPECT_EQ(pool.sessionCount(), 2u);
}

}  // namespace
}  // namespace vsstat::sim
