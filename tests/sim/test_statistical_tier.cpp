// ToleranceTier::statistical contracts:
//
//   (a) estimator-level accuracy: a statistical-tier campaign's mean,
//       sigma, and yield agree with the perSample run (same seeds) within
//       a few Monte Carlo standard errors, on all three workload shapes
//       (SRAM SNM sweeps, INV FO3 transients, power-grid supply sweeps)
//       and in ALL FOUR NumericsMode x SolverMode combinations;
//   (b) the tier actually engages: fewer Newton iterations than the
//       perSample run and a high warm-start hit rate, from the McResult
//       telemetry;
//   (c) worker-count reproducibility: statistical campaigns are
//       bit-identical across 1/2/4 workers (the warm-chain block geometry
//       depends only on McOptions::sampleBlock, never on the schedule);
//   (d) rescue composition: an injected fault under the statistical tier
//       walks the perSample-rung rescue ladder, heals transient faults,
//       drops persistent ones, and stays bit-identical across workers;
//   (e) the first-class sampling plans (SamplingPlan / SobolSampler) are
//       deterministic and stratified.
#include "sim/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/providers.hpp"
#include "mc/runner.hpp"
#include "mc/samplers.hpp"
#include "measure/delay.hpp"
#include "measure/snm.hpp"
#include "models/vs_params.hpp"
#include "spice/fault_injection.hpp"
#include "stats/descriptive.hpp"

namespace vsstat::sim {
namespace {

using spice::FaultInjector;
using spice::FaultKind;
using spice::FaultSite;
using spice::ToleranceTier;

models::PelgromAlphas someAlphas() {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.7;
  a.aWeff = 3.7;
  a.aMu = 900.0;
  a.aCinv = 0.3;
  return a;
}

std::unique_ptr<circuits::DeviceProvider> makeProvider() {
  return std::make_unique<mc::VsStatisticalProvider>(
      models::defaultVsNmos(), models::defaultVsPmos(), someAlphas(),
      someAlphas(), stats::Rng(0));
}

std::uint64_t metricsFnv1a(const mc::McResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& metric : r.metrics) {
    for (const double d : metric) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof bits);
      mix(bits);
    }
  }
  mix(static_cast<std::uint64_t>(r.failures));
  return h;
}

void expectBitIdentical(const mc::McResult& lhs, const mc::McResult& rhs,
                        const char* what) {
  EXPECT_EQ(metricsFnv1a(lhs), metricsFnv1a(rhs)) << what;
  ASSERT_EQ(lhs.metrics.size(), rhs.metrics.size()) << what;
  for (std::size_t m = 0; m < lhs.metrics.size(); ++m)
    EXPECT_EQ(lhs.metrics[m], rhs.metrics[m]) << what << " metric " << m;
  EXPECT_EQ(lhs.failures, rhs.failures) << what;
  EXPECT_EQ(lhs.rescued, rhs.rescued) << what;
}

const spice::SessionOptions kModeCombos[] = {
    {.numerics = models::NumericsMode::reference,
     .solver = linalg::SolverMode::fresh},
    {.numerics = models::NumericsMode::fast,
     .solver = linalg::SolverMode::fresh},
    {.numerics = models::NumericsMode::reference,
     .solver = linalg::SolverMode::reusePivot},
    {.numerics = models::NumericsMode::fast,
     .solver = linalg::SolverMode::reusePivot},
};

const char* comboName(const spice::SessionOptions& o) {
  const bool fast = o.numerics == models::NumericsMode::fast;
  const bool reuse = o.solver == linalg::SolverMode::reusePivot;
  return fast ? (reuse ? "fast+reuse" : "fast+fresh")
              : (reuse ? "ref+reuse" : "ref+fresh");
}

constexpr int kSamples = 24;
// Small explicit block so multi-worker runs actually split the campaign
// into several warm chains (at the default 32 every sample would land in
// one block and the cross-worker check would be vacuous).
constexpr int kBlock = 8;

mc::McOptions mcOptions(unsigned threads, std::uint64_t seed,
                        int samples = kSamples) {
  mc::McOptions opt;
  opt.samples = samples;
  opt.seed = seed;
  opt.threads = threads;
  opt.sampleBlock = kBlock;
  return opt;
}

/// READ SNM of the 6T butterfly (paper Fig. 9 inner loop), 15-point sweeps.
mc::McResult snmCampaign(unsigned threads, spice::SessionOptions options,
                         int samples = kSamples) {
  return mc::runCampaign<circuits::SramButterflyBench>(
      mcOptions(threads, 4100, samples), 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildSramButterfly(provider, 0.9,
                                            circuits::SramMode::Read,
                                            circuits::SramSizing{});
      },
      makeProvider,
      [](std::size_t, CampaignSession<circuits::SramButterflyBench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureSnm(session.fixture(), session.spice(), 15)
                .cellSnm();
      },
      options);
}

/// INV FO3 average delay via transient (paper Fig. 5 inner loop).
mc::McResult delayCampaign(unsigned threads, spice::SessionOptions options,
                           int samples = 10) {
  return mc::runCampaign<circuits::GateFo3Bench>(
      mcOptions(threads, 4200, samples), 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildInvFo3(provider, circuits::CellSizing{},
                                     circuits::StimulusSpec{});
      },
      makeProvider,
      [](std::size_t, CampaignSession<circuits::GateFo3Bench>& session,
         stats::Rng&, std::vector<double>& out) {
        out[0] =
            measure::measureGateDelays(session.fixture(), session.spice())
                .average();
      },
      options);
}

/// Far-corner IR drop of a 10x10 power-grid mesh via supply sweeps.
mc::McResult gridCampaign(unsigned threads, spice::SessionOptions options,
                          std::shared_ptr<const FaultInjector> injector =
                              nullptr,
                          int samples = kSamples) {
  options.faultInjector = std::move(injector);
  return mc::runCampaign<circuits::PowerGridBench>(
      mcOptions(threads, 4300, samples), 1,
      [](circuits::DeviceProvider& provider) {
        return circuits::buildPowerGridIrDrop(provider, 10, 10, 0.9);
      },
      makeProvider,
      [](std::size_t, CampaignSession<circuits::PowerGridBench>& session,
         stats::Rng&, std::vector<double>& out) {
        circuits::PowerGridBench& fx = session.fixture();
        std::vector<double> levels;
        for (int i = 0; i < 9; ++i) levels.push_back(fx.supply * i / 8.0);
        std::vector<double> farVolts;
        session.spice().dcSweepNode(fx.feedSource, levels, fx.farNode,
                                    farVolts);
        out[0] = fx.supply - farVolts.back();
      },
      options);
}

double yieldAbove(const std::vector<double>& xs, double floor) {
  const auto above = std::count_if(xs.begin(), xs.end(),
                                   [&](double v) { return v >= floor; });
  return static_cast<double>(above) / static_cast<double>(xs.size());
}

/// Estimator contract: statistical-tier mean/sigma/yield within a few MC
/// standard errors of the perSample run, plus the telemetry evidence that
/// the tier actually engaged.
void expectEstimatorContract(const mc::McResult& per, const mc::McResult& st,
                             const char* what) {
  ASSERT_EQ(per.failures, 0) << what;
  ASSERT_EQ(st.failures, 0) << what;
  const auto& xs = per.metrics[0];
  const auto& ys = st.metrics[0];
  ASSERT_EQ(xs.size(), ys.size()) << what;
  const auto p = stats::summarize(xs);
  const auto s = stats::summarize(ys);
  const double n = static_cast<double>(xs.size());
  ASSERT_GT(p.stddev, 0.0) << what;
  const double meanSe = p.stddev / std::sqrt(n);
  const double sigmaSe = p.stddev / std::sqrt(2.0 * n);
  EXPECT_LE(std::fabs(s.mean - p.mean), 3.0 * meanSe) << what;
  EXPECT_LE(std::fabs(s.stddev - p.stddev), 3.0 * sigmaSe) << what;

  // Yield at the perSample run's 1-sigma-below-mean floor: agreement
  // within 3 binomial standard errors (floored at one sample's worth).
  const double floor = p.mean - p.stddev;
  const double yp = yieldAbove(xs, floor);
  const double ys2 = yieldAbove(ys, floor);
  const double yieldSe =
      std::max(std::sqrt(std::max(yp * (1.0 - yp), 0.0) / n), 1.0 / n);
  EXPECT_LE(std::fabs(ys2 - yp), 3.0 * yieldSe) << what;

  // Tier engagement: the warm starts must have fired and paid.
  EXPECT_EQ(per.warmStartOpportunities, 0u) << what;
  EXPECT_GT(st.warmStartOpportunities, 0u) << what;
  EXPECT_GT(st.warmStartHitRate(), 0.5) << what;
  EXPECT_LT(st.newtonIterations, per.newtonIterations) << what;
}

TEST(StatisticalTier, SnmEstimatorsAgreeInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    spice::SessionOptions statistical = combo;
    statistical.tier = ToleranceTier::statistical;
    expectEstimatorContract(snmCampaign(1, combo),
                            snmCampaign(1, statistical), comboName(combo));
  }
}

TEST(StatisticalTier, DelayEstimatorsAgreeInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    spice::SessionOptions statistical = combo;
    statistical.tier = ToleranceTier::statistical;
    expectEstimatorContract(delayCampaign(1, combo),
                            delayCampaign(1, statistical), comboName(combo));
  }
}

TEST(StatisticalTier, GridEstimatorsAgreeInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    spice::SessionOptions statistical = combo;
    statistical.tier = ToleranceTier::statistical;
    expectEstimatorContract(gridCampaign(1, combo),
                            gridCampaign(1, statistical), comboName(combo));
  }
}

TEST(StatisticalTier, BitIdenticalAcrossWorkersInAllModeCombos) {
  for (const spice::SessionOptions& combo : kModeCombos) {
    spice::SessionOptions statistical = combo;
    statistical.tier = ToleranceTier::statistical;
    const mc::McResult t1 = snmCampaign(1, statistical);
    const mc::McResult t2 = snmCampaign(2, statistical);
    const mc::McResult t4 = snmCampaign(4, statistical);
    EXPECT_EQ(t1.failures, 0) << comboName(combo);
    expectBitIdentical(t1, t2, comboName(combo));
    expectBitIdentical(t1, t4, comboName(combo));
  }
}

TEST(StatisticalTier, TransientCampaignBitIdenticalAcrossWorkers) {
  spice::SessionOptions statistical;
  statistical.numerics = models::NumericsMode::fast;
  statistical.solver = linalg::SolverMode::reusePivot;
  statistical.tier = ToleranceTier::statistical;
  const mc::McResult t1 = delayCampaign(1, statistical, 16);
  const mc::McResult t4 = delayCampaign(4, statistical, 16);
  EXPECT_EQ(t1.failures, 0);
  expectBitIdentical(t1, t4, "inv_fo3 statistical");
}

TEST(StatisticalTier, GridCampaignBitIdenticalAcrossWorkers) {
  spice::SessionOptions statistical;
  statistical.numerics = models::NumericsMode::fast;
  statistical.solver = linalg::SolverMode::reusePivot;
  statistical.tier = ToleranceTier::statistical;
  const mc::McResult t1 = gridCampaign(1, statistical);
  const mc::McResult t4 = gridCampaign(4, statistical);
  EXPECT_EQ(t1.failures, 0);
  expectBitIdentical(t1, t4, "grid statistical");
}

TEST(StatisticalTier, InjectedFaultHealsThroughPerSampleRescueRungs) {
  // Transient singular row at sample 2 (attempt 0 only): under the
  // statistical tier the rescue ladder retries the sample on perSample
  // rungs and recovers it; the warm chain restarts cold afterwards, so
  // the whole injected campaign is still a pure function of the sample
  // index -- bit-identical across worker counts.  The persistent fault at
  // sample 5 exhausts the ladder and drops under its class.
  spice::SessionOptions statistical;
  statistical.tier = ToleranceTier::statistical;
  const auto healing = std::make_shared<FaultInjector>(std::vector<FaultSite>{
      {FaultKind::singularJacobian, 2, /*persistent=*/false}});
  const mc::McResult healed = gridCampaign(1, statistical, healing);
  EXPECT_EQ(healed.rescued, 1);
  EXPECT_EQ(healed.failures, 0);
  EXPECT_EQ(healed.sampleCount(), static_cast<std::size_t>(kSamples));
  expectBitIdentical(healed, gridCampaign(4, statistical, healing),
                     "healed statistical");

  // The healed sample went through perSample reference rungs, so its
  // metric must agree with the plain perSample campaign to the rescue
  // tolerance -- evidence the reference rung, not a relaxed one, healed it.
  const mc::McResult per = gridCampaign(1, spice::SessionOptions{});
  ASSERT_EQ(per.failures, 0);
  EXPECT_NEAR(healed.metrics[0][2], per.metrics[0][2],
              1e-8 * std::fabs(per.metrics[0][2]));

  const auto persistent =
      std::make_shared<FaultInjector>(std::vector<FaultSite>{
          {FaultKind::singularJacobian, 5, /*persistent=*/true}});
  const mc::McResult dropped = gridCampaign(1, statistical, persistent);
  EXPECT_EQ(dropped.failures, 1);
  EXPECT_EQ(dropped.failuresOf(FailureClass::singular), 1);
  ASSERT_TRUE(dropped.firstFailure.valid);
  EXPECT_EQ(dropped.firstFailure.sampleIndex, 5u);
}

TEST(StatisticalTier, SobolSamplerIsDeterministicAndStratified) {
  constexpr std::size_t kDims = 10;
  constexpr std::size_t kPoints = 16;
  const mc::SobolSampler a(kDims, kPoints, 99);
  const mc::SobolSampler b(kDims, kPoints, 99);
  for (std::size_t d = 0; d < kDims; ++d) {
    // A 2^m-point prefix of any Sobol dimension is a (0,m,1)-net: exactly
    // one point per dyadic interval of width 1/16.
    std::vector<int> bins(kPoints, 0);
    for (std::size_t i = 0; i < kPoints; ++i) {
      const double u = a.coordinate(i, d);
      EXPECT_EQ(u, b.coordinate(i, d)) << "dim " << d << " point " << i;
      ASSERT_GE(u, 0.0);
      ASSERT_LT(u, 1.0);
      ++bins[static_cast<std::size_t>(u * kPoints)];
    }
    for (std::size_t bin = 0; bin < kPoints; ++bin)
      EXPECT_EQ(bins[bin], 1) << "dim " << d << " bin " << bin;
  }
  // Different seeds rotate the standardized draws (Cranley-Patterson).
  const mc::SobolSampler c(kDims, kPoints, 100);
  EXPECT_NE(a.standardNormals(0), c.standardNormals(0));
}

TEST(StatisticalTier, SamplingPlanParsesAndValidates) {
  EXPECT_EQ(mc::parseScheme("sobol"), mc::SamplingPlan::Scheme::sobol);
  EXPECT_EQ(mc::parseScheme("lhs"), mc::SamplingPlan::Scheme::lhs);
  EXPECT_EQ(mc::parseScheme("halton"), mc::SamplingPlan::Scheme::halton);
  EXPECT_EQ(mc::parseScheme("iid"), mc::SamplingPlan::Scheme::iid);
  EXPECT_EQ(mc::parseScheme("rng"), mc::SamplingPlan::Scheme::providerRng);
  EXPECT_THROW((void)mc::parseScheme("bogus"), InvalidArgumentError);

  mc::SamplingPlan plan;
  plan.scheme = mc::SamplingPlan::Scheme::sobol;
  plan.dimension = 0;  // invalid: generator schemes need a dimension
  EXPECT_THROW(mc::makeSampleGenerator(plan, 8, 1), Error);
  EXPECT_EQ(mc::makeSampleGenerator({}, 8, 1), nullptr);

  plan.dimension = 6;
  plan.seed = 7;
  const auto gen = mc::makeSampleGenerator(plan, 8, 1);
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->dimension(), 6u);
  EXPECT_GE(gen->samples(), 8u);
}

}  // namespace
}  // namespace vsstat::sim
