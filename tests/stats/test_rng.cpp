#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stats/descriptive.hpp"

namespace vsstat::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.nextU64() == b.nextU64()) ++equal;
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 5e-3);
  EXPECT_NEAR(acc.variance(), 1.0 / 12.0, 5e-3);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(13);
  MomentAccumulator acc;
  for (int i = 0; i < 200000; ++i) acc.add(rng.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.01);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.01);
  EXPECT_NEAR(acc.skewness(), 0.0, 0.05);
  EXPECT_NEAR(acc.excessKurtosis(), 0.0, 0.1);
}

TEST(Rng, ScaledNormal) {
  Rng rng(17);
  MomentAccumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  const Rng parent(42);
  Rng c0 = parent.fork(0);
  Rng c1 = parent.fork(1);
  std::vector<double> a, b;
  for (int i = 0; i < 20000; ++i) {
    a.push_back(c0.normal());
    b.push_back(c1.normal());
  }
  EXPECT_LT(std::fabs(correlation(a, b)), 0.03);
}

TEST(Rng, ForkIsDeterministic) {
  const Rng parent(42);
  Rng a = parent.fork(17);
  Rng b = parent.fork(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every residue hit
}

}  // namespace
}  // namespace vsstat::stats
