#include "stats/kde.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

std::vector<double> gaussianSample(std::size_t n, double mu, double sigma,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(mu, sigma);
  return v;
}

TEST(Kde, DensityIntegratesToOne) {
  const auto samples = gaussianSample(2000, 0.0, 1.0, 3);
  const KdeCurve c = kde(samples, 400);
  double integral = 0.0;
  for (std::size_t i = 1; i < c.x.size(); ++i) {
    integral += 0.5 * (c.density[i] + c.density[i - 1]) * (c.x[i] - c.x[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeaksNearTrueMean) {
  const auto samples = gaussianSample(4000, 5.0, 0.5, 7);
  const KdeCurve c = kde(samples, 300);
  double bestX = 0.0, bestD = -1.0;
  for (std::size_t i = 0; i < c.x.size(); ++i) {
    if (c.density[i] > bestD) {
      bestD = c.density[i];
      bestX = c.x[i];
    }
  }
  EXPECT_NEAR(bestX, 5.0, 0.1);
  // Gaussian peak density = 1/(sigma sqrt(2 pi)).
  EXPECT_NEAR(bestD, 1.0 / (0.5 * std::sqrt(2.0 * M_PI)), 0.08);
}

TEST(Kde, BimodalSampleShowsTwoModes) {
  auto a = gaussianSample(3000, -3.0, 0.4, 11);
  const auto b = gaussianSample(3000, 3.0, 0.4, 13);
  a.insert(a.end(), b.begin(), b.end());
  const KdeCurve c = kde(a, 500);
  // Density at the midpoint valley must be far below either mode.
  const double valley = kdeAt(a, 0.0, c.bandwidth);
  const double modeA = kdeAt(a, -3.0, c.bandwidth);
  EXPECT_LT(valley, 0.2 * modeA);
}

TEST(Kde, SilvermanBandwidthScalesWithSpread) {
  const auto narrow = gaussianSample(1000, 0.0, 1.0, 17);
  const auto wide = gaussianSample(1000, 0.0, 10.0, 19);
  EXPECT_NEAR(silvermanBandwidth(wide) / silvermanBandwidth(narrow), 10.0, 1.0);
}

TEST(Kde, RejectsDegenerateInput) {
  EXPECT_THROW(kde({1.0}, 100), InvalidArgumentError);
  EXPECT_THROW((void)kdeAt({1.0}, 0.0, 0.0), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::stats
