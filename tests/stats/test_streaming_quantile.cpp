// P-squared streaming quantile estimator (stats::StreamingQuantile): the
// O(1)-memory quantiles behind the campaign server's progress frames.
#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

TEST(StreamingQuantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(StreamingQuantile q(0.0), InvalidArgumentError);
  EXPECT_THROW(StreamingQuantile q(1.0), InvalidArgumentError);
  EXPECT_THROW(StreamingQuantile q(-0.1), InvalidArgumentError);
  EXPECT_NO_THROW(StreamingQuantile q(0.5));
}

TEST(StreamingQuantile, ExactForFewerThanFiveSamples) {
  StreamingQuantile median(0.5);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  median.add(2.0);
  // Three samples: exact interpolated median.
  EXPECT_DOUBLE_EQ(median.value(), quantile({3.0, 1.0, 2.0}, 0.5));
}

TEST(StreamingQuantile, TracksGaussianQuantiles) {
  Rng rng(17);
  StreamingQuantile q05(0.05);
  StreamingQuantile q50(0.50);
  StreamingQuantile q95(0.95);
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.normal();
    q05.add(x);
    q50.add(x);
    q95.add(x);
    all.push_back(x);
  }
  // P-squared is approximate; on 20k Gaussian samples the markers settle
  // well within a few hundredths of the exact empirical quantiles.
  EXPECT_NEAR(q05.value(), quantile(all, 0.05), 0.05);
  EXPECT_NEAR(q50.value(), quantile(all, 0.50), 0.05);
  EXPECT_NEAR(q95.value(), quantile(all, 0.95), 0.05);
}

TEST(StreamingQuantile, MonotoneStreamStaysInRange) {
  StreamingQuantile q90(0.9);
  for (int i = 1; i <= 1000; ++i) q90.add(static_cast<double>(i));
  EXPECT_GT(q90.value(), 800.0);
  EXPECT_LT(q90.value(), 1000.0);
  EXPECT_EQ(q90.count(), 1000u);
}

TEST(StreamingQuantile, ConstantStreamIsExact) {
  StreamingQuantile q(0.25);
  for (int i = 0; i < 100; ++i) q.add(7.5);
  EXPECT_DOUBLE_EQ(q.value(), 7.5);
}

}  // namespace
}  // namespace vsstat::stats
