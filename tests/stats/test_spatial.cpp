// Spatially correlated Gaussian field: marginal variance, correlation
// recovery against the exponential model, determinism, and validation.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/spatial.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

TEST(Spatial, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Spatial, RejectsBadConstruction) {
  EXPECT_THROW(CorrelatedGaussianField({}, 1.0), InvalidArgumentError);
  EXPECT_THROW(CorrelatedGaussianField({{0, 0}}, 0.0), InvalidArgumentError);
  EXPECT_THROW(CorrelatedGaussianField({{0, 0}}, 1.0, 1.0),
               InvalidArgumentError);
  EXPECT_THROW(CorrelatedGaussianField({{0, 0}}, 1.0, -0.1),
               InvalidArgumentError);
}

TEST(Spatial, ModelCorrelationFollowsExponentialDecay) {
  const double lc = 100e-6;
  const CorrelatedGaussianField field(
      {{0, 0}, {100e-6, 0}, {300e-6, 0}}, lc);
  EXPECT_DOUBLE_EQ(field.correlation(0, 0), 1.0);
  EXPECT_NEAR(field.correlation(0, 1), std::exp(-1.0), 1e-6);
  EXPECT_NEAR(field.correlation(0, 2), std::exp(-3.0), 1e-6);
  EXPECT_DOUBLE_EQ(field.correlation(0, 1), field.correlation(1, 0));
  EXPECT_THROW((void)field.correlation(0, 5), InvalidArgumentError);
}

TEST(Spatial, SampleMatchesModelMoments) {
  // Three points: close pair (rho ~ 0.9) and a far one (rho ~ 0.05).
  const double lc = 200e-6;
  const CorrelatedGaussianField field(
      {{0, 0}, {0.1 * lc, 0}, {3.0 * lc, 0}}, lc);

  Rng rng(42);
  const int n = 40000;
  double var0 = 0.0, var1 = 0.0, var2 = 0.0, cov01 = 0.0, cov02 = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto f = field.sample(rng);
    var0 += f[0] * f[0];
    var1 += f[1] * f[1];
    var2 += f[2] * f[2];
    cov01 += f[0] * f[1];
    cov02 += f[0] * f[2];
  }
  var0 /= n;
  var1 /= n;
  var2 /= n;
  cov01 /= n;
  cov02 /= n;

  EXPECT_NEAR(var0, 1.0, 0.03);
  EXPECT_NEAR(var1, 1.0, 0.03);
  EXPECT_NEAR(var2, 1.0, 0.03);
  EXPECT_NEAR(cov01 / std::sqrt(var0 * var1), field.correlation(0, 1), 0.02);
  EXPECT_NEAR(cov02 / std::sqrt(var0 * var2), field.correlation(0, 2), 0.02);
}

TEST(Spatial, NuggetReducesOffDiagonalCorrelation) {
  const double lc = 100e-6;
  const CorrelatedGaussianField pure({{0, 0}, {10e-6, 0}}, lc, 1e-9);
  const CorrelatedGaussianField noisy({{0, 0}, {10e-6, 0}}, lc, 0.3);
  EXPECT_GT(pure.correlation(0, 1), noisy.correlation(0, 1));
  EXPECT_NEAR(noisy.correlation(0, 1), 0.7 * std::exp(-0.1), 1e-9);
}

TEST(Spatial, CoincidentPointsNeedNugget) {
  // Duplicate locations make the pure correlation matrix singular; the
  // nugget must rescue the factorization.
  const std::vector<DiePoint> pts{{0, 0}, {0, 0}};
  EXPECT_NO_THROW(CorrelatedGaussianField(pts, 1e-4, 0.01));
}

TEST(Spatial, DeterministicPerSeed) {
  const CorrelatedGaussianField field({{0, 0}, {50e-6, 50e-6}}, 100e-6);
  Rng a(7);
  Rng b(7);
  const auto fa = field.sample(a);
  const auto fb = field.sample(b);
  EXPECT_EQ(fa, fb);

  Rng c(8);
  EXPECT_NE(field.sample(c), fa);
}

}  // namespace
}  // namespace vsstat::stats
