#include "stats/ellipse.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

/// Correlated bivariate Gaussian sample.
void sampleBivariate(std::size_t n, double rho, std::vector<double>& x,
                     std::vector<double>& y, std::uint64_t seed) {
  Rng rng(seed);
  x.resize(n);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal();
    const double b = rng.normal();
    x[i] = 1.0 + 2.0 * a;
    y[i] = -1.0 + 0.5 * (rho * a + std::sqrt(1.0 - rho * rho) * b);
  }
}

TEST(Bivariate, RecoversMomentsOfKnownDistribution) {
  std::vector<double> x, y;
  sampleBivariate(50000, 0.6, x, y, 3);
  const Bivariate m = bivariateMoments(x, y);
  EXPECT_NEAR(m.meanX, 1.0, 0.05);
  EXPECT_NEAR(m.meanY, -1.0, 0.02);
  EXPECT_NEAR(std::sqrt(m.varX), 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(m.varY), 0.5, 0.01);
  EXPECT_NEAR(m.correlation(), 0.6, 0.02);
}

TEST(Ellipse, AxisAlignedWhenUncorrelated) {
  Bivariate m;
  m.varX = 4.0;
  m.varY = 1.0;
  m.covXY = 0.0;
  const EllipseSpec e = sigmaEllipse(m, 1.0);
  EXPECT_NEAR(e.semiMajor, 2.0, 1e-12);
  EXPECT_NEAR(e.semiMinor, 1.0, 1e-12);
  EXPECT_NEAR(e.angleRad, 0.0, 1e-9);
}

TEST(Ellipse, TiltFollowsCorrelation) {
  Bivariate m;
  m.varX = 1.0;
  m.varY = 1.0;
  m.covXY = 0.8;
  const EllipseSpec e = sigmaEllipse(m, 1.0);
  EXPECT_NEAR(e.angleRad, M_PI / 4.0, 1e-9);  // 45 degrees for equal variances
  EXPECT_GT(e.semiMajor, e.semiMinor);
}

TEST(Ellipse, ScalesLinearlyWithK) {
  Bivariate m;
  m.varX = 3.0;
  m.varY = 1.0;
  m.covXY = 0.5;
  const EllipseSpec e1 = sigmaEllipse(m, 1.0);
  const EllipseSpec e3 = sigmaEllipse(m, 3.0);
  EXPECT_NEAR(e3.semiMajor / e1.semiMajor, 3.0, 1e-12);
  EXPECT_NEAR(e3.semiMinor / e1.semiMinor, 3.0, 1e-12);
}

TEST(Ellipse, TraceIsClosedPolyline) {
  Bivariate m;
  m.varX = 1.0;
  m.varY = 1.0;
  const EllipsePolyline p = traceEllipse(sigmaEllipse(m, 2.0), 36);
  EXPECT_EQ(p.x.size(), 37u);
  EXPECT_NEAR(p.x.front(), p.x.back(), 1e-12);
  EXPECT_NEAR(p.y.front(), p.y.back(), 1e-12);
}

TEST(Ellipse, CoverageMatchesChiSquareLaw) {
  // For bivariate Gaussian data, P(inside k-sigma) = 1 - exp(-k^2/2).
  std::vector<double> x, y;
  sampleBivariate(40000, 0.5, x, y, 9);
  const Bivariate m = bivariateMoments(x, y);
  EXPECT_NEAR(fractionInside(m, 1.0, x, y), 1.0 - std::exp(-0.5), 0.01);
  EXPECT_NEAR(fractionInside(m, 2.0, x, y), 1.0 - std::exp(-2.0), 0.01);
  EXPECT_NEAR(fractionInside(m, 3.0, x, y), 1.0 - std::exp(-4.5), 0.005);
}

TEST(Ellipse, RejectsDegenerateInput) {
  EXPECT_THROW((void)bivariateMoments({1.0}, {1.0}), InvalidArgumentError);
  Bivariate degenerate;  // zero covariance matrix
  EXPECT_THROW((void)fractionInside(degenerate, 1.0, {1.0, 2.0}, {1.0, 2.0}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::stats
