#include "stats/normality.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

std::vector<double> gaussian(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(3.0, 2.0);
  return v;
}

std::vector<double> lognormal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = std::exp(rng.normal(0.0, 0.8));
  return v;
}

TEST(JarqueBera, AcceptsGaussian) {
  const JarqueBera jb = jarqueBera(gaussian(5000, 3));
  EXPECT_FALSE(jb.rejectAt5Percent) << "statistic = " << jb.statistic;
}

TEST(JarqueBera, RejectsLognormal) {
  const JarqueBera jb = jarqueBera(lognormal(5000, 5));
  EXPECT_TRUE(jb.rejectAt5Percent);
  EXPECT_GT(jb.statistic, 100.0);
}

TEST(JarqueBera, RejectsTinySample) {
  EXPECT_THROW((void)jarqueBera({1.0, 2.0, 3.0}), InvalidArgumentError);
}

TEST(KsNormal, AcceptsGaussian) {
  const KsNormal ks = ksAgainstNormal(gaussian(2000, 7));
  EXPECT_FALSE(ks.rejectAt5Percent)
      << "D = " << ks.statistic << " crit = " << ks.critical5Percent;
}

TEST(KsNormal, RejectsLognormal) {
  const KsNormal ks = ksAgainstNormal(lognormal(2000, 9));
  EXPECT_TRUE(ks.rejectAt5Percent);
}

TEST(KsNormal, RejectsUniformTails) {
  Rng rng(11);
  std::vector<double> v(3000);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  const KsNormal ks = ksAgainstNormal(v);
  EXPECT_TRUE(ks.rejectAt5Percent);
}

TEST(KsNormal, CriticalValueShrinksWithN) {
  const KsNormal small = ksAgainstNormal(gaussian(100, 13));
  const KsNormal large = ksAgainstNormal(gaussian(10000, 13));
  EXPECT_GT(small.critical5Percent, large.critical5Percent);
}

TEST(KsNormal, RejectsZeroVariance) {
  EXPECT_THROW((void)ksAgainstNormal(std::vector<double>(100, 1.0)),
               InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::stats
