#include "stats/qq.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(normalQuantile(0.0013499), -3.0, 1e-3);
}

TEST(NormalQuantile, InverseOfCdf) {
  for (double x = -3.5; x <= 3.5; x += 0.25) {
    EXPECT_NEAR(normalQuantile(normalCdf(x)), x, 1e-7) << "x = " << x;
  }
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW((void)normalQuantile(0.0), InvalidArgumentError);
  EXPECT_THROW((void)normalQuantile(1.0), InvalidArgumentError);
}

TEST(NormalCdf, Symmetry) {
  for (double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(normalCdf(x) + normalCdf(-x), 1.0, 1e-12);
  }
}

TEST(QqPlot, GaussianSampleIsLinear) {
  Rng rng(3);
  std::vector<double> s(4000);
  for (auto& v : s) v = rng.normal(2.0, 0.5);
  const QqData qq = qqAgainstNormal(s);
  EXPECT_GT(qq.linearity, 0.995);
  EXPECT_EQ(qq.sample.size(), qq.theoretical.size());
  // Sorted sample, symmetric theoretical quantiles.
  EXPECT_LT(qq.theoretical.front(), 0.0);
  EXPECT_GT(qq.theoretical.back(), 0.0);
}

TEST(QqPlot, HeavySkewReducesLinearity) {
  Rng rng(5);
  std::vector<double> s(4000);
  for (auto& v : s) v = std::exp(rng.normal(0.0, 1.0));  // lognormal
  const QqData qq = qqAgainstNormal(s);
  EXPECT_LT(qq.linearity, 0.9);
}

TEST(QqPlot, RejectsTinySample) {
  EXPECT_THROW(qqAgainstNormal({1.0, 2.0}), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::stats
