#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"

namespace vsstat::stats {
namespace {

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.totalCount(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 2.0, 8);
  for (int i = 0; i < 100; ++i) h.add(2.0 * i / 100.0);
  const auto d = h.density();
  double integral = 0.0;
  for (double v : d) integral += v * h.binWidth();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, BinCentersAreMidpoints) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.binCenter(0), 0.125);
  EXPECT_DOUBLE_EQ(h.binCenter(3), 0.875);
}

TEST(Histogram, FromSamplesCoversRange) {
  const std::vector<double> s{1.0, 2.0, 3.0, 4.0, 5.0};
  const Histogram h = Histogram::fromSamples(s, 5);
  EXPECT_EQ(h.totalCount(), 5u);
  // every sample landed somewhere
  std::size_t total = 0;
  for (std::size_t b = 0; b < h.binCount(); ++b) total += h.count(b);
  EXPECT_EQ(total, 5u);
}

TEST(Histogram, FromSamplesHandlesConstantInput) {
  const Histogram h = Histogram::fromSamples({2.0, 2.0, 2.0}, 4);
  EXPECT_EQ(h.totalCount(), 3u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgumentError);
  EXPECT_THROW(Histogram(1.0, 0.0, 4), InvalidArgumentError);
  EXPECT_THROW(Histogram::fromSamples({}, 4), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::stats
