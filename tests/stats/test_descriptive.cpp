#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::stats {
namespace {

TEST(Moments, KnownSmallSample) {
  MomentAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Moments, SkewnessSignDetectsAsymmetry) {
  MomentAccumulator rightSkewed;
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    const double n = rng.normal();
    rightSkewed.add(std::exp(n));  // lognormal: strong right skew
  }
  EXPECT_GT(rightSkewed.skewness(), 1.0);
  EXPECT_GT(rightSkewed.excessKurtosis(), 1.0);
}

TEST(Moments, GaussianHasNearZeroHigherMoments) {
  MomentAccumulator acc;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) acc.add(rng.normal(1.0, 3.0));
  EXPECT_NEAR(acc.skewness(), 0.0, 0.05);
  EXPECT_NEAR(acc.excessKurtosis(), 0.0, 0.1);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0 / 3.0), 2.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), InvalidArgumentError);
  EXPECT_THROW((void)quantile({1.0}, 1.5), InvalidArgumentError);
}

TEST(Summary, ComputesAllFields) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(Summary, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  const std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Rng rng(31);
  std::vector<double> x, y;
  for (int i = 0; i < 50000; ++i) {
    x.push_back(rng.normal());
    y.push_back(rng.normal());
  }
  EXPECT_NEAR(correlation(x, y), 0.0, 0.02);
}

TEST(Correlation, DegenerateSeriesGivesZero) {
  EXPECT_DOUBLE_EQ(correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(MeanStddev, HelpersMatchAccumulator) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_DOUBLE_EQ(stddev(v), 1.0);
}

}  // namespace
}  // namespace vsstat::stats
