// Accuracy-accounting harness for NumericsMode::fast on the VS device
// bank: the fast pipeline's outputs must track the reference (scalar,
// libm) chain within tight relative bounds, lane for lane, across the
// full bias plane -- including source/drain reversal, subthreshold,
// series-resistance Newton territory, and rebound lanes.
//
// Bound rationale: the simd_math kernels guarantee ~1e-12 (exp) to 1e-9
// (composed pow) relative accuracy, and the series-resistance Newton's
// quadratic convergence keeps iterate divergence at the same order; the
// measured worst case over this grid is ~2e-10 relative (dominated by the
// softplus log1p in weak inversion).  The asserted 1e-9 keeps headroom
// while still catching any real regression (a dropped term or a swapped
// argument shows up at 1e-2..1).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "models/vs_model.hpp"
#include "models/vs_params.hpp"

namespace vsstat::models {
namespace {

constexpr double kRelTol = 1e-9;
constexpr double kStep = 1e-3;

/// Relative deviation with a floor that keeps denormal-range quantities
/// from manufacturing huge ratios (currents in A, charges in C).
double relDiff(double fast, double ref, double floor) {
  return std::fabs(fast - ref) / (std::fabs(ref) + floor);
}

struct FastBankFixture {
  std::vector<std::unique_ptr<VsModel>> cards;
  std::vector<DeviceGeometry> geoms;
  std::unique_ptr<MosfetLoadBank> bank;

  explicit FastBankFixture(std::size_t lanes) {
    for (std::size_t i = 0; i < lanes; ++i) {
      VsParams p = (i % 2 == 0) ? defaultVsNmos() : defaultVsPmos();
      p.vt0 += 0.004 * static_cast<double>(i);
      p.mu *= 1.0 + 0.02 * static_cast<double>(i);
      cards.push_back(std::make_unique<VsModel>(p));
      geoms.push_back(geometryNm(150.0 + 50.0 * static_cast<double>(i), 40));
    }
    std::vector<BankLane> laneRefs;
    for (std::size_t i = 0; i < lanes; ++i)
      laneRefs.push_back(BankLane{cards[i].get(), &geoms[i]});
    bank = cards.front()->makeLoadBank(laneRefs, NumericsMode::fast);
  }
};

void expectWithinTolerance(const MosfetLoadEvaluation& fast,
                           const MosfetLoadEvaluation& ref,
                           const char* where) {
  EXPECT_LE(relDiff(fast.at.id, ref.at.id, 1e-15), kRelTol) << where;
  EXPECT_LE(relDiff(fast.at.qg, ref.at.qg, 1e-22), kRelTol) << where;
  EXPECT_LE(relDiff(fast.at.qd, ref.at.qd, 1e-22), kRelTol) << where;
  EXPECT_LE(relDiff(fast.at.qs, ref.at.qs, 1e-22), kRelTol) << where;
  EXPECT_LE(relDiff(fast.didVgs, ref.didVgs, 1e-12), kRelTol) << where;
  EXPECT_LE(relDiff(fast.didVds, ref.didVds, 1e-12), kRelTol) << where;
  EXPECT_LE(relDiff(fast.dqgVgs, ref.dqgVgs, 1e-20), kRelTol) << where;
  EXPECT_LE(relDiff(fast.dqgVds, ref.dqgVds, 1e-20), kRelTol) << where;
  EXPECT_LE(relDiff(fast.dqdVgs, ref.dqdVgs, 1e-20), kRelTol) << where;
  EXPECT_LE(relDiff(fast.dqdVds, ref.dqdVds, 1e-20), kRelTol) << where;
  EXPECT_LE(relDiff(fast.dqsVgs, ref.dqsVgs, 1e-20), kRelTol) << where;
  EXPECT_LE(relDiff(fast.dqsVds, ref.dqsVds, 1e-20), kRelTol) << where;
}

TEST(FastNumerics, TracksReferenceAcrossTheBiasPlane) {
  FastBankFixture fx(6);
  const std::size_t n = fx.cards.size();
  std::vector<double> vgs(n), vds(n);
  std::vector<MosfetLoadEvaluation> out(n);

  for (int s = 0; s < 600; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      // Dense pseudo-grid over [-0.3, 1.2] x [-0.9, 0.9]: subthreshold,
      // strong inversion, linear, saturation, and reversed polarity.
      vgs[i] = -0.3 + 1.5 * ((s + static_cast<int>(i) * 7) % 97) / 96.0;
      vds[i] = -0.9 + 1.8 * ((s + static_cast<int>(i) * 13) % 89) / 88.0;
    }
    fx.bank->evaluateLoadBatch(vgs, vds, kStep, out);
    for (std::size_t i = 0; i < n; ++i) {
      const MosfetLoadEvaluation ref =
          fx.cards[i]->evaluateLoad(fx.geoms[i], vgs[i], vds[i], kStep);
      expectWithinTolerance(out[i], ref, "bias-plane lane");
    }
  }
}

TEST(FastNumerics, DeepSubthresholdStaysRelativelyAccurate) {
  // Subthreshold currents underflow through exp(-30..-10); relative
  // accuracy must hold there, not just absolute smallness.
  FastBankFixture fx(4);
  const std::size_t n = fx.cards.size();
  std::vector<double> vgs(n), vds(n);
  std::vector<MosfetLoadEvaluation> out(n);
  for (double vg : {-0.3, -0.15, -0.05, 0.05}) {
    for (double vd : {0.05, 0.45, 0.9}) {
      for (std::size_t i = 0; i < n; ++i) {
        vgs[i] = vg + 0.01 * static_cast<double>(i);
        vds[i] = vd;
      }
      fx.bank->evaluateLoadBatch(vgs, vds, kStep, out);
      for (std::size_t i = 0; i < n; ++i) {
        const MosfetLoadEvaluation ref =
            fx.cards[i]->evaluateLoad(fx.geoms[i], vgs[i], vds[i], kStep);
        ASSERT_GT(std::fabs(ref.at.id), 0.0);
        EXPECT_LE(relDiff(out[i].at.id, ref.at.id, 0.0), 1e-9)
            << "vgs=" << vgs[i] << " vds=" << vds[i];
      }
    }
  }
}

TEST(FastNumerics, RebindLaneRefreshesFastState) {
  FastBankFixture fx(3);
  VsParams moved = defaultVsNmos();
  moved.vt0 += 0.05;
  moved.rs = 0.0;  // also exercises a no-series-R lane in the batch
  moved.rd = 0.0;
  const VsModel newCard(moved);
  const DeviceGeometry newGeom = geometryNm(420.0, 48);
  ASSERT_TRUE(fx.bank->rebindLane(1, newCard, newGeom));

  const std::size_t n = 3;
  std::vector<double> vgs = {0.6, 0.62, 0.64};
  std::vector<double> vds = {0.45, 0.44, 0.43};
  std::vector<MosfetLoadEvaluation> out(n);
  fx.bank->evaluateLoadBatch(vgs, vds, kStep, out);

  const MosfetLoadEvaluation ref0 =
      fx.cards[0]->evaluateLoad(fx.geoms[0], vgs[0], vds[0], kStep);
  const MosfetLoadEvaluation ref1 =
      newCard.evaluateLoad(newGeom, vgs[1], vds[1], kStep);
  const MosfetLoadEvaluation ref2 =
      fx.cards[2]->evaluateLoad(fx.geoms[2], vgs[2], vds[2], kStep);
  expectWithinTolerance(out[0], ref0, "lane 0 after foreign rebind");
  expectWithinTolerance(out[1], ref1, "rebound lane");
  expectWithinTolerance(out[2], ref2, "lane 2 after foreign rebind");
}

TEST(FastNumerics, DeterministicAcrossRepeatedEvaluation) {
  // Fast mode trades bit-identity WITH the reference path, never run-to-run
  // determinism: the same lanes and biases must give the same bits every
  // time (campaign results depend on it across workers).
  FastBankFixture fx(6);
  const std::size_t n = fx.cards.size();
  std::vector<double> vgs(n), vds(n);
  for (std::size_t i = 0; i < n; ++i) {
    vgs[i] = 0.1 + 0.12 * static_cast<double>(i);
    vds[i] = 0.9 - 0.13 * static_cast<double>(i);
  }
  std::vector<MosfetLoadEvaluation> a(n), b(n);
  fx.bank->evaluateLoadBatch(vgs, vds, kStep, a);
  for (int rep = 0; rep < 10; ++rep) {
    fx.bank->evaluateLoadBatch(vgs, vds, kStep, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(a[i].at.id, b[i].at.id);
      EXPECT_EQ(a[i].didVgs, b[i].didVgs);
      EXPECT_EQ(a[i].dqgVds, b[i].dqgVds);
    }
  }
}

TEST(FastNumerics, ReferenceModeDefaultIsBitIdenticalToScalar) {
  // Guard the other half of the contract: makeLoadBank without a mode (and
  // with an explicit reference mode) must still be bit-identical to the
  // scalar chain -- fast must never leak into the default path.
  FastBankFixture fx(2);
  std::vector<BankLane> lanes;
  for (std::size_t i = 0; i < 2; ++i)
    lanes.push_back(BankLane{fx.cards[i].get(), &fx.geoms[i]});
  // Call through the base type, like the circuit engine does (the mode
  // default lives on the base declaration only).
  const MosfetModel& asBase = *fx.cards.front();
  const auto def = asBase.makeLoadBank(lanes);
  const auto ref =
      fx.cards.front()->makeLoadBank(lanes, NumericsMode::reference);

  const std::vector<double> vgs = {0.55, 0.7};
  const std::vector<double> vds = {0.8, 0.12};
  std::vector<MosfetLoadEvaluation> a(2), b(2);
  def->evaluateLoadBatch(vgs, vds, kStep, a);
  ref->evaluateLoadBatch(vgs, vds, kStep, b);
  for (std::size_t i = 0; i < 2; ++i) {
    const MosfetLoadEvaluation s =
        fx.cards[i]->evaluateLoad(fx.geoms[i], vgs[i], vds[i], kStep);
    EXPECT_EQ(a[i].at.id, s.at.id);
    EXPECT_EQ(b[i].at.id, s.at.id);
    EXPECT_EQ(a[i].dqsVds, s.dqsVds);
    EXPECT_EQ(b[i].dqsVds, s.dqsVds);
  }
}

}  // namespace
}  // namespace vsstat::models
