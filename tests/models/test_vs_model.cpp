#include "models/vs_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/vs_params.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {
namespace {

class VsModelTest : public ::testing::Test {
 protected:
  VsModel nmos_{defaultVsNmos()};
  VsModel pmos_{defaultVsPmos()};
  DeviceGeometry geom_ = geometryNm(600, 40);
  static constexpr double kVdd = 0.9;
};

TEST_F(VsModelTest, ZeroVdsGivesZeroCurrent) {
  EXPECT_DOUBLE_EQ(nmos_.drainCurrent(geom_, kVdd, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(pmos_.drainCurrent(geom_, kVdd, 0.0), 0.0);
}

TEST_F(VsModelTest, CurrentIsPositiveInForwardOperation) {
  EXPECT_GT(nmos_.drainCurrent(geom_, kVdd, kVdd), 0.0);
  EXPECT_GT(nmos_.drainCurrent(geom_, 0.0, kVdd), 0.0);  // leakage still > 0
}

TEST_F(VsModelTest, SourceDrainSymmetry) {
  // Id(vgs, vds) == -Id(vgs - vds, -vds): exchanging the terminals.
  for (double vgs : {0.2, 0.5, 0.9}) {
    for (double vds : {0.1, 0.4, 0.8}) {
      const double fwd = nmos_.drainCurrent(geom_, vgs, vds);
      const double rev = nmos_.drainCurrent(geom_, vgs - vds, -vds);
      EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * std::fabs(fwd))
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_F(VsModelTest, MonotonicInVgs) {
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= kVdd + 1e-9; vgs += 0.02) {
    const double id = nmos_.drainCurrent(geom_, vgs, kVdd);
    EXPECT_GT(id, prev) << "vgs=" << vgs;
    prev = id;
  }
}

TEST_F(VsModelTest, MonotonicInVds) {
  double prev = -1.0;
  for (double vds = 0.0; vds <= kVdd + 1e-9; vds += 0.02) {
    const double id = nmos_.drainCurrent(geom_, kVdd, vds);
    EXPECT_GE(id, prev) << "vds=" << vds;
    prev = id;
  }
}

TEST_F(VsModelTest, ContinuityAcrossOperatingRegions) {
  // No jumps: scan a fine grid, first differences stay bounded.
  double prev = nmos_.drainCurrent(geom_, 0.0, kVdd);
  for (double vgs = 1e-3; vgs <= kVdd; vgs += 1e-3) {
    const double id = nmos_.drainCurrent(geom_, vgs, kVdd);
    EXPECT_LT(std::fabs(id - prev), 5e-6) << "jump at vgs=" << vgs;
    prev = id;
  }
}

TEST_F(VsModelTest, SubthresholdSlopeIsPhysical) {
  // SS >= 60 mV/dec at room temperature.
  const double i1 = nmos_.drainCurrent(geom_, 0.10, kVdd);
  const double i2 = nmos_.drainCurrent(geom_, 0.15, kVdd);
  const double ss = 0.05 / (std::log10(i2) - std::log10(i1)) * 1e3;  // mV/dec
  EXPECT_GT(ss, 60.0);
  EXPECT_LT(ss, 150.0);
}

TEST_F(VsModelTest, DiblRaisesLeakage) {
  const double offLow = nmos_.drainCurrent(geom_, 0.0, 0.1);
  const double offHigh = nmos_.drainCurrent(geom_, 0.0, kVdd);
  EXPECT_GT(offHigh, 2.0 * offLow);
}

TEST_F(VsModelTest, CurrentScalesWithWidth) {
  const double i1 = nmos_.drainCurrent(geometryNm(300, 40), kVdd, kVdd);
  const double i2 = nmos_.drainCurrent(geometryNm(600, 40), kVdd, kVdd);
  EXPECT_NEAR(i2 / i1, 2.0, 0.01);
}

TEST_F(VsModelTest, ShorterChannelLeaksMore) {
  const double off40 = nmos_.drainCurrent(geometryNm(600, 40), 0.0, kVdd);
  const double off60 = nmos_.drainCurrent(geometryNm(600, 60), 0.0, kVdd);
  EXPECT_GT(off40, off60);
}

TEST_F(VsModelTest, ChargesSumToZero) {
  for (double vgs : {0.0, 0.45, 0.9}) {
    for (double vds : {0.0, 0.45, 0.9}) {
      const MosfetEvaluation e = nmos_.evaluate(geom_, vgs, vds);
      EXPECT_NEAR(e.qg + e.qd + e.qs, 0.0, 1e-21)
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_F(VsModelTest, GateChargeIncreasesWithVgs) {
  double prev = nmos_.evaluate(geom_, 0.0, 0.0).qg;
  for (double vgs = 0.05; vgs <= kVdd; vgs += 0.05) {
    const double qg = nmos_.evaluate(geom_, vgs, 0.0).qg;
    EXPECT_GT(qg, prev);
    prev = qg;
  }
}

TEST_F(VsModelTest, GateCapacitanceApproachesCinvTimesArea) {
  // Strong inversion, vds = 0: intrinsic Cgg -> Cinv*W*L + overlaps.
  const VsParams p = defaultVsNmos();
  const DeviceGeometry wide = geometryNm(2000, 100);
  const double cgg = gateCapacitance(nmos_, wide, 1.2, 0.0);
  const double intrinsic = p.cinv * wide.width * wide.length;
  const double overlap = 2.0 * p.cof * wide.width;
  EXPECT_NEAR(cgg, intrinsic + overlap, 0.15 * (intrinsic + overlap));
}

TEST_F(VsModelTest, SwappedChargesUnderReversal) {
  const MosfetEvaluation fwd = nmos_.evaluate(geom_, 0.9, 0.5);
  const MosfetEvaluation rev = nmos_.evaluate(geom_, 0.4, -0.5);
  EXPECT_NEAR(fwd.qd, rev.qs, 1e-20);
  EXPECT_NEAR(fwd.qs, rev.qd, 1e-20);
  EXPECT_NEAR(fwd.id, -rev.id, 1e-12);
}

TEST_F(VsModelTest, SeriesResistanceReducesCurrent) {
  VsParams ideal = defaultVsNmos();
  ideal.rs = ideal.rd = 0.0;
  const VsModel noR(ideal);
  EXPECT_GT(noR.drainCurrent(geom_, kVdd, kVdd),
            nmos_.drainCurrent(geom_, kVdd, kVdd));
}

TEST_F(VsModelTest, CloneIsDeepAndEquivalent) {
  const auto clone = nmos_.clone();
  EXPECT_EQ(clone->deviceType(), DeviceType::Nmos);
  EXPECT_DOUBLE_EQ(clone->drainCurrent(geom_, 0.7, 0.7),
                   nmos_.drainCurrent(geom_, 0.7, 0.7));
}

TEST_F(VsModelTest, RejectsInvalidParams) {
  VsParams bad = defaultVsNmos();
  bad.cinv = -1.0;
  EXPECT_THROW(VsModel{bad}, InvalidArgumentError);
  bad = defaultVsNmos();
  bad.n0 = 0.9;
  EXPECT_THROW(VsModel{bad}, InvalidArgumentError);
}

TEST(VsParams, DiblGrowsForShortChannels) {
  const VsParams p = defaultVsNmos();
  EXPECT_GT(p.diblAt(units::nmToM(30)), p.delta0);
  EXPECT_LT(p.diblAt(units::nmToM(60)), p.delta0);
  EXPECT_NEAR(p.diblAt(p.lNom), p.delta0, 1e-15);
}

TEST(VsParams, BallisticEfficiencyInUnitInterval) {
  const VsParams p = defaultVsNmos();
  EXPECT_GT(p.ballisticEfficiency(), 0.0);
  EXPECT_LT(p.ballisticEfficiency(), 1.0);
  // Eq. (6) with lambda=9nm, l=5nm: B = 9/19.
  EXPECT_NEAR(p.ballisticEfficiency(), 9.0 / 19.0, 1e-12);
}

TEST(VsParams, VxoMobilitySensitivityMatchesEq5) {
  const VsParams p = defaultVsNmos();
  const double b = p.ballisticEfficiency();
  EXPECT_NEAR(p.vxoMobilitySensitivity(),
              0.5 + (1.0 - b) * (1.0 - 0.5 + 0.45), 1e-12);
}

TEST(VsParams, VxoRisesForShorterChannel) {
  const VsParams p = defaultVsNmos();
  EXPECT_GT(p.vxoAt(units::nmToM(35)), p.vxo);
  EXPECT_LT(p.vxoAt(units::nmToM(50)), p.vxo);
}

// Parameterized sweep: physics invariants hold across geometries.
class VsGeometrySweep : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(VsGeometrySweep, CurrentAndChargeInvariants) {
  const auto [w, l] = GetParam();
  const VsModel model(defaultVsNmos());
  const DeviceGeometry g = geometryNm(w, l);
  const double idsat = model.drainCurrent(g, 0.9, 0.9);
  const double ioff = model.drainCurrent(g, 0.0, 0.9);
  EXPECT_GT(idsat, 0.0);
  EXPECT_GT(ioff, 0.0);
  EXPECT_GT(idsat / ioff, 1e2);
  const MosfetEvaluation e = model.evaluate(g, 0.9, 0.9);
  EXPECT_NEAR(e.qg + e.qd + e.qs, 0.0, 1e-20);
  EXPECT_GT(e.qg, 0.0);
  EXPECT_LT(e.qd, 0.0);
  EXPECT_LT(e.qs, 0.0);
  // In saturation the source holds more channel charge than the drain.
  EXPECT_GT(std::fabs(e.qs), std::fabs(e.qd));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, VsGeometrySweep,
    ::testing::Values(std::pair{120.0, 40.0}, std::pair{300.0, 40.0},
                      std::pair{600.0, 40.0}, std::pair{1500.0, 40.0},
                      std::pair{300.0, 60.0}, std::pair{600.0, 100.0}));

}  // namespace
}  // namespace vsstat::models
