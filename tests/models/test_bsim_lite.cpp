#include "models/bsim_lite.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/bsim_params.hpp"
#include "util/error.hpp"

namespace vsstat::models {
namespace {

class BsimLiteTest : public ::testing::Test {
 protected:
  BsimLite nmos_{defaultBsimNmos()};
  BsimLite pmos_{defaultBsimPmos()};
  DeviceGeometry geom_ = geometryNm(600, 40);
  static constexpr double kVdd = 0.9;
};

TEST_F(BsimLiteTest, ZeroVdsGivesZeroCurrent) {
  EXPECT_DOUBLE_EQ(nmos_.drainCurrent(geom_, kVdd, 0.0), 0.0);
}

TEST_F(BsimLiteTest, SubthresholdSlopeIsPhysical) {
  const double i1 = nmos_.drainCurrent(geom_, 0.10, kVdd);
  const double i2 = nmos_.drainCurrent(geom_, 0.15, kVdd);
  const double ss = 0.05 / (std::log10(i2) - std::log10(i1)) * 1e3;
  EXPECT_GT(ss, 60.0);   // thermionic limit
  EXPECT_LT(ss, 120.0);  // reasonable bulk 40 nm
}

TEST_F(BsimLiteTest, MonotonicTransferAndOutput) {
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= kVdd; vgs += 0.03) {
    const double id = nmos_.drainCurrent(geom_, vgs, kVdd);
    EXPECT_GT(id, prev);
    prev = id;
  }
  prev = -1.0;
  for (double vds = 0.0; vds <= kVdd; vds += 0.03) {
    const double id = nmos_.drainCurrent(geom_, kVdd, vds);
    EXPECT_GE(id, prev);
    prev = id;
  }
}

TEST_F(BsimLiteTest, SaturationHasFiniteOutputConductance) {
  // CLM: current keeps rising slightly past Vdsat.
  const double i1 = nmos_.drainCurrent(geom_, kVdd, 0.6);
  const double i2 = nmos_.drainCurrent(geom_, kVdd, 0.9);
  EXPECT_GT(i2, i1);
  EXPECT_LT((i2 - i1) / i1, 0.15);  // but only by a few percent
}

TEST_F(BsimLiteTest, SourceDrainSymmetry) {
  for (double vgs : {0.3, 0.9}) {
    for (double vds : {0.2, 0.7}) {
      const double fwd = nmos_.drainCurrent(geom_, vgs, vds);
      const double rev = nmos_.drainCurrent(geom_, vgs - vds, -vds);
      EXPECT_NEAR(fwd, -rev, 1e-12 + 1e-9 * std::fabs(fwd));
    }
  }
}

TEST_F(BsimLiteTest, ChargesSumToZero) {
  for (double vgs : {0.0, 0.5, 0.9}) {
    for (double vds : {0.0, 0.5, 0.9}) {
      const MosfetEvaluation e = nmos_.evaluate(geom_, vgs, vds);
      EXPECT_NEAR(e.qg + e.qd + e.qs, 0.0, 1e-21);
    }
  }
}

TEST_F(BsimLiteTest, PmosCardIsWeakerThanNmos) {
  const double idn = nmos_.drainCurrent(geom_, kVdd, kVdd);
  const double idp = pmos_.drainCurrent(geom_, kVdd, kVdd);
  EXPECT_GT(idn, idp);
  EXPECT_GT(idp, 0.3 * idn);
}

TEST_F(BsimLiteTest, VelocitySaturationLimitsLongChannelScaling) {
  // Doubling L reduces Idsat by much less than 2x at 40 nm (vsat-limited),
  // unlike the long-channel 1/L law.
  const double i40 = nmos_.drainCurrent(geometryNm(600, 40), kVdd, kVdd);
  const double i80 = nmos_.drainCurrent(geometryNm(600, 80), kVdd, kVdd);
  EXPECT_GT(i40 / i80, 1.05);
  EXPECT_LT(i40 / i80, 1.8);
}

TEST_F(BsimLiteTest, CloneIsEquivalent) {
  const auto c = pmos_.clone();
  EXPECT_EQ(c->deviceType(), DeviceType::Pmos);
  EXPECT_DOUBLE_EQ(c->drainCurrent(geom_, 0.6, 0.6),
                   pmos_.drainCurrent(geom_, 0.6, 0.6));
}

TEST_F(BsimLiteTest, RejectsInvalidParams) {
  BsimParams bad = defaultBsimNmos();
  bad.vsat = 0.0;
  EXPECT_THROW(BsimLite{bad}, InvalidArgumentError);
}

TEST(BsimKitTargets, FortyNmClassElectricals) {
  // The golden kit must look like a 40-nm HP process: these window checks
  // pin the technology card against accidental regressions.
  const BsimLite n(defaultBsimNmos());
  const BsimLite p(defaultBsimPmos());
  const DeviceGeometry g = geometryNm(1000, 40);
  const double idsatN = n.drainCurrent(g, 0.9, 0.9) * 1e6;   // uA/um
  const double idsatP = p.drainCurrent(g, 0.9, 0.9) * 1e6;
  const double ioffN = n.drainCurrent(g, 0.0, 0.9) * 1e9;    // nA/um
  const double ioffP = p.drainCurrent(g, 0.0, 0.9) * 1e9;
  EXPECT_GT(idsatN, 400.0);
  EXPECT_LT(idsatN, 800.0);
  EXPECT_GT(idsatP, 250.0);
  EXPECT_LT(idsatP, 600.0);
  EXPECT_GT(ioffN, 1.0);
  EXPECT_LT(ioffN, 100.0);
  EXPECT_GT(ioffP, 0.5);
  EXPECT_LT(ioffP, 100.0);
}

}  // namespace
}  // namespace vsstat::models
