// Die-level variation composition and the Eq. (1) variance decomposition.
#include <gtest/gtest.h>

#include <cmath>

#include "models/die_variation.hpp"
#include "util/error.hpp"

namespace vsstat::models {
namespace {

const DeviceGeometry kGeom = geometryNm(600, 40);

PelgromAlphas localAlphas() {
  PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.71;
  a.aWeff = 3.71;
  a.aMu = 944.0;
  a.aCinv = 0.30;
  return a;
}

std::vector<stats::DiePoint> gridLocations(int nx, int ny, double pitch) {
  std::vector<stats::DiePoint> pts;
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < ny; ++j)
      pts.push_back({i * pitch, j * pitch});
  return pts;
}

TEST(DieSampler, RejectsBadConstruction) {
  EXPECT_THROW(DieSampler(DieVariationSpec{}, {}), InvalidArgumentError);

  DieVariationSpec bad;
  bad.spatial = SpatialComponent{};
  bad.spatial->correlationLength = 0.0;
  EXPECT_THROW(DieSampler(bad, gridLocations(2, 2, 1e-5)),
               InvalidArgumentError);
}

TEST(DieSampler, GlobalComponentIsSharedAcrossTheDie) {
  DieVariationSpec spec;   // local alphas all zero
  spec.global.sVt0 = 0.02;
  spec.global.sMu = 1e-4;
  DieSampler sampler(spec, gridLocations(2, 2, 1e-5));

  stats::Rng rng(11);
  sampler.newDie(rng);
  const VariationDelta d0 = sampler.deltaFor(0, kGeom, rng);
  const VariationDelta d3 = sampler.deltaFor(3, kGeom, rng);
  EXPECT_DOUBLE_EQ(d0.dVt0, d3.dVt0);
  EXPECT_DOUBLE_EQ(d0.dMu, d3.dMu);
  EXPECT_DOUBLE_EQ(d0.dVt0, sampler.globalDelta().dVt0);

  // A new die redraws the shared shift.
  sampler.newDie(rng);
  EXPECT_NE(sampler.deltaFor(0, kGeom, rng).dVt0, d0.dVt0);
}

TEST(DieSampler, VarianceAddsAcrossComponents) {
  // Var[dVt0] over many dies/devices must equal local^2 + global^2 +
  // spatial^2 (all components independent by construction).
  DieVariationSpec spec;
  spec.local = localAlphas();
  spec.global.sVt0 = 0.015;
  spec.spatial = SpatialComponent{};
  spec.spatial->sigmas.sVt0 = 0.010;
  spec.spatial->correlationLength = 50e-6;

  const auto locations = gridLocations(4, 4, 20e-6);
  DieSampler sampler(spec, locations);
  const double sLocal = sigmasFor(spec.local, kGeom).sVt0;
  const double expectedVar = sLocal * sLocal + 0.015 * 0.015 + 0.010 * 0.010;

  stats::Rng rng(123);
  double sum = 0.0, sumSq = 0.0;
  int n = 0;
  for (int die = 0; die < 3000; ++die) {
    sampler.newDie(rng);
    for (std::size_t loc = 0; loc < locations.size(); ++loc) {
      const double v = sampler.deltaFor(loc, kGeom, rng).dVt0;
      sum += v;
      sumSq += v * v;
      ++n;
    }
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  // Correlated draws shrink the effective sample count; allow 5%.
  EXPECT_NEAR(var / expectedVar, 1.0, 0.05);
}

TEST(DieSampler, NearbyDevicesCorrelateThroughTheField) {
  DieVariationSpec spec;  // spatial only
  spec.spatial = SpatialComponent{};
  spec.spatial->sigmas.sVt0 = 0.02;
  spec.spatial->correlationLength = 100e-6;

  // Locations: 0-1 close (10 um), 0-2 far (1 mm).
  DieSampler sampler(spec, {{0, 0}, {10e-6, 0}, {1000e-6, 0}});

  stats::Rng rng(77);
  double c01 = 0.0, c02 = 0.0, v0 = 0.0;
  const int dies = 8000;
  for (int d = 0; d < dies; ++d) {
    sampler.newDie(rng);
    const double a = sampler.deltaFor(0, kGeom, rng).dVt0;
    const double b = sampler.deltaFor(1, kGeom, rng).dVt0;
    const double c = sampler.deltaFor(2, kGeom, rng).dVt0;
    c01 += a * b;
    c02 += a * c;
    v0 += a * a;
  }
  EXPECT_GT(c01 / v0, 0.8);   // exp(-0.1) = 0.90
  EXPECT_LT(c02 / v0, 0.10);  // exp(-10) ~ 0
}

TEST(DieSampler, LocationIndexIsValidated) {
  DieVariationSpec spec;
  DieSampler sampler(spec, gridLocations(2, 1, 1e-5));
  stats::Rng rng(1);
  sampler.newDie(rng);
  EXPECT_THROW((void)sampler.deltaFor(2, kGeom, rng), InvalidArgumentError);
}

TEST(DecomposeVariance, RequiresTwoDiesWithTwoDevices) {
  EXPECT_THROW((void)decomposeVariance({}), InvalidArgumentError);
  EXPECT_THROW((void)decomposeVariance({{1.0, 2.0}}), InvalidArgumentError);
  EXPECT_THROW((void)decomposeVariance({{1.0, 2.0}, {1.0}}),
               InvalidArgumentError);
}

TEST(DecomposeVariance, RecoversPlantedComponents) {
  // Synthetic: die mean ~ N(0, sb), devices ~ N(mean, sw).
  constexpr double kSw = 0.5;
  constexpr double kSb = 0.3;
  stats::Rng rng(2024);
  std::vector<std::vector<double>> dies;
  for (int d = 0; d < 1500; ++d) {
    const double mean = rng.normal(0.0, kSb);
    std::vector<double> die;
    for (int i = 0; i < 50; ++i) die.push_back(rng.normal(mean, kSw));
    dies.push_back(std::move(die));
  }
  const VarianceDecomposition v = decomposeVariance(dies);
  // The inter-die term is a difference of two estimates, so its relative
  // noise is ~sqrt(2/dies) amplified by sw^2/sb^2; 1500 dies puts 3 sigma
  // near 12%.
  EXPECT_NEAR(v.withinDie, kSw * kSw, 0.02 * kSw * kSw);
  EXPECT_NEAR(v.interDie, kSb * kSb, 0.12 * kSb * kSb);
  EXPECT_NEAR(v.total, v.withinDie + v.interDie, 0.05 * v.total);
}

TEST(DecomposeVariance, InterDieClampsAtZeroWithoutGlobalComponent) {
  stats::Rng rng(9);
  std::vector<std::vector<double>> dies;
  for (int d = 0; d < 50; ++d) {
    std::vector<double> die;
    for (int i = 0; i < 20; ++i) die.push_back(rng.normal(0.0, 1.0));
    dies.push_back(std::move(die));
  }
  const VarianceDecomposition v = decomposeVariance(dies);
  // No planted inter-die component: the estimate is sampling noise near 0.
  EXPECT_LT(v.interDie, 0.05 * v.total);
  EXPECT_GE(v.interDie, 0.0);
}

TEST(DieVariationEq1, RoundTripThroughTheSampler) {
  // Full Eq. (1) workflow on dVt0: sample dies, decompose, compare with
  // the planted within/inter components.
  DieVariationSpec spec;
  spec.local = localAlphas();
  spec.global.sVt0 = 0.012;

  const auto locations = gridLocations(5, 4, 25e-6);
  DieSampler sampler(spec, locations);
  const double sLocal = sigmasFor(spec.local, kGeom).sVt0;

  stats::Rng rng(31415);
  std::vector<std::vector<double>> dies;
  for (int d = 0; d < 500; ++d) {
    sampler.newDie(rng);
    std::vector<double> die;
    for (std::size_t loc = 0; loc < locations.size(); ++loc)
      die.push_back(sampler.deltaFor(loc, kGeom, rng).dVt0);
    dies.push_back(std::move(die));
  }
  const VarianceDecomposition v = decomposeVariance(dies);
  EXPECT_NEAR(std::sqrt(v.withinDie), sLocal, 0.05 * sLocal);
  EXPECT_NEAR(std::sqrt(v.interDie), spec.global.sVt0,
              0.15 * spec.global.sVt0);
}

}  // namespace
}  // namespace vsstat::models
