// evaluateLoad contract tests: the analytic derivative chain of the VS
// model must agree with central finite differences of evaluate() across all
// operating regions (weak/strong inversion, linear/saturation, reversed
// vds), and the generic finite-difference fallback must match the element's
// historic forward-difference numerics exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "models/bsim_lite.hpp"
#include "models/device.hpp"
#include "models/vs_model.hpp"
#include "models/vs_params.hpp"

namespace vsstat::models {
namespace {

constexpr double kStep = 1e-3;

/// Central-difference reference for every derivative in MosfetLoadEvaluation.
MosfetLoadEvaluation centralReference(const MosfetModel& model,
                                      const DeviceGeometry& geom, double vgs,
                                      double vds) {
  const double h = 1e-5;
  const auto gp = model.evaluate(geom, vgs + h, vds);
  const auto gm = model.evaluate(geom, vgs - h, vds);
  const auto dp = model.evaluate(geom, vgs, vds + h);
  const auto dm = model.evaluate(geom, vgs, vds - h);
  MosfetLoadEvaluation ref;
  ref.at = model.evaluate(geom, vgs, vds);
  ref.didVgs = (gp.id - gm.id) / (2.0 * h);
  ref.didVds = (dp.id - dm.id) / (2.0 * h);
  ref.dqgVgs = (gp.qg - gm.qg) / (2.0 * h);
  ref.dqgVds = (dp.qg - dm.qg) / (2.0 * h);
  ref.dqdVgs = (gp.qd - gm.qd) / (2.0 * h);
  ref.dqdVds = (dp.qd - dm.qd) / (2.0 * h);
  ref.dqsVgs = (gp.qs - gm.qs) / (2.0 * h);
  ref.dqsVds = (dp.qs - dm.qs) / (2.0 * h);
  return ref;
}

void expectClose(double actual, double reference, double scale,
                 const char* what, double vgs, double vds) {
  // Derivatives feed a Newton iteration: a few percent of the dominant
  // scale is ample accuracy (finite differences themselves are no better).
  const double tol = 0.02 * scale + 1e-12;
  EXPECT_NEAR(actual, reference, tol)
      << what << " at vgs=" << vgs << " vds=" << vds;
}

TEST(VsLoadDerivatives, MatchCentralDifferencesEverywhere) {
  const VsModel nmos(defaultVsNmos());
  const DeviceGeometry geom = geometryNm(300, 40);

  for (double vgs : {-0.2, 0.0, 0.25, 0.45, 0.7, 0.9}) {
    for (double vds : {-0.9, -0.3, -0.05, 0.0, 0.05, 0.45, 0.9}) {
      const MosfetLoadEvaluation ev = nmos.evaluateLoad(geom, vgs, vds, kStep);
      const MosfetLoadEvaluation ref = centralReference(nmos, geom, vgs, vds);

      // Values must agree with evaluate() to solver tolerance.
      const double iScale = std::max(std::fabs(ref.at.id), 1e-9);
      EXPECT_NEAR(ev.at.id, ref.at.id, 1e-5 * iScale + 1e-15);
      EXPECT_NEAR(ev.at.qg, ref.at.qg, 1e-5 * std::fabs(ref.at.qg) + 1e-22);
      EXPECT_NEAR(ev.at.qd, ref.at.qd, 1e-5 * std::fabs(ref.at.qd) + 1e-22);
      EXPECT_NEAR(ev.at.qs, ref.at.qs, 1e-5 * std::fabs(ref.at.qs) + 1e-22);

      const double gScale =
          std::max({std::fabs(ref.didVgs), std::fabs(ref.didVds), 1e-9});
      expectClose(ev.didVgs, ref.didVgs, gScale, "didVgs", vgs, vds);
      expectClose(ev.didVds, ref.didVds, gScale, "didVds", vgs, vds);

      const double qScale =
          std::max({std::fabs(ref.dqgVgs), std::fabs(ref.dqgVds),
                    std::fabs(ref.dqdVgs), std::fabs(ref.dqdVds),
                    std::fabs(ref.dqsVgs), std::fabs(ref.dqsVds), 1e-18});
      expectClose(ev.dqgVgs, ref.dqgVgs, qScale, "dqgVgs", vgs, vds);
      expectClose(ev.dqgVds, ref.dqgVds, qScale, "dqgVds", vgs, vds);
      expectClose(ev.dqdVgs, ref.dqdVgs, qScale, "dqdVgs", vgs, vds);
      expectClose(ev.dqdVds, ref.dqdVds, qScale, "dqdVds", vgs, vds);
      expectClose(ev.dqsVgs, ref.dqsVgs, qScale, "dqsVgs", vgs, vds);
      expectClose(ev.dqsVds, ref.dqsVds, qScale, "dqsVds", vgs, vds);
    }
  }
}

TEST(VsLoadDerivatives, PmosMatchesToo) {
  const VsModel pmos(defaultVsPmos());
  const DeviceGeometry geom = geometryNm(600, 40);
  for (double vgs : {0.0, 0.45, 0.9}) {
    for (double vds : {0.05, 0.45, 0.9}) {
      const MosfetLoadEvaluation ev = pmos.evaluateLoad(geom, vgs, vds, kStep);
      const MosfetLoadEvaluation ref = centralReference(pmos, geom, vgs, vds);
      const double gScale =
          std::max({std::fabs(ref.didVgs), std::fabs(ref.didVds), 1e-9});
      expectClose(ev.didVgs, ref.didVgs, gScale, "didVgs", vgs, vds);
      expectClose(ev.didVds, ref.didVds, gScale, "didVds", vgs, vds);
    }
  }
}

TEST(GenericLoadDerivatives, FallbackMatchesForwardDifferences) {
  // BsimLite has no analytic override; the default must reproduce the
  // engine's historic forward-difference numerics bit-for-bit.
  const BsimLite model(defaultBsimNmos());
  const DeviceGeometry geom = geometryNm(300, 40);
  const double vgs = 0.7, vds = 0.4;

  const MosfetLoadEvaluation ev = model.evaluateLoad(geom, vgs, vds, kStep);
  const auto e0 = model.evaluate(geom, vgs, vds);
  const auto eg = model.evaluate(geom, vgs + kStep, vds);
  const auto ed = model.evaluate(geom, vgs, vds + kStep);
  EXPECT_DOUBLE_EQ(ev.at.id, e0.id);
  EXPECT_DOUBLE_EQ(ev.didVgs, (eg.id - e0.id) / kStep);
  EXPECT_DOUBLE_EQ(ev.didVds, (ed.id - e0.id) / kStep);
  EXPECT_DOUBLE_EQ(ev.dqgVgs, (eg.qg - e0.qg) / kStep);
  EXPECT_DOUBLE_EQ(ev.dqsVds, (ed.qs - e0.qs) / kStep);
}

}  // namespace
}  // namespace vsstat::models
