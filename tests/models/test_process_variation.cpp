#include "models/process_variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {
namespace {

PelgromAlphas paperAlphas() {
  // Paper Table II, NMOS column.
  PelgromAlphas a;
  a.aVt0 = 2.3;
  a.aLeff = 3.71;
  a.aWeff = 3.71;
  a.aMu = 944.0;
  a.aCinv = 0.29;
  return a;
}

TEST(PelgromScaling, MatchesPaperFormulasAtMediumDevice) {
  // W/L = 600/40 nm: sqrt(WL) = 154.92 nm.
  const auto s = sigmasFor(paperAlphas(), geometryNm(600, 40));
  const double sqrtWL = std::sqrt(600.0 * 40.0);
  EXPECT_NEAR(s.sVt0, 2.3 / sqrtWL, 1e-9);                       // ~14.8 mV
  EXPECT_NEAR(units::mToNm(s.sLeff), 3.71 * std::sqrt(40.0 / 600.0), 1e-9);
  EXPECT_NEAR(units::mToNm(s.sWeff), 3.71 * std::sqrt(600.0 / 40.0), 1e-9);
  EXPECT_NEAR(units::siToCm2PerVs(s.sMu), 944.0 / sqrtWL, 1e-9);
  EXPECT_NEAR(units::siToUFPerCm2(s.sCinv), 0.29 / sqrtWL, 1e-12);
}

TEST(PelgromScaling, VarianceInverselyProportionalToArea) {
  // Paper Eq. (7): sigma^2 proportional to 1/(WL) for VT0.
  const auto s1 = sigmasFor(paperAlphas(), geometryNm(600, 40));
  const auto s4 = sigmasFor(paperAlphas(), geometryNm(1200, 80));
  EXPECT_NEAR(s1.sVt0 / s4.sVt0, 2.0, 1e-12);
}

TEST(PelgromScaling, LengthWidthSigmaRatioIsLOverW) {
  // The paper's alpha2 == alpha3 tie implies sigma_L/sigma_W = L/W.
  const auto s = sigmasFor(paperAlphas(), geometryNm(600, 40));
  EXPECT_NEAR(s.sLeff / s.sWeff, 40.0 / 600.0, 1e-12);
}

TEST(PelgromScaling, RejectsNonPositiveGeometry) {
  EXPECT_THROW((void)sigmasFor(paperAlphas(), DeviceGeometry{0.0, 40e-9}),
               InvalidArgumentError);
}

TEST(SampleDelta, ZeroSigmasGiveZeroDeltas) {
  stats::Rng rng(1);
  const VariationDelta d = sampleDelta(ParameterSigmas{}, rng);
  EXPECT_DOUBLE_EQ(d.dVt0, 0.0);
  EXPECT_DOUBLE_EQ(d.dLeff, 0.0);
  EXPECT_DOUBLE_EQ(d.dMu, 0.0);
}

TEST(SampleDelta, EmpiricalSigmasMatchRequest) {
  const auto sig = sigmasFor(paperAlphas(), geometryNm(600, 40));
  stats::Rng rng(17);
  stats::MomentAccumulator vt, le;
  for (int i = 0; i < 40000; ++i) {
    const VariationDelta d = sampleDelta(sig, rng);
    vt.add(d.dVt0);
    le.add(d.dLeff);
  }
  EXPECT_NEAR(vt.stddev(), sig.sVt0, 0.02 * sig.sVt0);
  EXPECT_NEAR(le.stddev(), sig.sLeff, 0.02 * sig.sLeff);
  EXPECT_NEAR(vt.mean(), 0.0, 3e-4 * sig.sVt0 * 50);
}

TEST(ApplyGeometry, ShiftsLengthAndWidth) {
  VariationDelta d;
  d.dLeff = units::nmToM(1.0);
  d.dWeff = units::nmToM(-5.0);
  const DeviceGeometry g = applyGeometry(geometryNm(600, 40), d);
  EXPECT_NEAR(g.lengthNm(), 41.0, 1e-9);
  EXPECT_NEAR(g.widthNm(), 595.0, 1e-9);
}

TEST(ApplyGeometry, ClampsAbsurdShrinkage) {
  VariationDelta d;
  d.dLeff = units::nmToM(-100.0);  // would go negative
  const DeviceGeometry g = applyGeometry(geometryNm(600, 40), d);
  EXPECT_GT(g.length, 0.0);
}

TEST(ApplyToVs, ShiftsCardParameters) {
  const VsParams card = defaultVsNmos();
  VariationDelta d;
  d.dVt0 = 0.01;
  d.dMu = 0.1 * card.mu;
  d.dCinv = -0.01 * card.cinv;
  const VsParams varied = applyToVs(card, d);
  EXPECT_NEAR(varied.vt0, card.vt0 + 0.01, 1e-15);
  EXPECT_NEAR(varied.mu, 1.1 * card.mu, 1e-15);
  EXPECT_NEAR(varied.cinv, 0.99 * card.cinv, 1e-15);
}

TEST(ApplyToVs, VxoTracksMobilityPerEq5) {
  const VsParams card = defaultVsNmos();
  VariationDelta d;
  d.dMu = 0.02 * card.mu;  // +2% mobility
  const VsParams varied = applyToVs(card, d);
  const double expected =
      card.vxo * (1.0 + card.vxoMobilitySensitivity() * 0.02);
  EXPECT_NEAR(varied.vxo, expected, 1e-9 * card.vxo);
}

TEST(ApplyToVs, LeffVariationMovesVxoThroughDibl) {
  // Eq. (5) second term: a shorter instance has higher delta and higher
  // vxo; realized through vxoAt() at evaluation time.
  const VsParams card = defaultVsNmos();
  const double vShort = card.vxoAt(units::nmToM(38.0));
  const double vLong = card.vxoAt(units::nmToM(42.0));
  EXPECT_GT(vShort, card.vxo);
  EXPECT_LT(vLong, card.vxo);
  // Linearized slope ~ dVxoDDelta * d(delta)/dL.
  const double slope = (vShort - vLong) / units::nmToM(-4.0) / card.vxo;
  EXPECT_NEAR(slope, card.dVxoDDelta * card.diblSlopeAt(card.lNom), 0.05 *
              std::fabs(card.dVxoDDelta * card.diblSlopeAt(card.lNom)));
}

TEST(ApplyToBsim, ShiftsGoldenCardIncludingVsatCoupling) {
  const BsimParams card = defaultBsimNmos();
  VariationDelta d;
  d.dVt0 = -0.005;
  d.dMu = 0.05 * card.u0;
  const BsimParams varied = applyToBsim(card, d);
  EXPECT_NEAR(varied.vth0, card.vth0 - 0.005, 1e-15);
  EXPECT_NEAR(varied.u0, 1.05 * card.u0, 1e-15);
  EXPECT_NEAR(varied.vsat, card.vsat * (1.0 + card.muVsatCoupling * 0.05),
              1e-9 * card.vsat);
}

TEST(ToPelgromAlphas, FieldsMapOneToOne) {
  BsimMismatch m;
  m.aVth = 1.0;
  m.aLeff = 2.0;
  m.aWeff = 3.0;
  m.aMu = 4.0;
  m.aCox = 5.0;
  const PelgromAlphas a = toPelgromAlphas(m);
  EXPECT_DOUBLE_EQ(a.aVt0, 1.0);
  EXPECT_DOUBLE_EQ(a.aLeff, 2.0);
  EXPECT_DOUBLE_EQ(a.aWeff, 3.0);
  EXPECT_DOUBLE_EQ(a.aMu, 4.0);
  EXPECT_DOUBLE_EQ(a.aCinv, 5.0);
}

TEST(VariationEndToEnd, VsIdsatSigmaScalesWithPelgromLaw) {
  // sigma(Idsat)/Idsat should shrink ~1/sqrt(area) across geometries.
  const VsParams card = defaultVsNmos();
  const PelgromAlphas alphas = paperAlphas();
  const auto relSigma = [&](double w, double l) {
    const DeviceGeometry g = geometryNm(w, l);
    const auto sig = sigmasFor(alphas, g);
    stats::Rng rng(5);
    stats::MomentAccumulator acc;
    for (int i = 0; i < 3000; ++i) {
      const VariationDelta d = sampleDelta(sig, rng);
      const VsModel m(applyToVs(card, d));
      acc.add(m.drainCurrent(applyGeometry(g, d), 0.9, 0.9));
    }
    return acc.stddev() / acc.mean();
  };
  const double rSmall = relSigma(300, 40);
  const double rLarge = relSigma(1200, 40);
  EXPECT_GT(rSmall / rLarge, 1.6);  // ideal 2.0, tolerance for W-specific terms
}

}  // namespace
}  // namespace vsstat::models
