// Alpha-power-law baseline model: region behaviour, smoothness at the
// Vdsat seam, symmetry, charge bookkeeping, and the strong-inversion fit
// to the golden model.
#include <gtest/gtest.h>

#include <cmath>

#include "extract/fit.hpp"
#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/geometry.hpp"
#include "util/error.hpp"

namespace vsstat::models {
namespace {

const DeviceGeometry kGeom = geometryNm(300, 40);

TEST(AlphaPower, RejectsBadParameters) {
  AlphaPowerParams p;
  p.kSat = 0.0;
  EXPECT_THROW(AlphaPowerModel{p}, InvalidArgumentError);
  p = AlphaPowerParams{};
  p.alphaSat = 2.5;
  EXPECT_THROW(AlphaPowerModel{p}, InvalidArgumentError);
  p = AlphaPowerParams{};
  p.vSmooth = 0.0;
  EXPECT_THROW(AlphaPowerModel{p}, InvalidArgumentError);
}

TEST(AlphaPower, OffStateCurrentIsNegligible) {
  const AlphaPowerModel m(defaultAlphaNmos());
  // No subthreshold conduction by design: far below VT the smoothed
  // overdrive current collapses to numerical noise.
  const double ioff = m.drainCurrent(kGeom, 0.0, 0.9);
  const double ion = m.drainCurrent(kGeom, 0.9, 0.9);
  EXPECT_GT(ion, 1e-5);
  EXPECT_LT(ioff, 1e-12 * ion * 1e6);  // < 1e-6 of on-current
}

TEST(AlphaPower, SaturationCurrentFollowsPowerLaw) {
  AlphaPowerParams p = defaultAlphaNmos();
  p.delta0 = 0.0;  // isolate the pure power law
  const AlphaPowerModel m(p);
  // Deep saturation, far above VT so the softplus smoothing is inactive:
  // Id ratio between two overdrives must equal the overdrive ratio ^ alpha.
  const double vds = 0.9;
  const double id1 = m.drainCurrent(kGeom, p.vth0 + 0.30, vds);
  const double id2 = m.drainCurrent(kGeom, p.vth0 + 0.60, vds);
  EXPECT_NEAR(id2 / id1, std::pow(2.0, p.alphaSat), 0.01);
}

TEST(AlphaPower, MonotoneInGateAndDrainBias) {
  const AlphaPowerModel m(defaultAlphaNmos());
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 0.9001; vgs += 0.05) {
    const double id = m.drainCurrent(kGeom, vgs, 0.9);
    EXPECT_GE(id, prev) << "vgs = " << vgs;
    prev = id;
  }
  prev = -1.0;
  for (double vds = 0.0; vds <= 0.9001; vds += 0.05) {
    const double id = m.drainCurrent(kGeom, 0.9, vds);
    EXPECT_GE(id, prev - 1e-15) << "vds = " << vds;
    prev = id;
  }
}

TEST(AlphaPower, C1AcrossVdsatSeam) {
  // Numeric derivative dId/dVds must be continuous through Vds = Vdsat:
  // compare one-sided slopes straddling the seam.
  AlphaPowerParams p = defaultAlphaNmos();
  p.delta0 = 0.0;
  const AlphaPowerModel m(p);
  const double vgs = 0.8;
  const double vov = vgs - p.vth0;
  const double vdsat = p.kV * std::pow(vov, 0.5 * p.alphaSat);
  ASSERT_LT(vdsat, 0.9);

  constexpr double h = 1e-6;
  const double below = (m.drainCurrent(kGeom, vgs, vdsat - h) -
                        m.drainCurrent(kGeom, vgs, vdsat - 2.0 * h)) / h;
  const double above = (m.drainCurrent(kGeom, vgs, vdsat + 2.0 * h) -
                        m.drainCurrent(kGeom, vgs, vdsat + h)) / h;
  const double scale = m.drainCurrent(kGeom, vgs, 0.9) / 0.9;  // A/V scale
  EXPECT_NEAR(below, above, 1e-3 * scale + 1e-4 * std::fabs(below));
}

TEST(AlphaPower, SourceDrainSymmetry) {
  const AlphaPowerModel m(defaultAlphaNmos());
  // Id(vgs, vds) = -Id(vgs - vds, -vds): terminal-role reversal.
  const double fwd = m.drainCurrent(kGeom, 0.7, 0.4);
  const double rev = m.drainCurrent(kGeom, 0.7 - 0.4, -0.4);
  EXPECT_NEAR(fwd, -rev, 1e-15 + 1e-12 * std::fabs(fwd));
}

TEST(AlphaPower, ChargesSumToZero) {
  const AlphaPowerModel m(defaultAlphaNmos());
  for (double vgs : {0.0, 0.3, 0.6, 0.9}) {
    for (double vds : {0.0, 0.3, 0.9, -0.4}) {
      const MosfetEvaluation e = m.evaluate(kGeom, vgs, vds);
      EXPECT_NEAR(e.qg + e.qd + e.qs, 0.0, 1e-20)
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST(AlphaPower, GateChargeGrowsWithGateBias) {
  const AlphaPowerModel m(defaultAlphaNmos());
  double prev = -1e30;
  for (double vgs = 0.0; vgs <= 0.9001; vgs += 0.1) {
    const double qg = m.evaluate(kGeom, vgs, 0.45).qg;
    EXPECT_GT(qg, prev) << "vgs = " << vgs;
    prev = qg;
  }
}

TEST(AlphaPower, PmosCardDrivesCanonicalCurrent) {
  const AlphaPowerModel pmos(defaultAlphaPmos());
  // Canonical polarity: positive vgs/vds produce positive canonical id;
  // the circuit element applies the sign flips.
  EXPECT_GT(pmos.drainCurrent(kGeom, 0.9, 0.9), 0.0);
  EXPECT_LT(pmos.drainCurrent(kGeom, 0.9, 0.9),
            AlphaPowerModel(defaultAlphaNmos()).drainCurrent(kGeom, 0.9, 0.9));
}

TEST(AlphaPower, CloneIsIndependent) {
  AlphaPowerModel m(defaultAlphaNmos());
  const auto copy = m.clone();
  m.mutableParams().kSat *= 2.0;
  EXPECT_NE(m.drainCurrent(kGeom, 0.9, 0.9),
            copy->drainCurrent(kGeom, 0.9, 0.9));
}

TEST(AlphaPowerFit, TracksGoldenStrongInversion) {
  const BsimLite golden(defaultBsimNmos());
  const extract::AlphaFitResult fit =
      extract::fitAlphaPowerToGolden(defaultAlphaNmos(), golden, kGeom);
  EXPECT_TRUE(fit.converged);
  // The alpha-power law is a 6-parameter empirical curve: expect a usable
  // (not perfect) strong-inversion match.
  EXPECT_LT(fit.rmsRelIdVd, 0.15);
  EXPECT_LT(std::fabs(fit.relCggError), 0.10);

  // Idsat anchor: the fitted card lands near the golden on-current.
  const AlphaPowerModel fitted(fit.card);
  const double idFit = fitted.drainCurrent(kGeom, 0.9, 0.9);
  const double idGold = golden.drainCurrent(kGeom, 0.9, 0.9);
  EXPECT_NEAR(idFit / idGold, 1.0, 0.05);
}

TEST(AlphaPowerFit, PmosAlsoFits) {
  const BsimLite golden(defaultBsimPmos());
  const extract::AlphaFitResult fit =
      extract::fitAlphaPowerToGolden(defaultAlphaPmos(), golden, kGeom);
  EXPECT_TRUE(fit.converged);
  EXPECT_LT(fit.rmsRelIdVd, 0.15);
}

}  // namespace
}  // namespace vsstat::models
