// Cross-family MosfetModel contract: every compact model in the library
// (VS, BsimLite golden, alpha-power baseline) must satisfy the interface
// invariants the circuit engine relies on, at every geometry class the
// paper uses.  Parameterized over (model family x geometry).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"

namespace vsstat::models {
namespace {

struct ContractCase {
  std::string label;
  std::function<std::unique_ptr<MosfetModel>()> make;
  double widthNm;
};

class ModelContract : public ::testing::TestWithParam<ContractCase> {
 protected:
  [[nodiscard]] DeviceGeometry geom() const {
    return geometryNm(GetParam().widthNm, 40);
  }
  [[nodiscard]] std::unique_ptr<MosfetModel> model() const {
    return GetParam().make();
  }
};

TEST_P(ModelContract, ZeroVdsCarriesZeroCurrent) {
  const auto m = model();
  for (double vgs : {0.0, 0.3, 0.6, 0.9}) {
    EXPECT_NEAR(m->drainCurrent(geom(), vgs, 0.0), 0.0, 1e-12)
        << "vgs = " << vgs;
  }
}

TEST_P(ModelContract, CurrentNonNegativeForForwardBias) {
  const auto m = model();
  for (double vgs = 0.0; vgs <= 0.91; vgs += 0.1) {
    for (double vds = 0.0; vds <= 0.91; vds += 0.1) {
      EXPECT_GE(m->drainCurrent(geom(), vgs, vds), -1e-15)
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(ModelContract, MonotoneInGateBias) {
  const auto m = model();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 0.901; vgs += 0.02) {
    const double id = m->drainCurrent(geom(), vgs, 0.9);
    EXPECT_GE(id, prev - 1e-15) << "vgs = " << vgs;
    prev = id;
  }
}

TEST_P(ModelContract, MonotoneNonDecreasingInDrainBias) {
  const auto m = model();
  double prev = -1.0;
  for (double vds = 0.0; vds <= 0.901; vds += 0.02) {
    const double id = m->drainCurrent(geom(), 0.9, vds);
    EXPECT_GE(id, prev - 1e-15) << "vds = " << vds;
    prev = id;
  }
}

TEST_P(ModelContract, SourceDrainReversalAntisymmetry) {
  // Id(vgs, vds) == -Id(vgs - vds, -vds) exactly (the engine depends on
  // this to seat pass transistors in either orientation).
  const auto m = model();
  for (double vgs : {0.2, 0.5, 0.9}) {
    for (double vds : {0.1, 0.4, 0.8}) {
      const double fwd = m->drainCurrent(geom(), vgs, vds);
      const double rev = m->drainCurrent(geom(), vgs - vds, -vds);
      EXPECT_NEAR(fwd, -rev, 1e-15 + 1e-10 * std::fabs(fwd))
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(ModelContract, ChargesSumToZeroEverywhere) {
  const auto m = model();
  for (double vgs : {0.0, 0.45, 0.9}) {
    for (double vds : {-0.5, 0.0, 0.45, 0.9}) {
      const MosfetEvaluation e = m->evaluate(geom(), vgs, vds);
      const double scale =
          std::max({std::fabs(e.qg), std::fabs(e.qd), std::fabs(e.qs),
                    1e-20});
      EXPECT_NEAR((e.qg + e.qd + e.qs) / scale, 0.0, 1e-9)
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(ModelContract, C1SmoothnessOnTheNewtonStepScale) {
  // The engine differentiates the model with 1 mV steps; the model must
  // not jump on that scale anywhere in the bias box.
  const auto m = model();
  constexpr double h = 1e-3;
  for (double vgs = 0.0; vgs <= 0.9; vgs += 0.06) {
    for (double vds = 0.0; vds <= 0.9; vds += 0.06) {
      const double i0 = m->drainCurrent(geom(), vgs, vds);
      const double iG = m->drainCurrent(geom(), vgs + h, vds);
      const double iD = m->drainCurrent(geom(), vgs, vds + h);
      const double ion = m->drainCurrent(geom(), 0.9, 0.9);
      EXPECT_LT(std::fabs(iG - i0), 0.02 * ion + 0.5 * std::fabs(i0));
      EXPECT_LT(std::fabs(iD - i0), 0.02 * ion + 0.5 * std::fabs(i0));
    }
  }
}

TEST_P(ModelContract, CurrentScalesRoughlyWithWidth) {
  // Doubling W should roughly double Idsat (series resistance and
  // narrow-width terms allow modest deviation).
  const auto m = model();
  const DeviceGeometry g1 = geom();
  const DeviceGeometry g2 = geometryNm(2.0 * GetParam().widthNm, 40);
  const double i1 = m->drainCurrent(g1, 0.9, 0.9);
  const double i2 = m->drainCurrent(g2, 0.9, 0.9);
  EXPECT_NEAR(i2 / i1, 2.0, 0.25);
}

TEST_P(ModelContract, CloneBehavesIdentically) {
  const auto m = model();
  const auto c = m->clone();
  for (double vgs : {0.2, 0.6, 0.9}) {
    EXPECT_DOUBLE_EQ(m->drainCurrent(geom(), vgs, 0.9),
                     c->drainCurrent(geom(), vgs, 0.9));
  }
  EXPECT_EQ(m->deviceType(), c->deviceType());
}

std::vector<ContractCase> contractCases() {
  std::vector<ContractCase> cases;
  const std::vector<double> widths = {120.0, 300.0, 600.0, 1500.0};
  for (double w : widths) {
    const auto tag = [w](const char* family) {
      return std::string(family) + "_W" + std::to_string(static_cast<int>(w));
    };
    cases.push_back({tag("VsNmos"),
                     [] { return std::make_unique<VsModel>(defaultVsNmos()); },
                     w});
    cases.push_back({tag("VsPmos"),
                     [] { return std::make_unique<VsModel>(defaultVsPmos()); },
                     w});
    cases.push_back(
        {tag("BsimNmos"),
         [] { return std::make_unique<BsimLite>(defaultBsimNmos()); }, w});
    cases.push_back(
        {tag("BsimPmos"),
         [] { return std::make_unique<BsimLite>(defaultBsimPmos()); }, w});
    cases.push_back({tag("AlphaNmos"),
                     [] {
                       return std::make_unique<AlphaPowerModel>(
                           defaultAlphaNmos());
                     },
                     w});
    cases.push_back({tag("AlphaPmos"),
                     [] {
                       return std::make_unique<AlphaPowerModel>(
                           defaultAlphaPmos());
                     },
                     w});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamiliesAllGeometries, ModelContract,
                         ::testing::ValuesIn(contractCases()),
                         [](const ::testing::TestParamInfo<ContractCase>& i) {
                           return i.param.label;
                         });

}  // namespace
}  // namespace vsstat::models
