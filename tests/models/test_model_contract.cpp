// Cross-family MosfetModel contract: every compact model in the library
// (VS, BsimLite golden, alpha-power baseline) must satisfy the interface
// invariants the circuit engine relies on, at every geometry class the
// paper uses.  Parameterized over (model family x geometry).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"

namespace vsstat::models {
namespace {

struct ContractCase {
  std::string label;
  std::function<std::unique_ptr<MosfetModel>()> make;
  double widthNm;
};

class ModelContract : public ::testing::TestWithParam<ContractCase> {
 protected:
  [[nodiscard]] DeviceGeometry geom() const {
    return geometryNm(GetParam().widthNm, 40);
  }
  [[nodiscard]] std::unique_ptr<MosfetModel> model() const {
    return GetParam().make();
  }
};

TEST_P(ModelContract, ZeroVdsCarriesZeroCurrent) {
  const auto m = model();
  for (double vgs : {0.0, 0.3, 0.6, 0.9}) {
    EXPECT_NEAR(m->drainCurrent(geom(), vgs, 0.0), 0.0, 1e-12)
        << "vgs = " << vgs;
  }
}

TEST_P(ModelContract, CurrentNonNegativeForForwardBias) {
  const auto m = model();
  for (double vgs = 0.0; vgs <= 0.91; vgs += 0.1) {
    for (double vds = 0.0; vds <= 0.91; vds += 0.1) {
      EXPECT_GE(m->drainCurrent(geom(), vgs, vds), -1e-15)
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(ModelContract, MonotoneInGateBias) {
  const auto m = model();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 0.901; vgs += 0.02) {
    const double id = m->drainCurrent(geom(), vgs, 0.9);
    EXPECT_GE(id, prev - 1e-15) << "vgs = " << vgs;
    prev = id;
  }
}

TEST_P(ModelContract, MonotoneNonDecreasingInDrainBias) {
  const auto m = model();
  double prev = -1.0;
  for (double vds = 0.0; vds <= 0.901; vds += 0.02) {
    const double id = m->drainCurrent(geom(), 0.9, vds);
    EXPECT_GE(id, prev - 1e-15) << "vds = " << vds;
    prev = id;
  }
}

TEST_P(ModelContract, SourceDrainReversalAntisymmetry) {
  // Id(vgs, vds) == -Id(vgs - vds, -vds) exactly (the engine depends on
  // this to seat pass transistors in either orientation).
  const auto m = model();
  for (double vgs : {0.2, 0.5, 0.9}) {
    for (double vds : {0.1, 0.4, 0.8}) {
      const double fwd = m->drainCurrent(geom(), vgs, vds);
      const double rev = m->drainCurrent(geom(), vgs - vds, -vds);
      EXPECT_NEAR(fwd, -rev, 1e-15 + 1e-10 * std::fabs(fwd))
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(ModelContract, ChargesSumToZeroEverywhere) {
  const auto m = model();
  for (double vgs : {0.0, 0.45, 0.9}) {
    for (double vds : {-0.5, 0.0, 0.45, 0.9}) {
      const MosfetEvaluation e = m->evaluate(geom(), vgs, vds);
      const double scale =
          std::max({std::fabs(e.qg), std::fabs(e.qd), std::fabs(e.qs),
                    1e-20});
      EXPECT_NEAR((e.qg + e.qd + e.qs) / scale, 0.0, 1e-9)
          << "vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_P(ModelContract, C1SmoothnessOnTheNewtonStepScale) {
  // The engine differentiates the model with 1 mV steps; the model must
  // not jump on that scale anywhere in the bias box.
  const auto m = model();
  constexpr double h = 1e-3;
  for (double vgs = 0.0; vgs <= 0.9; vgs += 0.06) {
    for (double vds = 0.0; vds <= 0.9; vds += 0.06) {
      const double i0 = m->drainCurrent(geom(), vgs, vds);
      const double iG = m->drainCurrent(geom(), vgs + h, vds);
      const double iD = m->drainCurrent(geom(), vgs, vds + h);
      const double ion = m->drainCurrent(geom(), 0.9, 0.9);
      EXPECT_LT(std::fabs(iG - i0), 0.02 * ion + 0.5 * std::fabs(i0));
      EXPECT_LT(std::fabs(iD - i0), 0.02 * ion + 0.5 * std::fabs(i0));
    }
  }
}

TEST_P(ModelContract, CurrentScalesRoughlyWithWidth) {
  // Doubling W should roughly double Idsat (series resistance and
  // narrow-width terms allow modest deviation).
  const auto m = model();
  const DeviceGeometry g1 = geom();
  const DeviceGeometry g2 = geometryNm(2.0 * GetParam().widthNm, 40);
  const double i1 = m->drainCurrent(g1, 0.9, 0.9);
  const double i2 = m->drainCurrent(g2, 0.9, 0.9);
  EXPECT_NEAR(i2 / i1, 2.0, 0.25);
}

TEST_P(ModelContract, BatchLoadBitIdenticalToScalar) {
  // Device-bank contract: makeLoadBank's batched evaluation must equal the
  // scalar evaluateLoad lane-for-lane and BIT-for-bit, across the full
  // bias plane including source/drain reversal (negative vds), for every
  // model family and polarity.  Lanes deliberately differ in geometry so
  // per-lane cached derived state is exercised.
  const auto m = model();
  const std::vector<DeviceGeometry> geoms = {
      geom(), geometryNm(0.6 * GetParam().widthNm, 40),
      geometryNm(1.7 * GetParam().widthNm, 55)};
  std::vector<BankLane> lanes;
  for (const DeviceGeometry& g : geoms) lanes.push_back(BankLane{m.get(), &g});
  const auto bank = m->makeLoadBank(lanes);
  ASSERT_EQ(bank->laneCount(), geoms.size());

  constexpr double kStep = 1e-3;
  std::vector<double> vgs(geoms.size());
  std::vector<double> vds(geoms.size());
  std::vector<MosfetLoadEvaluation> out(geoms.size());
  for (double vg : {-0.2, 0.0, 0.3, 0.45, 0.9}) {
    for (double vd : {-0.9, -0.3, 0.0, 0.001, 0.4, 0.9}) {
      // Offset the lanes so the batch sees distinct biases per lane.
      for (std::size_t i = 0; i < geoms.size(); ++i) {
        vgs[i] = vg + 0.013 * static_cast<double>(i);
        vds[i] = vd - 0.017 * static_cast<double>(i);
      }
      bank->evaluateLoadBatch(vgs, vds, kStep, out);
      for (std::size_t i = 0; i < geoms.size(); ++i) {
        const MosfetLoadEvaluation ref =
            m->evaluateLoad(geoms[i], vgs[i], vds[i], kStep);
        EXPECT_EQ(out[i].at.id, ref.at.id) << "lane " << i;
        EXPECT_EQ(out[i].at.qg, ref.at.qg) << "lane " << i;
        EXPECT_EQ(out[i].at.qd, ref.at.qd) << "lane " << i;
        EXPECT_EQ(out[i].at.qs, ref.at.qs) << "lane " << i;
        EXPECT_EQ(out[i].didVgs, ref.didVgs) << "lane " << i;
        EXPECT_EQ(out[i].didVds, ref.didVds) << "lane " << i;
        EXPECT_EQ(out[i].dqgVgs, ref.dqgVgs) << "lane " << i;
        EXPECT_EQ(out[i].dqgVds, ref.dqgVds) << "lane " << i;
        EXPECT_EQ(out[i].dqdVgs, ref.dqdVgs) << "lane " << i;
        EXPECT_EQ(out[i].dqdVds, ref.dqdVds) << "lane " << i;
        EXPECT_EQ(out[i].dqsVgs, ref.dqsVgs) << "lane " << i;
        EXPECT_EQ(out[i].dqsVds, ref.dqsVds) << "lane " << i;
      }
    }
  }
}

TEST_P(ModelContract, BankRebindLaneTracksNewCard) {
  // After rebindLane the lane must evaluate the NEW card/geometry (cached
  // derived state refreshed), still bit-identical to scalar.
  const auto m = model();
  const DeviceGeometry g0 = geom();
  const DeviceGeometry g1 = geometryNm(1.4 * GetParam().widthNm, 48);
  std::vector<BankLane> lanes = {BankLane{m.get(), &g0}};
  const auto bank = m->makeLoadBank(lanes);

  ASSERT_TRUE(bank->rebindLane(0, *m, g1));
  constexpr double kStep = 1e-3;
  const std::vector<double> vgs = {0.6};
  const std::vector<double> vds = {0.45};
  std::vector<MosfetLoadEvaluation> out(1);
  bank->evaluateLoadBatch(vgs, vds, kStep, out);
  const MosfetLoadEvaluation ref = m->evaluateLoad(g1, 0.6, 0.45, kStep);
  EXPECT_EQ(out[0].at.id, ref.at.id);
  EXPECT_EQ(out[0].didVgs, ref.didVgs);
  EXPECT_EQ(out[0].dqgVds, ref.dqgVds);
}

TEST_P(ModelContract, CloneBehavesIdentically) {
  const auto m = model();
  const auto c = m->clone();
  for (double vgs : {0.2, 0.6, 0.9}) {
    EXPECT_DOUBLE_EQ(m->drainCurrent(geom(), vgs, 0.9),
                     c->drainCurrent(geom(), vgs, 0.9));
  }
  EXPECT_EQ(m->deviceType(), c->deviceType());
}

std::vector<ContractCase> contractCases() {
  std::vector<ContractCase> cases;
  const std::vector<double> widths = {120.0, 300.0, 600.0, 1500.0};
  for (double w : widths) {
    const auto tag = [w](const char* family) {
      return std::string(family) + "_W" + std::to_string(static_cast<int>(w));
    };
    cases.push_back({tag("VsNmos"),
                     [] { return std::make_unique<VsModel>(defaultVsNmos()); },
                     w});
    cases.push_back({tag("VsPmos"),
                     [] { return std::make_unique<VsModel>(defaultVsPmos()); },
                     w});
    cases.push_back(
        {tag("BsimNmos"),
         [] { return std::make_unique<BsimLite>(defaultBsimNmos()); }, w});
    cases.push_back(
        {tag("BsimPmos"),
         [] { return std::make_unique<BsimLite>(defaultBsimPmos()); }, w});
    cases.push_back({tag("AlphaNmos"),
                     [] {
                       return std::make_unique<AlphaPowerModel>(
                           defaultAlphaNmos());
                     },
                     w});
    cases.push_back({tag("AlphaPmos"),
                     [] {
                       return std::make_unique<AlphaPowerModel>(
                           defaultAlphaPmos());
                     },
                     w});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamiliesAllGeometries, ModelContract,
                         ::testing::ValuesIn(contractCases()),
                         [](const ::testing::TestParamInfo<ContractCase>& i) {
                           return i.param.label;
                         });

}  // namespace
}  // namespace vsstat::models
