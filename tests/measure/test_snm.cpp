#include "measure/snm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::measure {
namespace {

using circuits::NominalProvider;
using circuits::SramButterflyBench;
using circuits::SramMode;
using circuits::SramSizing;
using models::VsModel;

NominalProvider vsProvider() {
  return NominalProvider(VsModel(models::defaultVsNmos()),
                         VsModel(models::defaultVsPmos()));
}

/// Ideal analytic "inverter": a step VTC, SNM of the symmetric butterfly
/// equals half the step width... exact value computed by construction.
VtcCurve stepVtc(double vdd, double threshold, int points = 201) {
  VtcCurve c;
  for (int i = 0; i < points; ++i) {
    const double x = vdd * i / (points - 1);
    c.x.push_back(x);
    // steep but continuous transition
    const double y = vdd / (1.0 + std::exp((x - threshold) / 0.002));
    c.y.push_back(y);
  }
  return c;
}

TEST(PolylineIntersection, DetectsCrossingAndMiss) {
  VtcCurve a{{0.0, 1.0}, {0.0, 1.0}};
  VtcCurve b{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_TRUE(polylinesIntersect(a, b));
  VtcCurve c{{0.0, 1.0}, {2.0, 3.0}};
  EXPECT_FALSE(polylinesIntersect(a, c));
}

TEST(Snm, IdealSymmetricButterflyGivesKnownSquare) {
  // Two ideal step inverters at threshold vdd/2: lobes are squares of side
  // ~vdd/2, so the embedded square side approaches vdd/2.
  const double vdd = 1.0;
  ButterflyCurves curves;
  curves.curve1 = stepVtc(vdd, 0.5);
  const VtcCurve v2 = stepVtc(vdd, 0.5);
  curves.curve2.x = v2.y;  // mirrored
  curves.curve2.y = v2.x;
  const SnmResult r = staticNoiseMargin(curves, vdd);
  EXPECT_NEAR(r.lobe1, 0.5, 0.03);
  EXPECT_NEAR(r.lobe2, 0.5, 0.03);
  EXPECT_NEAR(r.cellSnm(), std::min(r.lobe1, r.lobe2), 1e-15);
}

TEST(Snm, AsymmetricThresholdsShrinkOneLobe) {
  const double vdd = 1.0;
  ButterflyCurves curves;
  curves.curve1 = stepVtc(vdd, 0.35);  // early switch
  const VtcCurve v2 = stepVtc(vdd, 0.50);
  curves.curve2.x = v2.y;
  curves.curve2.y = v2.x;
  const SnmResult r = staticNoiseMargin(curves, vdd);
  EXPECT_GT(std::fabs(r.lobe1 - r.lobe2), 0.1);
}

TEST(Snm, MonostableCurvesReportZero) {
  // Two identical non-inverting lines never form a butterfly.
  ButterflyCurves curves;
  curves.curve1 = VtcCurve{{0.0, 1.0}, {0.9, 0.95}};
  curves.curve2 = VtcCurve{{0.0, 1.0}, {0.0, 0.05}};
  const SnmResult r = staticNoiseMargin(curves, 1.0);
  EXPECT_DOUBLE_EQ(r.cellSnm(), 0.0);
}

TEST(Snm, SramHoldButterflyInExpectedRange) {
  auto p = vsProvider();
  SramButterflyBench b =
      circuits::buildSramButterfly(p, 0.9, SramMode::Hold, SramSizing{});
  const SnmResult r = measureSnm(b);
  // Paper Fig. 9(e): HOLD SNM ~ 0.30 V at 0.9 V supply.
  EXPECT_GT(r.cellSnm(), 0.15);
  EXPECT_LT(r.cellSnm(), 0.45);
}

TEST(Snm, ReadSnmSmallerThanHoldSnm) {
  auto p1 = vsProvider();
  auto hold = circuits::buildSramButterfly(p1, 0.9, SramMode::Hold, SramSizing{});
  auto p2 = vsProvider();
  auto read = circuits::buildSramButterfly(p2, 0.9, SramMode::Read, SramSizing{});
  const double snmHold = measureSnm(hold).cellSnm();
  const double snmRead = measureSnm(read).cellSnm();
  // Paper Fig. 9(b)/(e): READ ~0.1 V << HOLD ~0.3 V.
  EXPECT_LT(snmRead, 0.7 * snmHold);
  EXPECT_GT(snmRead, 0.0);
}

TEST(Snm, ButterflyCurvesSpanSupply) {
  auto p = vsProvider();
  SramButterflyBench b =
      circuits::buildSramButterfly(p, 0.9, SramMode::Hold, SramSizing{});
  const ButterflyCurves curves = measureButterfly(b, 41);
  EXPECT_EQ(curves.curve1.x.size(), 41u);
  EXPECT_NEAR(curves.curve1.x.front(), 0.0, 1e-12);
  EXPECT_NEAR(curves.curve1.x.back(), 0.9, 1e-12);
  // Curve 2 is mirrored: y spans the sweep.
  EXPECT_NEAR(curves.curve2.y.front(), 0.0, 1e-12);
  EXPECT_NEAR(curves.curve2.y.back(), 0.9, 1e-12);
}

TEST(Snm, RejectsDegenerateCurves) {
  ButterflyCurves curves;
  curves.curve1 = VtcCurve{{0.0}, {1.0}};
  curves.curve2 = VtcCurve{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW((void)staticNoiseMargin(curves, 1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace vsstat::measure
