#include "measure/device_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"

namespace vsstat::measure {
namespace {

using models::geometryNm;
using models::VsModel;

TEST(DeviceMetrics, IdsatAtFullBias) {
  const VsModel m(models::defaultVsNmos());
  const auto g = geometryNm(600, 40);
  EXPECT_DOUBLE_EQ(idsat(m, g, 0.9), m.drainCurrent(g, 0.9, 0.9));
  EXPECT_GT(idsat(m, g, 0.9), idsat(m, g, 0.7));
}

TEST(DeviceMetrics, IoffAtZeroGate) {
  const VsModel m(models::defaultVsNmos());
  const auto g = geometryNm(600, 40);
  EXPECT_DOUBLE_EQ(ioff(m, g, 0.9), m.drainCurrent(g, 0.0, 0.9));
  EXPECT_LT(ioff(m, g, 0.9), 1e-3 * idsat(m, g, 0.9));
}

TEST(DeviceMetrics, Log10IoffConsistent) {
  const VsModel m(models::defaultVsNmos());
  const auto g = geometryNm(600, 40);
  EXPECT_NEAR(std::pow(10.0, log10Ioff(m, g, 0.9)), ioff(m, g, 0.9),
              1e-12 * ioff(m, g, 0.9));
}

TEST(DeviceMetrics, CggPositiveAndAreaScaling) {
  const VsModel m(models::defaultVsNmos());
  const double c1 = cggAtVdd(m, geometryNm(300, 40), 0.9);
  const double c2 = cggAtVdd(m, geometryNm(600, 40), 0.9);
  EXPECT_GT(c1, 0.0);
  EXPECT_NEAR(c2 / c1, 2.0, 0.05);  // ~linear in width
}

TEST(DeviceMetrics, MeasureTargetsBundlesAllThree) {
  const models::BsimLite m(models::defaultBsimNmos());
  const auto g = geometryNm(600, 40);
  const ElectricalTargets t = measureTargets(m, g, 0.9);
  EXPECT_DOUBLE_EQ(t.idsat, idsat(m, g, 0.9));
  EXPECT_DOUBLE_EQ(t.log10Ioff, log10Ioff(m, g, 0.9));
  EXPECT_DOUBLE_EQ(t.cgg, cggAtVdd(m, g, 0.9));
}

TEST(DeviceMetrics, TargetsTrackVddScaling) {
  // Lower Vdd: less drive, less DIBL-driven leakage.
  const VsModel m(models::defaultVsNmos());
  const auto g = geometryNm(600, 40);
  EXPECT_GT(idsat(m, g, 0.9), idsat(m, g, 0.55));
  EXPECT_GT(log10Ioff(m, g, 0.9), log10Ioff(m, g, 0.55));
}

}  // namespace
}  // namespace vsstat::measure
