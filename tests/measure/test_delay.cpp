#include "measure/delay.hpp"

#include <gtest/gtest.h>

#include "models/vs_model.hpp"
#include "spice/elements.hpp"

namespace vsstat::measure {
namespace {

using circuits::CellSizing;
using circuits::GateFo3Bench;
using circuits::NominalProvider;
using circuits::StimulusSpec;
using models::VsModel;

NominalProvider vsProvider() {
  return NominalProvider(VsModel(models::defaultVsNmos()),
                         VsModel(models::defaultVsPmos()));
}

TEST(GateDelay, InverterFo3InPicosecondRange) {
  auto p = vsProvider();
  GateFo3Bench b = circuits::buildInvFo3(p, CellSizing{}, StimulusSpec{});
  const GateDelays d = measureGateDelays(b);
  // 40-nm class FO3 inverter: single-digit picoseconds.
  EXPECT_GT(d.tphl, 0.5e-12);
  EXPECT_LT(d.tphl, 30e-12);
  EXPECT_GT(d.tplh, 0.5e-12);
  EXPECT_LT(d.tplh, 30e-12);
  EXPECT_NEAR(d.average(), 0.5 * (d.tphl + d.tplh), 1e-18);
}

TEST(GateDelay, BiggerCellIsNotSlower) {
  // Same fanout structure scaled 4x: self-loaded delay stays similar, but
  // must not blow up; sanity window comparison.
  auto p1 = vsProvider();
  GateFo3Bench small =
      circuits::buildInvFo3(p1, CellSizing{300.0, 150.0, 40.0}, StimulusSpec{});
  auto p2 = vsProvider();
  GateFo3Bench big = circuits::buildInvFo3(
      p2, CellSizing{1200.0, 600.0, 40.0}, StimulusSpec{});
  const double dSmall = measureGateDelays(small).average();
  const double dBig = measureGateDelays(big).average();
  EXPECT_LT(std::abs(dBig - dSmall) / dSmall, 0.6);
}

TEST(GateDelay, LowerVddIsSlower) {
  auto p1 = vsProvider();
  StimulusSpec nom;
  GateFo3Bench fast = circuits::buildNand2Fo3(p1, CellSizing{}, nom);
  auto p2 = vsProvider();
  StimulusSpec low;
  low.vdd = 0.55;
  GateFo3Bench slow = circuits::buildNand2Fo3(p2, CellSizing{}, low);
  // The quasi-ballistic VS model is less Vdd-sensitive than drift-diffusion
  // devices (vxo does not degrade), so the slowdown factor is modest for
  // the seed card; the paper's Fig. 7 ratios come from the *fitted* card.
  EXPECT_GT(measureGateDelays(slow).average(),
            1.25 * measureGateDelays(fast).average());
}

TEST(Leakage, PositiveAndSmallVersusDrive) {
  auto p = vsProvider();
  GateFo3Bench b = circuits::buildInvFo3(p, CellSizing{}, StimulusSpec{});
  const double leak = measureLeakage(b);
  EXPECT_GT(leak, 0.0);
  EXPECT_LT(leak, 1e-5);  // far below active current
}

TEST(Leakage, RestoresInputWaveform) {
  auto p = vsProvider();
  GateFo3Bench b = circuits::buildInvFo3(p, CellSizing{}, StimulusSpec{});
  const double before =
      b.circuit.voltageSource(b.inSource).waveform().valueAt(20e-12);
  (void)measureLeakage(b);
  const double after =
      b.circuit.voltageSource(b.inSource).waveform().valueAt(20e-12);
  EXPECT_DOUBLE_EQ(before, after);
}

}  // namespace
}  // namespace vsstat::measure
