#include "measure/setup_hold.hpp"

#include <gtest/gtest.h>

#include "models/vs_model.hpp"

namespace vsstat::measure {
namespace {

using circuits::CellSizing;
using circuits::DffBench;
using circuits::NominalProvider;
using models::VsModel;

NominalProvider vsProvider() {
  return NominalProvider(VsModel(models::defaultVsNmos()),
                         VsModel(models::defaultVsPmos()));
}

CellSizing dffSizing() { return CellSizing{600.0, 300.0, 40.0}; }

TEST(SetupTime, NominalIsPositivePicoseconds) {
  auto p = vsProvider();
  DffBench b = circuits::buildDff(p, 0.9, dffSizing());
  const double tSetup = measureSetupTime(b);
  // Master-slave pass-gate register: setup in the tens of ps at most.
  EXPECT_GT(tSetup, -10e-12);
  EXPECT_LT(tSetup, 45e-12);
}

TEST(SetupTime, BisectionIsDeterministic) {
  auto p1 = vsProvider();
  DffBench b1 = circuits::buildDff(p1, 0.9, dffSizing());
  auto p2 = vsProvider();
  DffBench b2 = circuits::buildDff(p2, 0.9, dffSizing());
  EXPECT_DOUBLE_EQ(measureSetupTime(b1), measureSetupTime(b2));
}

TEST(HoldTime, DoesNotExceedSetupWindow) {
  auto p = vsProvider();
  DffBench b = circuits::buildDff(p, 0.9, dffSizing());
  const double tHold = measureHoldTime(b);
  EXPECT_GT(tHold, -25e-12);
  EXPECT_LT(tHold, 40e-12);
}

TEST(ClkToQ, PositiveAndBounded) {
  auto p = vsProvider();
  DffBench b = circuits::buildDff(p, 0.9, dffSizing());
  const double cq = measureClkToQ(b);
  EXPECT_GT(cq, 1e-12);
  EXPECT_LT(cq, 60e-12);
}

}  // namespace
}  // namespace vsstat::measure
