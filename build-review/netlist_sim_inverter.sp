* CMOS inverter, VS model cards
.title netlist-driven inverter
VDD vdd 0 0.9
VIN in 0 PULSE(0 0.9 10p 12p 12p 80p)
MP  out in vdd pch W=600n L=40n
MN  out in 0   nch W=300n L=40n
* load: three copies of the same gate, as gate capacitance
CL  out 0 2f
.model nch vs_nmos
.model pch vs_pmos vt0=0.38
.tran 0.3p 180p
.end
