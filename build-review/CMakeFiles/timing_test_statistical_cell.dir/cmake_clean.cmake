file(REMOVE_RECURSE
  "CMakeFiles/timing_test_statistical_cell.dir/tests/timing/test_statistical_cell.cpp.o"
  "CMakeFiles/timing_test_statistical_cell.dir/tests/timing/test_statistical_cell.cpp.o.d"
  "timing_test_statistical_cell"
  "timing_test_statistical_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_test_statistical_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
