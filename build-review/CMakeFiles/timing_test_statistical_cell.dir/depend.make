# Empty dependencies file for timing_test_statistical_cell.
# This may be replaced when dependencies are built.
