# Empty dependencies file for yield_test_parametric.
# This may be replaced when dependencies are built.
