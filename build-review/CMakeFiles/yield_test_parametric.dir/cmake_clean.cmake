file(REMOVE_RECURSE
  "CMakeFiles/yield_test_parametric.dir/tests/yield/test_parametric.cpp.o"
  "CMakeFiles/yield_test_parametric.dir/tests/yield/test_parametric.cpp.o.d"
  "yield_test_parametric"
  "yield_test_parametric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_test_parametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
