# Empty dependencies file for bench_ablation_alpha_timing.
# This may be replaced when dependencies are built.
