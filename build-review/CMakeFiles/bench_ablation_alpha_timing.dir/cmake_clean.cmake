file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_alpha_timing.dir/bench/bench_ablation_alpha_timing.cpp.o"
  "CMakeFiles/bench_ablation_alpha_timing.dir/bench/bench_ablation_alpha_timing.cpp.o.d"
  "bench_ablation_alpha_timing"
  "bench_ablation_alpha_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alpha_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
