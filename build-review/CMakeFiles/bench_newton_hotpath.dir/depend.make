# Empty dependencies file for bench_newton_hotpath.
# This may be replaced when dependencies are built.
