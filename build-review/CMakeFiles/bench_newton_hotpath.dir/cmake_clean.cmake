file(REMOVE_RECURSE
  "CMakeFiles/bench_newton_hotpath.dir/bench/bench_newton_hotpath.cpp.o"
  "CMakeFiles/bench_newton_hotpath.dir/bench/bench_newton_hotpath.cpp.o.d"
  "bench_newton_hotpath"
  "bench_newton_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_newton_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
