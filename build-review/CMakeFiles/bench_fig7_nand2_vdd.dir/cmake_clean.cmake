file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nand2_vdd.dir/bench/bench_fig7_nand2_vdd.cpp.o"
  "CMakeFiles/bench_fig7_nand2_vdd.dir/bench/bench_fig7_nand2_vdd.cpp.o.d"
  "bench_fig7_nand2_vdd"
  "bench_fig7_nand2_vdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nand2_vdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
