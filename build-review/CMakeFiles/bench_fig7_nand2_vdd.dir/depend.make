# Empty dependencies file for bench_fig7_nand2_vdd.
# This may be replaced when dependencies are built.
