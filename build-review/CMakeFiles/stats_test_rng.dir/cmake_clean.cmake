file(REMOVE_RECURSE
  "CMakeFiles/stats_test_rng.dir/tests/stats/test_rng.cpp.o"
  "CMakeFiles/stats_test_rng.dir/tests/stats/test_rng.cpp.o.d"
  "stats_test_rng"
  "stats_test_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
