# Empty dependencies file for stats_test_rng.
# This may be replaced when dependencies are built.
