# Empty compiler generated dependencies file for models_test_process_variation.
# This may be replaced when dependencies are built.
