file(REMOVE_RECURSE
  "CMakeFiles/models_test_process_variation.dir/tests/models/test_process_variation.cpp.o"
  "CMakeFiles/models_test_process_variation.dir/tests/models/test_process_variation.cpp.o.d"
  "models_test_process_variation"
  "models_test_process_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_process_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
