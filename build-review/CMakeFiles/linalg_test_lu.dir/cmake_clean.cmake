file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_lu.dir/tests/linalg/test_lu.cpp.o"
  "CMakeFiles/linalg_test_lu.dir/tests/linalg/test_lu.cpp.o.d"
  "linalg_test_lu"
  "linalg_test_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
