# Empty dependencies file for linalg_test_lu.
# This may be replaced when dependencies are built.
