file(REMOVE_RECURSE
  "CMakeFiles/stats_test_qq.dir/tests/stats/test_qq.cpp.o"
  "CMakeFiles/stats_test_qq.dir/tests/stats/test_qq.cpp.o.d"
  "stats_test_qq"
  "stats_test_qq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_qq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
