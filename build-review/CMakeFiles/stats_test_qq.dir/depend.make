# Empty dependencies file for stats_test_qq.
# This may be replaced when dependencies are built.
