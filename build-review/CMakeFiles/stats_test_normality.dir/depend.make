# Empty dependencies file for stats_test_normality.
# This may be replaced when dependencies are built.
