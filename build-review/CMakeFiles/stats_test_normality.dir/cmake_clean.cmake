file(REMOVE_RECURSE
  "CMakeFiles/stats_test_normality.dir/tests/stats/test_normality.cpp.o"
  "CMakeFiles/stats_test_normality.dir/tests/stats/test_normality.cpp.o.d"
  "stats_test_normality"
  "stats_test_normality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_normality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
