# Empty compiler generated dependencies file for bench_fig1_iv_fit.
# This may be replaced when dependencies are built.
