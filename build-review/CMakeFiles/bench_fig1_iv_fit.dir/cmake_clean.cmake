file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_iv_fit.dir/bench/bench_fig1_iv_fit.cpp.o"
  "CMakeFiles/bench_fig1_iv_fit.dir/bench/bench_fig1_iv_fit.cpp.o.d"
  "bench_fig1_iv_fit"
  "bench_fig1_iv_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_iv_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
