# Empty dependencies file for models_test_fast_numerics.
# This may be replaced when dependencies are built.
