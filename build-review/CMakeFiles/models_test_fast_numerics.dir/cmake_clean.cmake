file(REMOVE_RECURSE
  "CMakeFiles/models_test_fast_numerics.dir/tests/models/test_fast_numerics.cpp.o"
  "CMakeFiles/models_test_fast_numerics.dir/tests/models/test_fast_numerics.cpp.o.d"
  "models_test_fast_numerics"
  "models_test_fast_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_fast_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
