file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_idsat_contrib.dir/bench/bench_fig3_idsat_contrib.cpp.o"
  "CMakeFiles/bench_fig3_idsat_contrib.dir/bench/bench_fig3_idsat_contrib.cpp.o.d"
  "bench_fig3_idsat_contrib"
  "bench_fig3_idsat_contrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_idsat_contrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
