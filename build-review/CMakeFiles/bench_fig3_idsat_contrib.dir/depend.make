# Empty dependencies file for bench_fig3_idsat_contrib.
# This may be replaced when dependencies are built.
