# Empty compiler generated dependencies file for bench_table2_alpha.
# This may be replaced when dependencies are built.
