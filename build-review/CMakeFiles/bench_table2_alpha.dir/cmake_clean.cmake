file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_alpha.dir/bench/bench_table2_alpha.cpp.o"
  "CMakeFiles/bench_table2_alpha.dir/bench/bench_table2_alpha.cpp.o.d"
  "bench_table2_alpha"
  "bench_table2_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
