# Empty compiler generated dependencies file for example_ssta_path.
# This may be replaced when dependencies are built.
