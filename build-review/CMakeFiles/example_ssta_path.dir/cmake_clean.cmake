file(REMOVE_RECURSE
  "CMakeFiles/example_ssta_path.dir/examples/ssta_path.cpp.o"
  "CMakeFiles/example_ssta_path.dir/examples/ssta_path.cpp.o.d"
  "example_ssta_path"
  "example_ssta_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ssta_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
