# Empty compiler generated dependencies file for linalg_test_cholesky.
# This may be replaced when dependencies are built.
