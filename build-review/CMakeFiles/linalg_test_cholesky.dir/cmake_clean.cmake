file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_cholesky.dir/tests/linalg/test_cholesky.cpp.o"
  "CMakeFiles/linalg_test_cholesky.dir/tests/linalg/test_cholesky.cpp.o.d"
  "linalg_test_cholesky"
  "linalg_test_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
