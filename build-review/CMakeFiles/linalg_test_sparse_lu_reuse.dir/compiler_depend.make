# Empty compiler generated dependencies file for linalg_test_sparse_lu_reuse.
# This may be replaced when dependencies are built.
