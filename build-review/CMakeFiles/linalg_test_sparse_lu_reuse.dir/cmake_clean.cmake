file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_sparse_lu_reuse.dir/tests/linalg/test_sparse_lu_reuse.cpp.o"
  "CMakeFiles/linalg_test_sparse_lu_reuse.dir/tests/linalg/test_sparse_lu_reuse.cpp.o.d"
  "linalg_test_sparse_lu_reuse"
  "linalg_test_sparse_lu_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_sparse_lu_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
