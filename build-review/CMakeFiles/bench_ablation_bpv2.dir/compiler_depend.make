# Empty compiler generated dependencies file for bench_ablation_bpv2.
# This may be replaced when dependencies are built.
