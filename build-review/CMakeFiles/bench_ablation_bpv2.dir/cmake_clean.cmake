file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bpv2.dir/bench/bench_ablation_bpv2.cpp.o"
  "CMakeFiles/bench_ablation_bpv2.dir/bench/bench_ablation_bpv2.cpp.o.d"
  "bench_ablation_bpv2"
  "bench_ablation_bpv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bpv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
