file(REMOVE_RECURSE
  "CMakeFiles/models_test_model_contract.dir/tests/models/test_model_contract.cpp.o"
  "CMakeFiles/models_test_model_contract.dir/tests/models/test_model_contract.cpp.o.d"
  "models_test_model_contract"
  "models_test_model_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_model_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
