# Empty dependencies file for models_test_model_contract.
# This may be replaced when dependencies are built.
