# Empty compiler generated dependencies file for extract_test_bpv2.
# This may be replaced when dependencies are built.
