file(REMOVE_RECURSE
  "CMakeFiles/extract_test_bpv2.dir/tests/extract/test_bpv2.cpp.o"
  "CMakeFiles/extract_test_bpv2.dir/tests/extract/test_bpv2.cpp.o.d"
  "extract_test_bpv2"
  "extract_test_bpv2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test_bpv2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
