file(REMOVE_RECURSE
  "CMakeFiles/util_test_csv.dir/tests/util/test_csv.cpp.o"
  "CMakeFiles/util_test_csv.dir/tests/util/test_csv.cpp.o.d"
  "util_test_csv"
  "util_test_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
