# Empty dependencies file for util_test_csv.
# This may be replaced when dependencies are built.
