file(REMOVE_RECURSE
  "CMakeFiles/spice_test_waveform.dir/tests/spice/test_waveform.cpp.o"
  "CMakeFiles/spice_test_waveform.dir/tests/spice/test_waveform.cpp.o.d"
  "spice_test_waveform"
  "spice_test_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
