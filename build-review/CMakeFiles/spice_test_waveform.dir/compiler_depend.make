# Empty compiler generated dependencies file for spice_test_waveform.
# This may be replaced when dependencies are built.
