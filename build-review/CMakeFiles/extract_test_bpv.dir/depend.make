# Empty dependencies file for extract_test_bpv.
# This may be replaced when dependencies are built.
