file(REMOVE_RECURSE
  "CMakeFiles/extract_test_bpv.dir/tests/extract/test_bpv.cpp.o"
  "CMakeFiles/extract_test_bpv.dir/tests/extract/test_bpv.cpp.o.d"
  "extract_test_bpv"
  "extract_test_bpv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test_bpv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
