file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sram_snm.dir/bench/bench_fig9_sram_snm.cpp.o"
  "CMakeFiles/bench_fig9_sram_snm.dir/bench/bench_fig9_sram_snm.cpp.o.d"
  "bench_fig9_sram_snm"
  "bench_fig9_sram_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sram_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
