# Empty compiler generated dependencies file for bench_fig9_sram_snm.
# This may be replaced when dependencies are built.
