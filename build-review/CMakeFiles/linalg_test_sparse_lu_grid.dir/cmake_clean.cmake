file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_sparse_lu_grid.dir/tests/linalg/test_sparse_lu_grid.cpp.o"
  "CMakeFiles/linalg_test_sparse_lu_grid.dir/tests/linalg/test_sparse_lu_grid.cpp.o.d"
  "linalg_test_sparse_lu_grid"
  "linalg_test_sparse_lu_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_sparse_lu_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
