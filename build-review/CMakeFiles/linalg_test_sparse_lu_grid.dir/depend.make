# Empty dependencies file for linalg_test_sparse_lu_grid.
# This may be replaced when dependencies are built.
