# Empty compiler generated dependencies file for mc_test_samplers.
# This may be replaced when dependencies are built.
