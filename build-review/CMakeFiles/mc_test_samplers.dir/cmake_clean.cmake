file(REMOVE_RECURSE
  "CMakeFiles/mc_test_samplers.dir/tests/mc/test_samplers.cpp.o"
  "CMakeFiles/mc_test_samplers.dir/tests/mc/test_samplers.cpp.o.d"
  "mc_test_samplers"
  "mc_test_samplers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_test_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
