# Empty dependencies file for bench_ablation_bpv.
# This may be replaced when dependencies are built.
