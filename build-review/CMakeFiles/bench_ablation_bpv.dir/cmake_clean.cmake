file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bpv.dir/bench/bench_ablation_bpv.cpp.o"
  "CMakeFiles/bench_ablation_bpv.dir/bench/bench_ablation_bpv.cpp.o.d"
  "bench_ablation_bpv"
  "bench_ablation_bpv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bpv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
