file(REMOVE_RECURSE
  "CMakeFiles/example_ring_oscillator.dir/examples/ring_oscillator.cpp.o"
  "CMakeFiles/example_ring_oscillator.dir/examples/ring_oscillator.cpp.o.d"
  "example_ring_oscillator"
  "example_ring_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ring_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
