# Empty compiler generated dependencies file for example_ring_oscillator.
# This may be replaced when dependencies are built.
