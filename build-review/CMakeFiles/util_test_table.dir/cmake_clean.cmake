file(REMOVE_RECURSE
  "CMakeFiles/util_test_table.dir/tests/util/test_table.cpp.o"
  "CMakeFiles/util_test_table.dir/tests/util/test_table.cpp.o.d"
  "util_test_table"
  "util_test_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
