# Empty dependencies file for util_test_table.
# This may be replaced when dependencies are built.
