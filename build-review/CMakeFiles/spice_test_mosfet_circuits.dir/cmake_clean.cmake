file(REMOVE_RECURSE
  "CMakeFiles/spice_test_mosfet_circuits.dir/tests/spice/test_mosfet_circuits.cpp.o"
  "CMakeFiles/spice_test_mosfet_circuits.dir/tests/spice/test_mosfet_circuits.cpp.o.d"
  "spice_test_mosfet_circuits"
  "spice_test_mosfet_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_mosfet_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
