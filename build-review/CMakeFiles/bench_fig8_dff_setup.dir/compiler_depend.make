# Empty compiler generated dependencies file for bench_fig8_dff_setup.
# This may be replaced when dependencies are built.
