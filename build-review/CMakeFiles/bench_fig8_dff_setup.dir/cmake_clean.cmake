file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dff_setup.dir/bench/bench_fig8_dff_setup.cpp.o"
  "CMakeFiles/bench_fig8_dff_setup.dir/bench/bench_fig8_dff_setup.cpp.o.d"
  "bench_fig8_dff_setup"
  "bench_fig8_dff_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dff_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
