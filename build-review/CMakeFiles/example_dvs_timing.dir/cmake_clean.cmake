file(REMOVE_RECURSE
  "CMakeFiles/example_dvs_timing.dir/examples/dvs_timing.cpp.o"
  "CMakeFiles/example_dvs_timing.dir/examples/dvs_timing.cpp.o.d"
  "example_dvs_timing"
  "example_dvs_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dvs_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
