# Empty dependencies file for example_dvs_timing.
# This may be replaced when dependencies are built.
