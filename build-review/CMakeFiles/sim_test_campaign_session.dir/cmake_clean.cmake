file(REMOVE_RECURSE
  "CMakeFiles/sim_test_campaign_session.dir/tests/sim/test_campaign_session.cpp.o"
  "CMakeFiles/sim_test_campaign_session.dir/tests/sim/test_campaign_session.cpp.o.d"
  "sim_test_campaign_session"
  "sim_test_campaign_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_campaign_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
