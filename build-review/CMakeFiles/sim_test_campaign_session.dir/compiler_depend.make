# Empty compiler generated dependencies file for sim_test_campaign_session.
# This may be replaced when dependencies are built.
