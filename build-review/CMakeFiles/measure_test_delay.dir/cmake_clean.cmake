file(REMOVE_RECURSE
  "CMakeFiles/measure_test_delay.dir/tests/measure/test_delay.cpp.o"
  "CMakeFiles/measure_test_delay.dir/tests/measure/test_delay.cpp.o.d"
  "measure_test_delay"
  "measure_test_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_test_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
