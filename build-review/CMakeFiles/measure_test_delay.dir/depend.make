# Empty dependencies file for measure_test_delay.
# This may be replaced when dependencies are built.
