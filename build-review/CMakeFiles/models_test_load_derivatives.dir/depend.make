# Empty dependencies file for models_test_load_derivatives.
# This may be replaced when dependencies are built.
