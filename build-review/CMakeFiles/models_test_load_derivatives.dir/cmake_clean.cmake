file(REMOVE_RECURSE
  "CMakeFiles/models_test_load_derivatives.dir/tests/models/test_load_derivatives.cpp.o"
  "CMakeFiles/models_test_load_derivatives.dir/tests/models/test_load_derivatives.cpp.o.d"
  "models_test_load_derivatives"
  "models_test_load_derivatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_load_derivatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
