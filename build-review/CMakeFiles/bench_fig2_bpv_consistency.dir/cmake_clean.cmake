file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bpv_consistency.dir/bench/bench_fig2_bpv_consistency.cpp.o"
  "CMakeFiles/bench_fig2_bpv_consistency.dir/bench/bench_fig2_bpv_consistency.cpp.o.d"
  "bench_fig2_bpv_consistency"
  "bench_fig2_bpv_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bpv_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
