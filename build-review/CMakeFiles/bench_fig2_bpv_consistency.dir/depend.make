# Empty dependencies file for bench_fig2_bpv_consistency.
# This may be replaced when dependencies are built.
