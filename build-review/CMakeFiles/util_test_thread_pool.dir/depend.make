# Empty dependencies file for util_test_thread_pool.
# This may be replaced when dependencies are built.
