file(REMOVE_RECURSE
  "CMakeFiles/util_test_thread_pool.dir/tests/util/test_thread_pool.cpp.o"
  "CMakeFiles/util_test_thread_pool.dir/tests/util/test_thread_pool.cpp.o.d"
  "util_test_thread_pool"
  "util_test_thread_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_thread_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
