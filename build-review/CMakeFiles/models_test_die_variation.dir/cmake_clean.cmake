file(REMOVE_RECURSE
  "CMakeFiles/models_test_die_variation.dir/tests/models/test_die_variation.cpp.o"
  "CMakeFiles/models_test_die_variation.dir/tests/models/test_die_variation.cpp.o.d"
  "models_test_die_variation"
  "models_test_die_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_die_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
