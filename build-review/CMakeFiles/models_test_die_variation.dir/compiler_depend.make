# Empty compiler generated dependencies file for models_test_die_variation.
# This may be replaced when dependencies are built.
