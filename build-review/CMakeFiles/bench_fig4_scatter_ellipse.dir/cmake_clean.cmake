file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_scatter_ellipse.dir/bench/bench_fig4_scatter_ellipse.cpp.o"
  "CMakeFiles/bench_fig4_scatter_ellipse.dir/bench/bench_fig4_scatter_ellipse.cpp.o.d"
  "bench_fig4_scatter_ellipse"
  "bench_fig4_scatter_ellipse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scatter_ellipse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
