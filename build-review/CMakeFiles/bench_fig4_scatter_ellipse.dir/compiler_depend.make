# Empty compiler generated dependencies file for bench_fig4_scatter_ellipse.
# This may be replaced when dependencies are built.
