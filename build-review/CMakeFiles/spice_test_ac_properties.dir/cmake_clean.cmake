file(REMOVE_RECURSE
  "CMakeFiles/spice_test_ac_properties.dir/tests/spice/test_ac_properties.cpp.o"
  "CMakeFiles/spice_test_ac_properties.dir/tests/spice/test_ac_properties.cpp.o.d"
  "spice_test_ac_properties"
  "spice_test_ac_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_ac_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
