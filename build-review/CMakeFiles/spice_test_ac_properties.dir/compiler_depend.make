# Empty compiler generated dependencies file for spice_test_ac_properties.
# This may be replaced when dependencies are built.
