# Empty dependencies file for util_test_simd_math.
# This may be replaced when dependencies are built.
