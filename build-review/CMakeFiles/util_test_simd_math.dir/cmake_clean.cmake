file(REMOVE_RECURSE
  "CMakeFiles/util_test_simd_math.dir/tests/util/test_simd_math.cpp.o"
  "CMakeFiles/util_test_simd_math.dir/tests/util/test_simd_math.cpp.o.d"
  "util_test_simd_math"
  "util_test_simd_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_simd_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
