# Empty dependencies file for bench_eq1_interdie.
# This may be replaced when dependencies are built.
