file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_interdie.dir/bench/bench_eq1_interdie.cpp.o"
  "CMakeFiles/bench_eq1_interdie.dir/bench/bench_eq1_interdie.cpp.o.d"
  "bench_eq1_interdie"
  "bench_eq1_interdie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_interdie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
