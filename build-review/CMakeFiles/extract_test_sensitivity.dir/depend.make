# Empty dependencies file for extract_test_sensitivity.
# This may be replaced when dependencies are built.
