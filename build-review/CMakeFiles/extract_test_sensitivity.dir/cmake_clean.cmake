file(REMOVE_RECURSE
  "CMakeFiles/extract_test_sensitivity.dir/tests/extract/test_sensitivity.cpp.o"
  "CMakeFiles/extract_test_sensitivity.dir/tests/extract/test_sensitivity.cpp.o.d"
  "extract_test_sensitivity"
  "extract_test_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
