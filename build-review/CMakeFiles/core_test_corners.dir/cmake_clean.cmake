file(REMOVE_RECURSE
  "CMakeFiles/core_test_corners.dir/tests/core/test_corners.cpp.o"
  "CMakeFiles/core_test_corners.dir/tests/core/test_corners.cpp.o.d"
  "core_test_corners"
  "core_test_corners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
