# Empty compiler generated dependencies file for core_test_corners.
# This may be replaced when dependencies are built.
