file(REMOVE_RECURSE
  "CMakeFiles/stats_test_descriptive.dir/tests/stats/test_descriptive.cpp.o"
  "CMakeFiles/stats_test_descriptive.dir/tests/stats/test_descriptive.cpp.o.d"
  "stats_test_descriptive"
  "stats_test_descriptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_descriptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
