# Empty dependencies file for stats_test_descriptive.
# This may be replaced when dependencies are built.
