file(REMOVE_RECURSE
  "CMakeFiles/measure_test_device_metrics.dir/tests/measure/test_device_metrics.cpp.o"
  "CMakeFiles/measure_test_device_metrics.dir/tests/measure/test_device_metrics.cpp.o.d"
  "measure_test_device_metrics"
  "measure_test_device_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_test_device_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
