# Empty compiler generated dependencies file for measure_test_device_metrics.
# This may be replaced when dependencies are built.
