file(REMOVE_RECURSE
  "CMakeFiles/stats_test_spatial.dir/tests/stats/test_spatial.cpp.o"
  "CMakeFiles/stats_test_spatial.dir/tests/stats/test_spatial.cpp.o.d"
  "stats_test_spatial"
  "stats_test_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
