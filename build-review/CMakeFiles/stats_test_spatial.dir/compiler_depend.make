# Empty compiler generated dependencies file for stats_test_spatial.
# This may be replaced when dependencies are built.
