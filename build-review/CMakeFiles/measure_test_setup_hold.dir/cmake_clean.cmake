file(REMOVE_RECURSE
  "CMakeFiles/measure_test_setup_hold.dir/tests/measure/test_setup_hold.cpp.o"
  "CMakeFiles/measure_test_setup_hold.dir/tests/measure/test_setup_hold.cpp.o.d"
  "measure_test_setup_hold"
  "measure_test_setup_hold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_test_setup_hold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
