# Empty dependencies file for measure_test_setup_hold.
# This may be replaced when dependencies are built.
