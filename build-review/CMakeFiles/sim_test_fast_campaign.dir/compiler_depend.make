# Empty compiler generated dependencies file for sim_test_fast_campaign.
# This may be replaced when dependencies are built.
