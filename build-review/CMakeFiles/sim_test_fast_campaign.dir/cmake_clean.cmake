file(REMOVE_RECURSE
  "CMakeFiles/sim_test_fast_campaign.dir/tests/sim/test_fast_campaign.cpp.o"
  "CMakeFiles/sim_test_fast_campaign.dir/tests/sim/test_fast_campaign.cpp.o.d"
  "sim_test_fast_campaign"
  "sim_test_fast_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_fast_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
