file(REMOVE_RECURSE
  "CMakeFiles/core_test_statistical_vs.dir/tests/core/test_statistical_vs.cpp.o"
  "CMakeFiles/core_test_statistical_vs.dir/tests/core/test_statistical_vs.cpp.o.d"
  "core_test_statistical_vs"
  "core_test_statistical_vs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_statistical_vs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
