# Empty dependencies file for core_test_statistical_vs.
# This may be replaced when dependencies are built.
