file(REMOVE_RECURSE
  "CMakeFiles/models_test_alpha_power.dir/tests/models/test_alpha_power.cpp.o"
  "CMakeFiles/models_test_alpha_power.dir/tests/models/test_alpha_power.cpp.o.d"
  "models_test_alpha_power"
  "models_test_alpha_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_alpha_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
