# Empty compiler generated dependencies file for models_test_alpha_power.
# This may be replaced when dependencies are built.
