file(REMOVE_RECURSE
  "CMakeFiles/example_netlist_sim.dir/examples/netlist_sim.cpp.o"
  "CMakeFiles/example_netlist_sim.dir/examples/netlist_sim.cpp.o.d"
  "example_netlist_sim"
  "example_netlist_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netlist_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
