# Empty dependencies file for example_netlist_sim.
# This may be replaced when dependencies are built.
