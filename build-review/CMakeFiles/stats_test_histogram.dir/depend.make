# Empty dependencies file for stats_test_histogram.
# This may be replaced when dependencies are built.
