file(REMOVE_RECURSE
  "CMakeFiles/stats_test_histogram.dir/tests/stats/test_histogram.cpp.o"
  "CMakeFiles/stats_test_histogram.dir/tests/stats/test_histogram.cpp.o.d"
  "stats_test_histogram"
  "stats_test_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
