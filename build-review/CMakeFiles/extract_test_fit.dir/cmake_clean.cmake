file(REMOVE_RECURSE
  "CMakeFiles/extract_test_fit.dir/tests/extract/test_fit.cpp.o"
  "CMakeFiles/extract_test_fit.dir/tests/extract/test_fit.cpp.o.d"
  "extract_test_fit"
  "extract_test_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
