# Empty dependencies file for extract_test_fit.
# This may be replaced when dependencies are built.
