file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_matrix.dir/tests/linalg/test_matrix.cpp.o"
  "CMakeFiles/linalg_test_matrix.dir/tests/linalg/test_matrix.cpp.o.d"
  "linalg_test_matrix"
  "linalg_test_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
