# Empty dependencies file for linalg_test_matrix.
# This may be replaced when dependencies are built.
