file(REMOVE_RECURSE
  "CMakeFiles/example_statistical_extraction.dir/examples/statistical_extraction.cpp.o"
  "CMakeFiles/example_statistical_extraction.dir/examples/statistical_extraction.cpp.o.d"
  "example_statistical_extraction"
  "example_statistical_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_statistical_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
