# Empty compiler generated dependencies file for example_statistical_extraction.
# This may be replaced when dependencies are built.
