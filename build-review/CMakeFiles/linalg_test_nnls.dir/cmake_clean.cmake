file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_nnls.dir/tests/linalg/test_nnls.cpp.o"
  "CMakeFiles/linalg_test_nnls.dir/tests/linalg/test_nnls.cpp.o.d"
  "linalg_test_nnls"
  "linalg_test_nnls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_nnls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
