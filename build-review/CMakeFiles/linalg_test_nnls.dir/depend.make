# Empty dependencies file for linalg_test_nnls.
# This may be replaced when dependencies are built.
