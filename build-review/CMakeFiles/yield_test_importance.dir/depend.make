# Empty dependencies file for yield_test_importance.
# This may be replaced when dependencies are built.
