file(REMOVE_RECURSE
  "CMakeFiles/yield_test_importance.dir/tests/yield/test_importance.cpp.o"
  "CMakeFiles/yield_test_importance.dir/tests/yield/test_importance.cpp.o.d"
  "yield_test_importance"
  "yield_test_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_test_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
