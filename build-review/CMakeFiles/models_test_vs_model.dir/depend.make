# Empty dependencies file for models_test_vs_model.
# This may be replaced when dependencies are built.
