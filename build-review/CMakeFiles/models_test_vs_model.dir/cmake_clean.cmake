file(REMOVE_RECURSE
  "CMakeFiles/models_test_vs_model.dir/tests/models/test_vs_model.cpp.o"
  "CMakeFiles/models_test_vs_model.dir/tests/models/test_vs_model.cpp.o.d"
  "models_test_vs_model"
  "models_test_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
