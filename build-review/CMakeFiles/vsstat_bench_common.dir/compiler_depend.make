# Empty compiler generated dependencies file for vsstat_bench_common.
# This may be replaced when dependencies are built.
