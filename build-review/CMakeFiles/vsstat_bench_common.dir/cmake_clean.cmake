file(REMOVE_RECURSE
  "CMakeFiles/vsstat_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/vsstat_bench_common.dir/bench/common.cpp.o.d"
  "libvsstat_bench_common.a"
  "libvsstat_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsstat_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
