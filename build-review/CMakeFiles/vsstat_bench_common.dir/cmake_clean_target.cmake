file(REMOVE_RECURSE
  "libvsstat_bench_common.a"
)
