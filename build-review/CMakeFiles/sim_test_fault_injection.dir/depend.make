# Empty dependencies file for sim_test_fault_injection.
# This may be replaced when dependencies are built.
