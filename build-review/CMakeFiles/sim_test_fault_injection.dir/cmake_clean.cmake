file(REMOVE_RECURSE
  "CMakeFiles/sim_test_fault_injection.dir/tests/sim/test_fault_injection.cpp.o"
  "CMakeFiles/sim_test_fault_injection.dir/tests/sim/test_fault_injection.cpp.o.d"
  "sim_test_fault_injection"
  "sim_test_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
