file(REMOVE_RECURSE
  "CMakeFiles/models_test_bsim_lite.dir/tests/models/test_bsim_lite.cpp.o"
  "CMakeFiles/models_test_bsim_lite.dir/tests/models/test_bsim_lite.cpp.o.d"
  "models_test_bsim_lite"
  "models_test_bsim_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_test_bsim_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
