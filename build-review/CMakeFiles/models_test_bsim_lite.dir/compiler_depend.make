# Empty compiler generated dependencies file for models_test_bsim_lite.
# This may be replaced when dependencies are built.
