# Empty compiler generated dependencies file for sim_test_grid_ladder.
# This may be replaced when dependencies are built.
