file(REMOVE_RECURSE
  "CMakeFiles/sim_test_grid_ladder.dir/tests/sim/test_grid_ladder.cpp.o"
  "CMakeFiles/sim_test_grid_ladder.dir/tests/sim/test_grid_ladder.cpp.o.d"
  "sim_test_grid_ladder"
  "sim_test_grid_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_grid_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
