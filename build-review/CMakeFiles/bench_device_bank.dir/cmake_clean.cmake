file(REMOVE_RECURSE
  "CMakeFiles/bench_device_bank.dir/bench/bench_device_bank.cpp.o"
  "CMakeFiles/bench_device_bank.dir/bench/bench_device_bank.cpp.o.d"
  "bench_device_bank"
  "bench_device_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
