# Empty compiler generated dependencies file for bench_device_bank.
# This may be replaced when dependencies are built.
