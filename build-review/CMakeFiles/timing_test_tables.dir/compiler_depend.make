# Empty compiler generated dependencies file for timing_test_tables.
# This may be replaced when dependencies are built.
