file(REMOVE_RECURSE
  "CMakeFiles/timing_test_tables.dir/tests/timing/test_tables.cpp.o"
  "CMakeFiles/timing_test_tables.dir/tests/timing/test_tables.cpp.o.d"
  "timing_test_tables"
  "timing_test_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_test_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
