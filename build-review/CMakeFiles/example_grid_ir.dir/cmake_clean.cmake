file(REMOVE_RECURSE
  "CMakeFiles/example_grid_ir.dir/examples/grid_ir.cpp.o"
  "CMakeFiles/example_grid_ir.dir/examples/grid_ir.cpp.o.d"
  "example_grid_ir"
  "example_grid_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_grid_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
