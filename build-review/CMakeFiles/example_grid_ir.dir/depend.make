# Empty dependencies file for example_grid_ir.
# This may be replaced when dependencies are built.
