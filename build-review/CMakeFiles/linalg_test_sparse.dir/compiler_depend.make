# Empty compiler generated dependencies file for linalg_test_sparse.
# This may be replaced when dependencies are built.
