file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_sparse.dir/tests/linalg/test_sparse.cpp.o"
  "CMakeFiles/linalg_test_sparse.dir/tests/linalg/test_sparse.cpp.o.d"
  "linalg_test_sparse"
  "linalg_test_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
