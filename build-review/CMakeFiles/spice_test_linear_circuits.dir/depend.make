# Empty dependencies file for spice_test_linear_circuits.
# This may be replaced when dependencies are built.
