file(REMOVE_RECURSE
  "CMakeFiles/spice_test_linear_circuits.dir/tests/spice/test_linear_circuits.cpp.o"
  "CMakeFiles/spice_test_linear_circuits.dir/tests/spice/test_linear_circuits.cpp.o.d"
  "spice_test_linear_circuits"
  "spice_test_linear_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_linear_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
