file(REMOVE_RECURSE
  "CMakeFiles/example_sram_yield.dir/examples/sram_yield.cpp.o"
  "CMakeFiles/example_sram_yield.dir/examples/sram_yield.cpp.o.d"
  "example_sram_yield"
  "example_sram_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sram_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
