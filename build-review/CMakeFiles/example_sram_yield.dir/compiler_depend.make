# Empty compiler generated dependencies file for example_sram_yield.
# This may be replaced when dependencies are built.
