# Empty compiler generated dependencies file for linalg_test_complex.
# This may be replaced when dependencies are built.
