file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_complex.dir/tests/linalg/test_complex.cpp.o"
  "CMakeFiles/linalg_test_complex.dir/tests/linalg/test_complex.cpp.o.d"
  "linalg_test_complex"
  "linalg_test_complex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_complex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
