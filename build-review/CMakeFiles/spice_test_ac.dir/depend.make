# Empty dependencies file for spice_test_ac.
# This may be replaced when dependencies are built.
