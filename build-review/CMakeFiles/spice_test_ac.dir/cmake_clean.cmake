file(REMOVE_RECURSE
  "CMakeFiles/spice_test_ac.dir/tests/spice/test_ac.cpp.o"
  "CMakeFiles/spice_test_ac.dir/tests/spice/test_ac.cpp.o.d"
  "spice_test_ac"
  "spice_test_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
