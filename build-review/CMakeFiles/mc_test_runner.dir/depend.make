# Empty dependencies file for mc_test_runner.
# This may be replaced when dependencies are built.
