file(REMOVE_RECURSE
  "CMakeFiles/mc_test_runner.dir/tests/mc/test_runner.cpp.o"
  "CMakeFiles/mc_test_runner.dir/tests/mc/test_runner.cpp.o.d"
  "mc_test_runner"
  "mc_test_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_test_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
