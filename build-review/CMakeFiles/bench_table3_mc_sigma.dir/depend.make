# Empty dependencies file for bench_table3_mc_sigma.
# This may be replaced when dependencies are built.
