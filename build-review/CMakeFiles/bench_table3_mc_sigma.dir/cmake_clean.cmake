file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_mc_sigma.dir/bench/bench_table3_mc_sigma.cpp.o"
  "CMakeFiles/bench_table3_mc_sigma.dir/bench/bench_table3_mc_sigma.cpp.o.d"
  "bench_table3_mc_sigma"
  "bench_table3_mc_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_mc_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
