# Empty dependencies file for yield_test_yield_properties.
# This may be replaced when dependencies are built.
