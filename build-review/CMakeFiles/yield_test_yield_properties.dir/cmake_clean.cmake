file(REMOVE_RECURSE
  "CMakeFiles/yield_test_yield_properties.dir/tests/yield/test_yield_properties.cpp.o"
  "CMakeFiles/yield_test_yield_properties.dir/tests/yield/test_yield_properties.cpp.o.d"
  "yield_test_yield_properties"
  "yield_test_yield_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yield_test_yield_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
