file(REMOVE_RECURSE
  "CMakeFiles/timing_test_ssta.dir/tests/timing/test_ssta.cpp.o"
  "CMakeFiles/timing_test_ssta.dir/tests/timing/test_ssta.cpp.o.d"
  "timing_test_ssta"
  "timing_test_ssta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_test_ssta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
