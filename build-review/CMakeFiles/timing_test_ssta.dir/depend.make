# Empty dependencies file for timing_test_ssta.
# This may be replaced when dependencies are built.
