file(REMOVE_RECURSE
  "CMakeFiles/util_test_ascii_plot.dir/tests/util/test_ascii_plot.cpp.o"
  "CMakeFiles/util_test_ascii_plot.dir/tests/util/test_ascii_plot.cpp.o.d"
  "util_test_ascii_plot"
  "util_test_ascii_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_ascii_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
