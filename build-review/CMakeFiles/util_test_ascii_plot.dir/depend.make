# Empty dependencies file for util_test_ascii_plot.
# This may be replaced when dependencies are built.
