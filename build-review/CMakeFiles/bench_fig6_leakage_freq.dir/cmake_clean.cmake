file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_leakage_freq.dir/bench/bench_fig6_leakage_freq.cpp.o"
  "CMakeFiles/bench_fig6_leakage_freq.dir/bench/bench_fig6_leakage_freq.cpp.o.d"
  "bench_fig6_leakage_freq"
  "bench_fig6_leakage_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_leakage_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
