# Empty compiler generated dependencies file for bench_fig6_leakage_freq.
# This may be replaced when dependencies are built.
