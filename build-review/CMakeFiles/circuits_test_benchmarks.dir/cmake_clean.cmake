file(REMOVE_RECURSE
  "CMakeFiles/circuits_test_benchmarks.dir/tests/circuits/test_benchmarks.cpp.o"
  "CMakeFiles/circuits_test_benchmarks.dir/tests/circuits/test_benchmarks.cpp.o.d"
  "circuits_test_benchmarks"
  "circuits_test_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuits_test_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
