# Empty compiler generated dependencies file for circuits_test_benchmarks.
# This may be replaced when dependencies are built.
