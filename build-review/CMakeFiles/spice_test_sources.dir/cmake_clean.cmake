file(REMOVE_RECURSE
  "CMakeFiles/spice_test_sources.dir/tests/spice/test_sources.cpp.o"
  "CMakeFiles/spice_test_sources.dir/tests/spice/test_sources.cpp.o.d"
  "spice_test_sources"
  "spice_test_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
