# Empty compiler generated dependencies file for spice_test_sources.
# This may be replaced when dependencies are built.
