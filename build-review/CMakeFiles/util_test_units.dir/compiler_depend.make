# Empty compiler generated dependencies file for util_test_units.
# This may be replaced when dependencies are built.
