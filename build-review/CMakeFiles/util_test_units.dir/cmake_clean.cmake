file(REMOVE_RECURSE
  "CMakeFiles/util_test_units.dir/tests/util/test_units.cpp.o"
  "CMakeFiles/util_test_units.dir/tests/util/test_units.cpp.o.d"
  "util_test_units"
  "util_test_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
