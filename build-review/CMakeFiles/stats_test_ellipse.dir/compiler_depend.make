# Empty compiler generated dependencies file for stats_test_ellipse.
# This may be replaced when dependencies are built.
