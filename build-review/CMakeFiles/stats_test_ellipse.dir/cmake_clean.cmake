file(REMOVE_RECURSE
  "CMakeFiles/stats_test_ellipse.dir/tests/stats/test_ellipse.cpp.o"
  "CMakeFiles/stats_test_ellipse.dir/tests/stats/test_ellipse.cpp.o.d"
  "stats_test_ellipse"
  "stats_test_ellipse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_ellipse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
