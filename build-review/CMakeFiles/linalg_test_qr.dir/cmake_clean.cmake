file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_qr.dir/tests/linalg/test_qr.cpp.o"
  "CMakeFiles/linalg_test_qr.dir/tests/linalg/test_qr.cpp.o.d"
  "linalg_test_qr"
  "linalg_test_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
