# Empty dependencies file for linalg_test_qr.
# This may be replaced when dependencies are built.
