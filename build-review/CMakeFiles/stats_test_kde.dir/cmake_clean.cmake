file(REMOVE_RECURSE
  "CMakeFiles/stats_test_kde.dir/tests/stats/test_kde.cpp.o"
  "CMakeFiles/stats_test_kde.dir/tests/stats/test_kde.cpp.o.d"
  "stats_test_kde"
  "stats_test_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
