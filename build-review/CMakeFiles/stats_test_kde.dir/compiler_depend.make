# Empty compiler generated dependencies file for stats_test_kde.
# This may be replaced when dependencies are built.
