# Empty compiler generated dependencies file for vsstat.
# This may be replaced when dependencies are built.
