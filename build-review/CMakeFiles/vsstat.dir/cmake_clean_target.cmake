file(REMOVE_RECURSE
  "libvsstat.a"
)
