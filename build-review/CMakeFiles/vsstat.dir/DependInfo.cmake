
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/benchmarks.cpp" "CMakeFiles/vsstat.dir/src/circuits/benchmarks.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/circuits/benchmarks.cpp.o.d"
  "/root/repo/src/circuits/cells.cpp" "CMakeFiles/vsstat.dir/src/circuits/cells.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/circuits/cells.cpp.o.d"
  "/root/repo/src/circuits/provider.cpp" "CMakeFiles/vsstat.dir/src/circuits/provider.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/circuits/provider.cpp.o.d"
  "/root/repo/src/core/corners.cpp" "CMakeFiles/vsstat.dir/src/core/corners.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/core/corners.cpp.o.d"
  "/root/repo/src/core/statistical_vs.cpp" "CMakeFiles/vsstat.dir/src/core/statistical_vs.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/core/statistical_vs.cpp.o.d"
  "/root/repo/src/extract/bpv.cpp" "CMakeFiles/vsstat.dir/src/extract/bpv.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/extract/bpv.cpp.o.d"
  "/root/repo/src/extract/bpv2.cpp" "CMakeFiles/vsstat.dir/src/extract/bpv2.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/extract/bpv2.cpp.o.d"
  "/root/repo/src/extract/fit.cpp" "CMakeFiles/vsstat.dir/src/extract/fit.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/extract/fit.cpp.o.d"
  "/root/repo/src/extract/golden_meter.cpp" "CMakeFiles/vsstat.dir/src/extract/golden_meter.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/extract/golden_meter.cpp.o.d"
  "/root/repo/src/extract/sensitivity.cpp" "CMakeFiles/vsstat.dir/src/extract/sensitivity.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/extract/sensitivity.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "CMakeFiles/vsstat.dir/src/linalg/cholesky.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/complex.cpp" "CMakeFiles/vsstat.dir/src/linalg/complex.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/complex.cpp.o.d"
  "/root/repo/src/linalg/dense_pivot_lu.cpp" "CMakeFiles/vsstat.dir/src/linalg/dense_pivot_lu.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/dense_pivot_lu.cpp.o.d"
  "/root/repo/src/linalg/levmar.cpp" "CMakeFiles/vsstat.dir/src/linalg/levmar.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/levmar.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "CMakeFiles/vsstat.dir/src/linalg/lu.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "CMakeFiles/vsstat.dir/src/linalg/matrix.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/nnls.cpp" "CMakeFiles/vsstat.dir/src/linalg/nnls.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/nnls.cpp.o.d"
  "/root/repo/src/linalg/ordering.cpp" "CMakeFiles/vsstat.dir/src/linalg/ordering.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/ordering.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "CMakeFiles/vsstat.dir/src/linalg/qr.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "CMakeFiles/vsstat.dir/src/linalg/sparse.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/sparse.cpp.o.d"
  "/root/repo/src/linalg/sparse_lu.cpp" "CMakeFiles/vsstat.dir/src/linalg/sparse_lu.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/linalg/sparse_lu.cpp.o.d"
  "/root/repo/src/mc/providers.cpp" "CMakeFiles/vsstat.dir/src/mc/providers.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/mc/providers.cpp.o.d"
  "/root/repo/src/mc/runner.cpp" "CMakeFiles/vsstat.dir/src/mc/runner.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/mc/runner.cpp.o.d"
  "/root/repo/src/mc/samplers.cpp" "CMakeFiles/vsstat.dir/src/mc/samplers.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/mc/samplers.cpp.o.d"
  "/root/repo/src/measure/delay.cpp" "CMakeFiles/vsstat.dir/src/measure/delay.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/measure/delay.cpp.o.d"
  "/root/repo/src/measure/device_metrics.cpp" "CMakeFiles/vsstat.dir/src/measure/device_metrics.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/measure/device_metrics.cpp.o.d"
  "/root/repo/src/measure/setup_hold.cpp" "CMakeFiles/vsstat.dir/src/measure/setup_hold.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/measure/setup_hold.cpp.o.d"
  "/root/repo/src/measure/snm.cpp" "CMakeFiles/vsstat.dir/src/measure/snm.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/measure/snm.cpp.o.d"
  "/root/repo/src/models/alpha_power.cpp" "CMakeFiles/vsstat.dir/src/models/alpha_power.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/alpha_power.cpp.o.d"
  "/root/repo/src/models/bsim_lite.cpp" "CMakeFiles/vsstat.dir/src/models/bsim_lite.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/bsim_lite.cpp.o.d"
  "/root/repo/src/models/bsim_params.cpp" "CMakeFiles/vsstat.dir/src/models/bsim_params.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/bsim_params.cpp.o.d"
  "/root/repo/src/models/device.cpp" "CMakeFiles/vsstat.dir/src/models/device.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/device.cpp.o.d"
  "/root/repo/src/models/die_variation.cpp" "CMakeFiles/vsstat.dir/src/models/die_variation.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/die_variation.cpp.o.d"
  "/root/repo/src/models/process_variation.cpp" "CMakeFiles/vsstat.dir/src/models/process_variation.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/process_variation.cpp.o.d"
  "/root/repo/src/models/vs_fast_chain.cpp" "CMakeFiles/vsstat.dir/src/models/vs_fast_chain.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/vs_fast_chain.cpp.o.d"
  "/root/repo/src/models/vs_fast_chain_avx2.cpp" "CMakeFiles/vsstat.dir/src/models/vs_fast_chain_avx2.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/vs_fast_chain_avx2.cpp.o.d"
  "/root/repo/src/models/vs_model.cpp" "CMakeFiles/vsstat.dir/src/models/vs_model.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/vs_model.cpp.o.d"
  "/root/repo/src/models/vs_params.cpp" "CMakeFiles/vsstat.dir/src/models/vs_params.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/models/vs_params.cpp.o.d"
  "/root/repo/src/spice/ac.cpp" "CMakeFiles/vsstat.dir/src/spice/ac.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/ac.cpp.o.d"
  "/root/repo/src/spice/analysis.cpp" "CMakeFiles/vsstat.dir/src/spice/analysis.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/analysis.cpp.o.d"
  "/root/repo/src/spice/assembler.cpp" "CMakeFiles/vsstat.dir/src/spice/assembler.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/assembler.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "CMakeFiles/vsstat.dir/src/spice/circuit.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/circuit.cpp.o.d"
  "/root/repo/src/spice/device_bank.cpp" "CMakeFiles/vsstat.dir/src/spice/device_bank.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/device_bank.cpp.o.d"
  "/root/repo/src/spice/elements.cpp" "CMakeFiles/vsstat.dir/src/spice/elements.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/elements.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "CMakeFiles/vsstat.dir/src/spice/netlist.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/session.cpp" "CMakeFiles/vsstat.dir/src/spice/session.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/session.cpp.o.d"
  "/root/repo/src/spice/source.cpp" "CMakeFiles/vsstat.dir/src/spice/source.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/source.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "CMakeFiles/vsstat.dir/src/spice/waveform.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/spice/waveform.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "CMakeFiles/vsstat.dir/src/stats/descriptive.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/ellipse.cpp" "CMakeFiles/vsstat.dir/src/stats/ellipse.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/ellipse.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "CMakeFiles/vsstat.dir/src/stats/histogram.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "CMakeFiles/vsstat.dir/src/stats/kde.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/kde.cpp.o.d"
  "/root/repo/src/stats/normality.cpp" "CMakeFiles/vsstat.dir/src/stats/normality.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/normality.cpp.o.d"
  "/root/repo/src/stats/qq.cpp" "CMakeFiles/vsstat.dir/src/stats/qq.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/qq.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "CMakeFiles/vsstat.dir/src/stats/rng.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/rng.cpp.o.d"
  "/root/repo/src/stats/spatial.cpp" "CMakeFiles/vsstat.dir/src/stats/spatial.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/stats/spatial.cpp.o.d"
  "/root/repo/src/timing/ssta.cpp" "CMakeFiles/vsstat.dir/src/timing/ssta.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/timing/ssta.cpp.o.d"
  "/root/repo/src/timing/statistical_cell.cpp" "CMakeFiles/vsstat.dir/src/timing/statistical_cell.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/timing/statistical_cell.cpp.o.d"
  "/root/repo/src/timing/tables.cpp" "CMakeFiles/vsstat.dir/src/timing/tables.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/timing/tables.cpp.o.d"
  "/root/repo/src/util/ascii_plot.cpp" "CMakeFiles/vsstat.dir/src/util/ascii_plot.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/ascii_plot.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/vsstat.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/rusage.cpp" "CMakeFiles/vsstat.dir/src/util/rusage.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/rusage.cpp.o.d"
  "/root/repo/src/util/simd_math.cpp" "CMakeFiles/vsstat.dir/src/util/simd_math.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/simd_math.cpp.o.d"
  "/root/repo/src/util/simd_math_avx2.cpp" "CMakeFiles/vsstat.dir/src/util/simd_math_avx2.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/simd_math_avx2.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/vsstat.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/vsstat.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/yield/importance.cpp" "CMakeFiles/vsstat.dir/src/yield/importance.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/yield/importance.cpp.o.d"
  "/root/repo/src/yield/parametric.cpp" "CMakeFiles/vsstat.dir/src/yield/parametric.cpp.o" "gcc" "CMakeFiles/vsstat.dir/src/yield/parametric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
