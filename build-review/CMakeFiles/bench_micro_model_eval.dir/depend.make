# Empty dependencies file for bench_micro_model_eval.
# This may be replaced when dependencies are built.
