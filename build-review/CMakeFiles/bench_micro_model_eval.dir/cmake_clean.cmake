file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_model_eval.dir/bench/bench_micro_model_eval.cpp.o"
  "CMakeFiles/bench_micro_model_eval.dir/bench/bench_micro_model_eval.cpp.o.d"
  "bench_micro_model_eval"
  "bench_micro_model_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_model_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
