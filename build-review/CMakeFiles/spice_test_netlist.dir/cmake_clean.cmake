file(REMOVE_RECURSE
  "CMakeFiles/spice_test_netlist.dir/tests/spice/test_netlist.cpp.o"
  "CMakeFiles/spice_test_netlist.dir/tests/spice/test_netlist.cpp.o.d"
  "spice_test_netlist"
  "spice_test_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
