# Empty compiler generated dependencies file for spice_test_netlist.
# This may be replaced when dependencies are built.
