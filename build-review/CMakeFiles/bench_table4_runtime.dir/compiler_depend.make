# Empty compiler generated dependencies file for bench_table4_runtime.
# This may be replaced when dependencies are built.
