file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_runtime.dir/bench/bench_table4_runtime.cpp.o"
  "CMakeFiles/bench_table4_runtime.dir/bench/bench_table4_runtime.cpp.o.d"
  "bench_table4_runtime"
  "bench_table4_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
