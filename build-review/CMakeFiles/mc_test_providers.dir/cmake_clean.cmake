file(REMOVE_RECURSE
  "CMakeFiles/mc_test_providers.dir/tests/mc/test_providers.cpp.o"
  "CMakeFiles/mc_test_providers.dir/tests/mc/test_providers.cpp.o.d"
  "mc_test_providers"
  "mc_test_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_test_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
