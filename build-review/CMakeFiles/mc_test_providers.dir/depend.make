# Empty dependencies file for mc_test_providers.
# This may be replaced when dependencies are built.
