file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_levmar.dir/tests/linalg/test_levmar.cpp.o"
  "CMakeFiles/linalg_test_levmar.dir/tests/linalg/test_levmar.cpp.o.d"
  "linalg_test_levmar"
  "linalg_test_levmar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_levmar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
