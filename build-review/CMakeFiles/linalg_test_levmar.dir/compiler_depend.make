# Empty compiler generated dependencies file for linalg_test_levmar.
# This may be replaced when dependencies are built.
