# Empty dependencies file for sim_test_reuse_pivot_campaign.
# This may be replaced when dependencies are built.
