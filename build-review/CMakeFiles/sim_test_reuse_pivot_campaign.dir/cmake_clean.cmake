file(REMOVE_RECURSE
  "CMakeFiles/sim_test_reuse_pivot_campaign.dir/tests/sim/test_reuse_pivot_campaign.cpp.o"
  "CMakeFiles/sim_test_reuse_pivot_campaign.dir/tests/sim/test_reuse_pivot_campaign.cpp.o.d"
  "sim_test_reuse_pivot_campaign"
  "sim_test_reuse_pivot_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_reuse_pivot_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
