# Empty compiler generated dependencies file for circuits_test_cells.
# This may be replaced when dependencies are built.
