file(REMOVE_RECURSE
  "CMakeFiles/circuits_test_cells.dir/tests/circuits/test_cells.cpp.o"
  "CMakeFiles/circuits_test_cells.dir/tests/circuits/test_cells.cpp.o.d"
  "circuits_test_cells"
  "circuits_test_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuits_test_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
