file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_inv_delay_pdf.dir/bench/bench_fig5_inv_delay_pdf.cpp.o"
  "CMakeFiles/bench_fig5_inv_delay_pdf.dir/bench/bench_fig5_inv_delay_pdf.cpp.o.d"
  "bench_fig5_inv_delay_pdf"
  "bench_fig5_inv_delay_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_inv_delay_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
