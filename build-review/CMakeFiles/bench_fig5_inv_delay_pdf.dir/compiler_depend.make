# Empty compiler generated dependencies file for bench_fig5_inv_delay_pdf.
# This may be replaced when dependencies are built.
