file(REMOVE_RECURSE
  "CMakeFiles/mc_test_determinism.dir/tests/mc/test_determinism.cpp.o"
  "CMakeFiles/mc_test_determinism.dir/tests/mc/test_determinism.cpp.o.d"
  "mc_test_determinism"
  "mc_test_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_test_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
