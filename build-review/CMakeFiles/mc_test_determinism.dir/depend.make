# Empty dependencies file for mc_test_determinism.
# This may be replaced when dependencies are built.
