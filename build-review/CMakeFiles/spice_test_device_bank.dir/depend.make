# Empty dependencies file for spice_test_device_bank.
# This may be replaced when dependencies are built.
