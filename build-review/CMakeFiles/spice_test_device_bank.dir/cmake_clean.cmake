file(REMOVE_RECURSE
  "CMakeFiles/spice_test_device_bank.dir/tests/spice/test_device_bank.cpp.o"
  "CMakeFiles/spice_test_device_bank.dir/tests/spice/test_device_bank.cpp.o.d"
  "spice_test_device_bank"
  "spice_test_device_bank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_test_device_bank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
