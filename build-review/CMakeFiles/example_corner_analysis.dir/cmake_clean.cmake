file(REMOVE_RECURSE
  "CMakeFiles/example_corner_analysis.dir/examples/corner_analysis.cpp.o"
  "CMakeFiles/example_corner_analysis.dir/examples/corner_analysis.cpp.o.d"
  "example_corner_analysis"
  "example_corner_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_corner_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
