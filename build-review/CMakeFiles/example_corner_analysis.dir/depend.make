# Empty dependencies file for example_corner_analysis.
# This may be replaced when dependencies are built.
