file(REMOVE_RECURSE
  "CMakeFiles/measure_test_snm.dir/tests/measure/test_snm.cpp.o"
  "CMakeFiles/measure_test_snm.dir/tests/measure/test_snm.cpp.o.d"
  "measure_test_snm"
  "measure_test_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_test_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
