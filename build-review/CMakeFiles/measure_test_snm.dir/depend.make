# Empty dependencies file for measure_test_snm.
# This may be replaced when dependencies are built.
