file(REMOVE_RECURSE
  "CMakeFiles/util_test_rusage.dir/tests/util/test_rusage.cpp.o"
  "CMakeFiles/util_test_rusage.dir/tests/util/test_rusage.cpp.o.d"
  "util_test_rusage"
  "util_test_rusage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test_rusage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
