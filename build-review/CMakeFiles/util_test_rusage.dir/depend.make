# Empty dependencies file for util_test_rusage.
# This may be replaced when dependencies are built.
