# Empty dependencies file for extract_test_golden_meter.
# This may be replaced when dependencies are built.
