file(REMOVE_RECURSE
  "CMakeFiles/extract_test_golden_meter.dir/tests/extract/test_golden_meter.cpp.o"
  "CMakeFiles/extract_test_golden_meter.dir/tests/extract/test_golden_meter.cpp.o.d"
  "extract_test_golden_meter"
  "extract_test_golden_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test_golden_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
